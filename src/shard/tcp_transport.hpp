#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "net/socket.hpp"
#include "net/stream.hpp"
#include "net/wire.hpp"
#include "shard/options.hpp"
#include "shard/transport.hpp"

namespace ipregel::shard {

/// Pre-fork TCP rendezvous: the coordinator binds one control listener
/// for itself and one data listener per shard on loopback ephemeral
/// ports BEFORE forking, so every worker inherits every port with no
/// discovery protocol. The parent keeps all listener fds open for the
/// whole run — a respawned worker inherits the SAME listener (and
/// therefore the same port) at fork time, so surviving peers reconnect
/// to a respawn without re-rendezvous.
class TcpRendezvous {
 public:
  explicit TcpRendezvous(std::size_t shards);

  [[nodiscard]] std::size_t shards() const noexcept { return data_.size(); }
  [[nodiscard]] std::uint16_t ctrl_port() const noexcept {
    return ctrl_.port();
  }
  [[nodiscard]] std::uint16_t data_port(std::size_t shard) const noexcept {
    return data_[shard].port();
  }
  [[nodiscard]] net::Listener& data_listener(std::size_t shard) noexcept {
    return data_[shard];
  }
  [[nodiscard]] net::Listener& ctrl_listener() noexcept { return ctrl_; }

  /// Post-fork child hygiene: worker `me` keeps only its own data
  /// listener.
  void close_in_child_except(std::size_t me) noexcept;

 private:
  net::Listener ctrl_;
  std::vector<net::Listener> data_;
};

/// Worker-side TCP transport: one bidirectional frame stream per peer
/// (the higher shard id initiates, the lower accepts on its listener)
/// plus one stream to the coordinator's control listener. Nonblocking
/// throughout; connect/accept with exponential backoff + deterministic
/// jitter; a magic/version/identity handshake opens every connection;
/// reconnects report the peer through take_resync_peers() so the Worker
/// republishes its retained frames (generation-based resync — the
/// receiver's floor/dedup machinery makes the duplicates byte-safe and
/// the resumed run bit-identical).
///
/// Degradation is typed: a data link whose consecutive reconnect budget
/// is exhausted throws PeerUnreachable (worker exits for the supervisor
/// ladder); an exhausted control link flips the orphan path
/// (ctrl_send() == false). Scripted NetFaults trip at counted frame ops
/// and execute through net::FaultySocket.
class TcpTransport final : public Transport {
 public:
  TcpTransport(net::Listener& data_listener, std::uint16_t ctrl_port,
               std::vector<std::uint16_t> data_ports, std::size_t me,
               std::size_t shards, std::size_t generation,
               const NetOptions& net, std::vector<NetFault> armed);
  ~TcpTransport() override;

  [[nodiscard]] bool try_publish(
      std::size_t dst, std::uint64_t superstep,
      std::span<const std::uint8_t> payload) override;
  [[nodiscard]] std::optional<net::Frame> try_collect(std::size_t src) override;
  [[nodiscard]] bool ctrl_send(const CtrlMsg& msg) override;
  [[nodiscard]] std::optional<CtrlMsg> ctrl_recv(int timeout_ms) override;
  void publish_values(std::span<const std::uint8_t> bytes,
                      std::size_t value_size,
                      std::span<const std::size_t> slots) override;
  [[nodiscard]] bool finish_values() override;
  [[nodiscard]] std::vector<std::size_t> take_resync_peers() override;

  /// Enables coordinator-recovery mode: the control link's reconnect
  /// budget becomes TIME-based (park up to `park_seconds` of continuous
  /// ctrl downtime before flipping orphaned) instead of attempt-based, the
  /// handshake enforces the fencing epoch (a coordinator ack claiming an
  /// epoch older than `epoch` is answered with kFenced and refused), and
  /// final values are held until the coordinator's kValuesAck.
  void set_recovery(double park_seconds, std::uint64_t epoch) noexcept {
    park_seconds_ = park_seconds;
    coord_epoch_ = epoch;
  }

  /// Worker bookkeeping: the newest coordinator epoch observed on any
  /// control message; future handshakes fence anything older.
  void note_epoch(std::uint64_t epoch) override {
    coord_epoch_ = std::max(coord_epoch_, epoch);
  }

  [[nodiscard]] bool ctrl_down() const override { return orphaned_; }
  [[nodiscard]] bool needs_values_ack() const override {
    return park_seconds_ > 0.0;
  }

 private:
  struct Link {
    enum class State : std::uint8_t {
      kDown,
      kConnecting,
      kHandshaking,
      kUp,
    };

    State state = State::kDown;
    bool initiator = false;
    std::uint16_t port = 0;  ///< where the initiator connects
    net::Socket connecting;  ///< in-flight nonblocking connect
    net::FrameStream stream;

    double next_attempt = 0.0;
    double attempt_deadline = 0.0;
    std::size_t failures = 0;   ///< consecutive, reset on handshake
    std::uint64_t attempts = 0; ///< total, jitter input

    // io_timeout write-progress watchdog.
    double stall_check_at = 0.0;
    std::size_t stall_check_bytes = 0;

    // Fault windows.
    double mute_until = 0.0;
    double partition_until = 0.0;

    // Counted frame ops (persist across reconnects within an
    // incarnation — what makes seeded NetFault plans deterministic).
    std::uint64_t send_ops = 0;
    std::uint64_t recv_ops = 0;

    std::deque<net::Frame> inbox;
  };

  struct PendingAccept {
    net::FrameStream stream;
    double deadline = 0.0;
  };

  [[nodiscard]] static double now() noexcept;
  [[nodiscard]] double backoff_delay(const Link& link, std::size_t peer) const;
  [[nodiscard]] Link& link_of(std::size_t peer) { return links_[peer]; }
  [[nodiscard]] bool is_ctrl(std::size_t peer) const noexcept {
    return peer == kCtrlPeer;
  }

  /// One nonblocking progress pass over every link + the listener; with
  /// timeout_ms > 0, polls first (bounded by the next timed event).
  void pump(int timeout_ms);
  void progress();
  void progress_link(std::size_t peer);
  void start_connect(std::size_t peer, double t);
  void fail_attempt(std::size_t peer, const char* why);
  void link_established(std::size_t peer);
  void teardown(std::size_t peer);
  void route_frames(std::size_t peer);
  void accept_new(double t);
  void identify_pending(double t);
  void poll_fds(int timeout_ms);

  /// Counted-op fault hooks.
  void on_send_op(std::size_t peer);
  void on_recv_op_boundary(std::size_t peer);
  void apply_fault(std::size_t peer, const NetFault& fault);
  void queue_frame(std::size_t peer, std::vector<std::uint8_t> encoded,
                   bool counted);

  static constexpr std::size_t kCtrlPeer = static_cast<std::size_t>(-2);
  static constexpr std::size_t kMaxDataPayload = 1u << 30;

  net::Listener& listener_;
  std::uint16_t ctrl_port_ = 0;
  std::vector<std::uint16_t> data_ports_;
  std::size_t me_ = 0;
  std::size_t shards_ = 0;
  std::size_t generation_ = 0;
  NetOptions net_;
  std::vector<NetFault> armed_;
  /// (fault index, link peer) pairs already fired — kAnyPeer faults fire
  /// once per link.
  std::set<std::pair<std::size_t, std::size_t>> fired_;

  std::vector<Link> links_;  ///< per data peer
  Link ctrl_link_;
  std::vector<PendingAccept> pending_;

  std::deque<CtrlMsg> ctrl_inbox_;
  std::vector<std::size_t> resynced_;
  bool ctrl_resynced_ = false;
  bool orphaned_ = false;
  bool halting_ = false;

  // Coordinator-recovery state (inert while park_seconds_ == 0).
  double park_seconds_ = 0.0;     ///< ctrl park window; 0 = attempt budget
  double ctrl_down_since_ = 0.0;  ///< first ctrl failure of this outage
  std::uint64_t coord_epoch_ = 0; ///< newest coordinator epoch obeyed

  // Control backlog: what must survive a reconnect. The hello is cleared
  // once a kProceed proves the coordinator processed it; the latest
  // barrier is replaced each superstep (stale replays are resolved by
  // the coordinator's barrier history); values are the final flush.
  std::vector<std::uint8_t> backlog_hello_;
  std::vector<std::uint8_t> backlog_barrier_;
  std::vector<std::vector<std::uint8_t>> backlog_values_;

  // Last published values (sent at halt).
  std::vector<std::uint8_t> values_bytes_;
  std::size_t values_value_size_ = 0;
  std::vector<std::size_t> values_slots_;
};

/// Builds the worker-side transport for `me` from the inherited
/// rendezvous, arming the NetFaults scripted for this incarnation.
[[nodiscard]] std::unique_ptr<TcpTransport> make_tcp_transport(
    TcpRendezvous& rendezvous, std::size_t me, std::size_t generation,
    const ShardOptions& options);

/// Coordinator-side TCP control plane: accepts worker control
/// connections on the shared listener, validates the identity handshake
/// against the incarnation it expects (stale generations are reset, not
/// trusted), decodes CtrlMsg frames into events, and collects the final
/// kValues frames into the result board that shm runs get for free from
/// shared memory.
class TcpCtrlPlane final : public CtrlPlane {
 public:
  TcpCtrlPlane(net::Listener& listener, std::size_t shards,
               const NetOptions& net, std::vector<std::uint8_t>* board);

  void begin_incarnation(std::size_t shard, std::size_t generation,
                         Channel* worker_end) override;
  bool send(std::size_t shard, const CtrlMsg& msg) override;
  [[nodiscard]] std::optional<Event> next(int timeout_ms) override;
  void drop(std::size_t shard, bool drain_values) override;
  void close_inherited_in_child() override;

  /// True once every shard delivered its complete final values (the
  /// empty kValues terminator). The coordinator checks this before
  /// declaring a TCP run's board trustworthy.
  [[nodiscard]] bool values_complete() const noexcept;

  /// Fencing epoch stamped on every handshake ack this plane sends. A
  /// worker that has obeyed a newer epoch answers kFenced and refuses the
  /// link — how a stale coordinator incarnation finds out it lost.
  void set_epoch(std::uint64_t epoch) noexcept { epoch_ = epoch; }

  /// Takeover with durable values already on disk: the new coordinator
  /// does not need the workers to re-deliver them.
  void mark_values_done_all() noexcept {
    for (WorkerLink& link : links_) {
      link.values_done = true;
    }
  }

 private:
  struct WorkerLink {
    net::FrameStream stream;
    bool up = false;
    std::size_t expected_generation = 0;
    bool values_done = false;
  };

  struct PendingAccept {
    net::FrameStream stream;
    double deadline = 0.0;
  };

  [[nodiscard]] static double now() noexcept;
  void pump(int timeout_ms);
  void accept_and_identify(double t);
  void route(std::size_t shard);
  void apply_values(std::size_t shard, const net::Frame& frame);

  net::Listener& listener_;
  NetOptions net_;
  std::vector<WorkerLink> links_;
  std::vector<PendingAccept> pending_;
  std::deque<Event> queue_;
  std::vector<std::uint8_t>* board_;
  std::uint64_t epoch_ = 0;
};

}  // namespace ipregel::shard
