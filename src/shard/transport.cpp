#include "shard/transport.hpp"

#include <poll.h>
#include <time.h>

namespace ipregel::shard {

namespace {

[[nodiscard]] double mono_seconds() noexcept {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

void sleep_ms(long ms) noexcept {
  timespec ts{ms / 1000, (ms % 1000) * 1'000'000L};
  ::nanosleep(&ts, nullptr);
}

}  // namespace

std::optional<std::uint64_t> ShmTransport::reattach_ctrl(
    double deadline_seconds, std::uint64_t known_epoch) {
  if (reattach_path_.empty()) {
    return std::nullopt;  // recovery disabled: orphan exit, as before
  }
  const double deadline = mono_seconds() + deadline_seconds;
  while (mono_seconds() < deadline) {
    auto conn = Channel::connect_to(reattach_path_);
    if (!conn) {
      sleep_ms(25);  // no takeover listening yet (or backlog full)
      continue;
    }
    // The takeover coordinator greets first: kAdopt carrying its claimed
    // fencing epoch and the last committed barrier.
    auto greet = conn->recv(1000);
    if (greet && greet->kind == CtrlMsg::Kind::kAbort) {
      // A full-respawn takeover abandoned this era: stop parking NOW so
      // no stale incarnation lingers near the rings the new era owns.
      return std::nullopt;
    }
    if (!greet || greet->kind != CtrlMsg::Kind::kAdopt) {
      continue;  // listener died mid-greeting; keep parking
    }
    if (greet->epoch < known_epoch) {
      // The fenced HELLO: a stale incarnation is told, with a typed
      // message, exactly which epoch outranks it — and is NOT obeyed.
      CtrlMsg fenced{};
      fenced.kind = CtrlMsg::Kind::kFenced;
      fenced.shard = static_cast<std::uint32_t>(me_);
      fenced.flag = greet->epoch;
      fenced.epoch = known_epoch;
      (void)conn->send(fenced);
      continue;  // keep waiting for a rightful coordinator
    }
    chan_ = std::move(*conn);
    return greet->epoch;
  }
  return std::nullopt;  // park window expired: bounded orphan exit
}

void ShmCtrlPlane::poll_all(int timeout_ms) {
  std::vector<pollfd> fds;
  std::vector<std::size_t> fd_shard;
  for (std::size_t shard = 0; shard < chans_.size(); ++shard) {
    if (chans_[shard].valid()) {
      fds.push_back(pollfd{chans_[shard].fd(), POLLIN, 0});
      fd_shard.push_back(shard);
    }
  }
  if (fds.empty()) {
    return;
  }
  const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                           timeout_ms);
  if (ready <= 0) {
    return;  // timeout; EINTR surfaces as a harmless empty drain
  }
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if ((fds[i].revents & (POLLIN | POLLHUP)) == 0) {
      continue;
    }
    const std::size_t shard = fd_shard[i];
    while (auto msg = chans_[shard].recv(0)) {
      queue_.push_back(Event{shard, *msg});
    }
  }
}

}  // namespace ipregel::shard
