#include "shard/transport.hpp"

#include <poll.h>

namespace ipregel::shard {

void ShmCtrlPlane::poll_all(int timeout_ms) {
  std::vector<pollfd> fds;
  std::vector<std::size_t> fd_shard;
  for (std::size_t shard = 0; shard < chans_.size(); ++shard) {
    if (chans_[shard].valid()) {
      fds.push_back(pollfd{chans_[shard].fd(), POLLIN, 0});
      fd_shard.push_back(shard);
    }
  }
  if (fds.empty()) {
    return;
  }
  const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                           timeout_ms);
  if (ready <= 0) {
    return;  // timeout; EINTR surfaces as a harmless empty drain
  }
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if ((fds[i].revents & (POLLIN | POLLHUP)) == 0) {
      continue;
    }
    const std::size_t shard = fd_shard[i];
    while (auto msg = chans_[shard].recv(0)) {
      queue_.push_back(Event{shard, *msg});
    }
  }
}

}  // namespace ipregel::shard
