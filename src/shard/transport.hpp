#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "shard/channel.hpp"
#include "shard/layout.hpp"
#include "shard/ring.hpp"

namespace ipregel::shard {

/// Thrown by a Transport when a peer link's reconnect budget is
/// exhausted: the typed head of the degradation chain kPeerUnreachable →
/// worker exit → ShardSupervisor respawn ladder → RunErrorKind::
/// kShardFailure. Never a hang — a worker that cannot reach a peer exits
/// and lets the supervisor decide.
class PeerUnreachable : public std::runtime_error {
 public:
  PeerUnreachable(std::size_t peer, const std::string& detail)
      : std::runtime_error("peer " + std::to_string(peer) +
                           " unreachable: " + detail),
        peer_(peer) {}

  [[nodiscard]] std::size_t peer() const noexcept { return peer_; }

 private:
  std::size_t peer_;
};

/// The worker-side transport seam: everything a Worker needs from the
/// outside world, with the BSP protocol (barriers, retained-frame
/// republish, recovery) staying above the seam. Two implementations:
/// ShmTransport (PR-7's shared-memory rings + SEQPACKET channel, for
/// fork()ed workers on one box) and TcpTransport (nonblocking loopback
/// frame streams with handshakes, reconnect, and fault injection).
///
/// Contract highlights:
///  - try_publish/try_collect never block; publish returning false means
///    "retry after pumping" (ring full / link still connecting).
///  - Frames collected from one src arrive in the order that src sent
///    them (SPSC ring order, TCP stream order); duplicates are possible
///    after recovery/reconnect and the Worker's floor/pending machinery
///    dedups them.
///  - Methods may throw PeerUnreachable (TCP reconnect budget exhausted)
///    or net::WireError (corrupt frame); both poison the incarnation.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues one data frame toward `dst`. False = does not currently fit;
  /// the caller drains/pumps and retries.
  [[nodiscard]] virtual bool try_publish(
      std::size_t dst, std::uint64_t superstep,
      std::span<const std::uint8_t> payload) = 0;

  /// Next available frame from `src`, if any.
  [[nodiscard]] virtual std::optional<net::Frame> try_collect(
      std::size_t src) = 0;

  /// Sends one control message to the coordinator. False = the
  /// coordinator is gone for good (the worker exits as orphan).
  [[nodiscard]] virtual bool ctrl_send(const CtrlMsg& msg) = 0;

  /// Next control message from the coordinator, waiting up to timeout_ms
  /// (0 = just poll). Also drives the transport's internal progress
  /// (handshakes, reconnects, queued writes).
  [[nodiscard]] virtual std::optional<CtrlMsg> ctrl_recv(int timeout_ms) = 0;

  /// Publishes this superstep's local values (bytes laid out in local
  /// index order; `slots` maps local index -> absolute slot). Called
  /// before every barrier so a halt always has complete values.
  virtual void publish_values(std::span<const std::uint8_t> bytes,
                              std::size_t value_size,
                              std::span<const std::size_t> slots) = 0;

  /// Flushes the final values to the coordinator at halt. False = they
  /// could not be delivered (the coordinator detects the gap and fails
  /// the run typed, not silently).
  [[nodiscard]] virtual bool finish_values() = 0;

  /// Peers whose data link was (re-)established since the last call.
  /// Each needs a full retained-frame republish — the generation-based
  /// resync that makes a reconnect resume bit-identically. Empty for
  /// shm (the rings never "reconnect"; the coordinator's kRecover path
  /// covers respawns).
  [[nodiscard]] virtual std::vector<std::size_t> take_resync_peers() = 0;

  /// True when the control link to the coordinator is known dead (send
  /// failed / peer hung up). With coordinator recovery enabled the worker
  /// parks and calls reattach_ctrl instead of exiting as orphan.
  [[nodiscard]] virtual bool ctrl_down() const { return false; }

  /// Parks this worker for up to `deadline_seconds` waiting for a takeover
  /// coordinator to adopt it, enforcing the fencing rule: a greeting whose
  /// epoch is older than `known_epoch` is answered with kFenced and NOT
  /// obeyed. On success the control link is re-established and the new
  /// coordinator's epoch is returned (the worker then re-introduces itself
  /// with an adoption hello); nullopt = the park window expired and the
  /// worker must exit as orphan — the bounded-exit guarantee.
  [[nodiscard]] virtual std::optional<std::uint64_t> reattach_ctrl(
      double deadline_seconds, std::uint64_t known_epoch) {
    (void)deadline_seconds;
    (void)known_epoch;
    return std::nullopt;
  }

  /// True when the worker must hold after finish_values until the
  /// coordinator acknowledges durable receipt (kValuesAck): TCP values
  /// travel over a stream that dies with the worker, so exiting before the
  /// ack can lose the only copy. Shm values live in the supervisor-owned
  /// arena and never need the ack.
  [[nodiscard]] virtual bool needs_values_ack() const { return false; }

  /// Informs the transport of the newest coordinator fencing epoch the
  /// worker has obeyed, so transport-level handshakes (the TCP reconnect
  /// hello) fence stale coordinators without asking the worker. No-op for
  /// shm, whose reattach_ctrl takes the epoch explicitly.
  virtual void note_epoch(std::uint64_t epoch) { (void)epoch; }
};

/// PR-7's plane behind the seam: SPSC rings over the pre-forked shared
/// arena for data, the SEQPACKET channel for control, the shared result
/// board for values.
class ShmTransport final : public Transport {
 public:
  ShmTransport(const ArenaSpec& spec, const ShmArena& arena, std::size_t me,
               std::size_t shards, Channel channel)
      : me_(me), chan_(std::move(channel)) {
    in_ring_.resize(shards);
    out_ring_.resize(shards);
    for (std::size_t peer = 0; peer < shards; ++peer) {
      if (peer == me) {
        continue;
      }
      in_ring_[peer] = spec.attach(arena, peer, me, false);
      out_ring_[peer] = spec.attach(arena, me, peer, false);
    }
    board_ = arena.at(spec.board_offset);
  }

  [[nodiscard]] bool try_publish(
      std::size_t dst, std::uint64_t superstep,
      std::span<const std::uint8_t> payload) override {
    return out_ring_[dst].try_push(static_cast<std::uint32_t>(me_), superstep,
                                   payload);
  }

  [[nodiscard]] std::optional<net::Frame> try_collect(
      std::size_t src) override {
    return in_ring_[src].try_pop();
  }

  [[nodiscard]] bool ctrl_send(const CtrlMsg& msg) override {
    return chan_.send(msg);
  }

  [[nodiscard]] std::optional<CtrlMsg> ctrl_recv(int timeout_ms) override {
    return chan_.recv(timeout_ms);
  }

  void publish_values(std::span<const std::uint8_t> bytes,
                      std::size_t value_size,
                      std::span<const std::size_t> slots) override {
    // Coalesce contiguous slot runs into single copies — a block
    // partition is one run, so this is the PR-7 single memcpy there.
    std::size_t li = 0;
    while (li < slots.size()) {
      std::size_t run = 1;
      while (li + run < slots.size() &&
             slots[li + run] == slots[li] + run) {
        ++run;
      }
      std::memcpy(board_ + slots[li] * value_size,
                  bytes.data() + li * value_size, run * value_size);
      li += run;
    }
  }

  [[nodiscard]] bool finish_values() override {
    return true;  // the board is shared memory; publishes are already final
  }

  [[nodiscard]] std::vector<std::size_t> take_resync_peers() override {
    return {};
  }

  /// Rendezvous path a takeover coordinator listens on; empty disables
  /// park-and-reattach (the pre-recovery orphan-exit behaviour).
  void set_reattach_path(std::string path) {
    reattach_path_ = std::move(path);
  }

  [[nodiscard]] bool ctrl_down() const override {
    return !chan_.valid() || chan_.peer_dead();
  }

  [[nodiscard]] std::optional<std::uint64_t> reattach_ctrl(
      double deadline_seconds, std::uint64_t known_epoch) override;

  [[nodiscard]] bool needs_values_ack() const override { return false; }

 private:
  std::size_t me_;
  Channel chan_;
  std::string reattach_path_;
  std::vector<SpscRing> in_ring_;
  std::vector<SpscRing> out_ring_;
  std::uint8_t* board_ = nullptr;
};

/// The coordinator-side counterpart of the seam: receives control
/// messages from all workers, sends releases/aborts, and (for TCP)
/// collects the final values that shm gets for free via the shared
/// board.
class CtrlPlane {
 public:
  virtual ~CtrlPlane() = default;

  /// Prepares the control link for a (re)spawned incarnation of `shard`,
  /// called just BEFORE the fork. Shm creates the socketpair and hands
  /// back the worker end (the child moves it into its transport); TCP
  /// records the expected generation and waits for the worker to connect
  /// in (worker_end stays invalid).
  virtual void begin_incarnation(std::size_t shard, std::size_t generation,
                                 Channel* worker_end) = 0;

  /// Sends to one worker; false when its link is currently down (TCP
  /// requeues what must survive — see the transport's backlog — so false
  /// here is not an error).
  virtual bool send(std::size_t shard, const CtrlMsg& msg) = 0;

  struct Event {
    std::size_t shard = 0;
    CtrlMsg msg{};
  };

  /// Next control message from any worker, waiting up to timeout_ms.
  /// Also drives accepts/handshakes/value collection for TCP.
  [[nodiscard]] virtual std::optional<Event> next(int timeout_ms) = 0;

  /// The incarnation of `shard` died or the run ended: tear its link
  /// down. drain_values bounds-blocks to collect final kValues frames
  /// still in flight (halt path only).
  virtual void drop(std::size_t shard, bool drain_values) = 0;

  /// Post-fork child hygiene: close every coordinator-side fd the child
  /// inherited.
  virtual void close_inherited_in_child() = 0;

  /// Re-binds a parked worker's freshly accepted reattach connection as
  /// shard's control link (shm takeover adoption). TCP adoption rides the
  /// existing reconnect machinery instead, so the default discards the
  /// channel.
  virtual void adopt(std::size_t shard, Channel chan) {
    (void)shard;
    chan.close();
  }
};

/// SEQPACKET socketpair fan-in, PR-7 semantics.
class ShmCtrlPlane final : public CtrlPlane {
 public:
  explicit ShmCtrlPlane(std::size_t shards) : chans_(shards) {}

  void begin_incarnation(std::size_t shard, std::size_t /*generation*/,
                         Channel* worker_end) override {
    auto [coord, worker] = Channel::make_pair();
    chans_[shard] = std::move(coord);
    *worker_end = std::move(worker);
  }

  bool send(std::size_t shard, const CtrlMsg& msg) override {
    return chans_[shard].valid() && chans_[shard].send(msg);
  }

  [[nodiscard]] std::optional<Event> next(int timeout_ms) override {
    if (!queue_.empty()) {
      const Event e = queue_.front();
      queue_.erase(queue_.begin());
      return e;
    }
    poll_all(timeout_ms);
    if (queue_.empty()) {
      return std::nullopt;
    }
    const Event e = queue_.front();
    queue_.erase(queue_.begin());
    return e;
  }

  void drop(std::size_t shard, bool /*drain_values*/) override {
    chans_[shard].close();
  }

  void close_inherited_in_child() override {
    for (Channel& c : chans_) {
      c.close();
    }
  }

  void adopt(std::size_t shard, Channel chan) override {
    chans_[shard] = std::move(chan);
  }

 private:
  void poll_all(int timeout_ms);

  std::vector<Channel> chans_;
  std::vector<Event> queue_;
};

}  // namespace ipregel::shard
