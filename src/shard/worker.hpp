#pragma once

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/aggregator_traits.hpp"
#include "core/program_traits.hpp"
#include "ft/snapshot.hpp"
#include "ft/snapshot_dir.hpp"
#include "io/fault_wrap_vfs.hpp"
#include "io/vfs.hpp"
#include "shard/channel.hpp"
#include "shard/layout.hpp"
#include "shard/options.hpp"
#include "shard/partition.hpp"
#include "shard/shard_engine.hpp"
#include "shard/tcp_transport.hpp"
#include "shard/transport.hpp"

namespace ipregel::shard {

/// Worker exit codes the coordinator distinguishes from fault-injected
/// deaths (anything else is "crashed").
inline constexpr int kWorkerExitHalt = 0;         ///< computation converged
inline constexpr int kWorkerExitAbort = 3;        ///< coordinator said kAbort
inline constexpr int kWorkerExitOrphan = 4;       ///< coordinator vanished
inline constexpr int kWorkerExitStuck = 5;        ///< peer link never drained
inline constexpr int kWorkerExitUnreachable = 6;  ///< reconnect budget spent

/// Sentinel for WorkerConfig::resume_cap: no cut negotiation, restore to
/// the newest valid snapshot as usual.
inline constexpr std::uint64_t kNoResumeCap = ~0ULL;

/// Everything one worker process needs, assembled by the coordinator
/// pre-fork. References point into the parent's address space; fork's
/// copy-on-write snapshot keeps them valid in the child.
template <VertexProgram Program>
struct WorkerConfig {
  const graph::CsrGraph* graph = nullptr;
  const Program* program = nullptr;
  const ShardOptions* options = nullptr;
  const ArenaSpec* spec = nullptr;    ///< kShm only
  const ShmArena* arena = nullptr;    ///< kShm only
  TcpRendezvous* rendezvous = nullptr;  ///< kTcp only
  std::size_t me = 0;
  std::size_t generation = 0;
  std::uint64_t graph_fp = 0;

  // --- coordinator-recovery extras (inert defaults otherwise) -------------
  /// Fencing epoch of the spawning coordinator incarnation; the worker
  /// refuses to obey anything older.
  std::uint64_t coord_epoch = 0;
  /// Full-respawn cut negotiation: restore to the newest valid snapshot
  /// AT OR BELOW this superstep and report the achieved resume point with
  /// an active == 2 hello. A worker that cannot reach the cut parks until
  /// the coordinator lowers it (by killing the round).
  std::uint64_t resume_cap = kNoResumeCap;
};

/// The worker process body: restore-or-initialise, then the BSP loop —
/// compute, post combined frames, drain peers in source order, publish
/// values, enter the barrier, wait for the release. Runs single-threaded;
/// heartbeats are sent from inside these loops, so liveness certifies
/// progress. All I/O goes through the Transport seam, so the SAME loop
/// runs over shared-memory rings and TCP streams. Never returns normally
/// — the caller `_exit`s with the returned code. Must not touch the
/// parent's stdio/test state.
template <VertexProgram Program>
class Worker {
 public:
  using Value = typename Program::value_type;
  using Msg = typename Program::message_type;

  Worker(const WorkerConfig<Program>& cfg,
         std::unique_ptr<Transport> transport)
      : cfg_(cfg),
        transport_(std::move(transport)),
        part_(*cfg.graph, cfg.options->num_shards, cfg.options->partition),
        engine_(*cfg.graph, *cfg.program, part_, cfg.me),
        bound_fp_(shard_fingerprint(program_fingerprint<Program>(),
                                    cfg.options->num_shards, cfg.me,
                                    cfg.options->partition)),
        owned_slots_(part_.owned_slots(cfg.me)) {
    const std::size_t n = cfg_.options->num_shards;
    coord_epoch_ = cfg.coord_epoch;
    pending_.resize(n);
    floor_.assign(n, 0);
    for (const ShardFault& f : cfg_.options->faults) {
      if (f.shard == cfg_.me && f.generation == cfg_.generation &&
          f.kind != ShardFault::Kind::kNone) {
        armed_.push_back(f);
      }
    }
  }

  [[nodiscard]] int run() {
    std::uint64_t resume = 0;
    ft::CheckpointMode restored_mode = ft::CheckpointMode::kHeavyweight;
    bool restored = false;
    const bool negotiated = cfg_.resume_cap != kNoResumeCap;
    if (negotiated) {
      // Full-respawn cut negotiation: the takeover coordinator proposed a
      // cut; restore only up to it and report what was actually reached.
      if (cfg_.options->checkpoint.enabled() && cfg_.resume_cap > 0) {
        restored = try_restore_capped(cfg_.resume_cap, resume, restored_mode);
      }
    } else if (cfg_.generation > 0 && cfg_.options->checkpoint.enabled()) {
      restored = try_restore(resume, restored_mode);
    }
    if (!restored) {
      resume = 0;
      engine_.initialize();
    }
    superstep_now_ = resume;

    CtrlMsg hello;
    hello.kind = CtrlMsg::Kind::kHello;
    hello.shard = static_cast<std::uint32_t>(cfg_.me);
    hello.superstep = resume;
    hello.flag = cfg_.generation;
    hello.sent = static_cast<std::uint64_t>(::getpid());
    hello.active = negotiated ? 2 : 0;
    hello.epoch = coord_epoch_;
    if (!transport_->ctrl_send(hello)) {
      if (!on_ctrl_down()) {
        return kWorkerExitOrphan;
      }
    }

    if (negotiated && resume != cfg_.resume_cap) {
      // Could not reach the cut. The hello reported the achieved resume;
      // the coordinator will lower the cut and SIGKILL this round. Park,
      // serving control traffic (kAbort still exits typed) until then.
      for (;;) {
        pump(5);
        heartbeat();
      }
    }

    if (restored && restored_mode == ft::CheckpointMode::kLightweight &&
        resume > 0) {
      if (negotiated) {
        // Everyone restored the SAME cut: nobody holds retained frames,
        // so each worker regenerates and pushes its own slice.
        rebuild_all(resume);
      } else {
        // Rebuild inbox_resume from the survivors' republished frames
        // with our own resend slice interleaved at source position `me` —
        // the original source-order fold, bit for bit.
        for (std::size_t src = 0; src < part_.shards(); ++src) {
          floor_[src] = resume - 1;
        }
        exchange(resume - 1, /*into_current=*/true, /*self_resend=*/true,
                 nullptr);
      }
    } else {
      for (std::size_t src = 0; src < part_.shards(); ++src) {
        floor_[src] = resume;
      }
    }

    std::uint64_t s = resume;
    for (;;) {
      superstep_now_ = s;
      auto tick = [&](std::uint64_t /*executed*/) {
        maybe_fault(ShardFault::Phase::kCompute, s);
        heartbeat();
        pump(0);
        drain_frames();
      };
      const auto counts = engine_.compute_superstep(s, tick);

      // Post this superstep's combined frames and retain them for
      // recovering peers.
      RetainedGen gen;
      gen.superstep = s;
      gen.frames.resize(part_.shards());
      for (std::size_t dst = 0; dst < part_.shards(); ++dst) {
        gen.frames[dst] = engine_.take_outbox(dst);
        if (dst != cfg_.me) {
          push_frame(dst, s, gen.frames[dst]);
        }
      }
      std::vector<std::uint8_t> self_frame = std::move(gen.frames[cfg_.me]);
      gen.frames[cfg_.me].clear();
      retained_.push_back(std::move(gen));
      while (retained_.size() > cfg_.options->retain_supersteps) {
        retained_.pop_front();
      }
      maybe_fault(ShardFault::Phase::kAfterPost, s);

      // Collect every peer's frame for this superstep into the NEXT
      // inbox, self at its source position.
      exchange(s, /*into_current=*/false, /*self_resend=*/false,
               &self_frame);

      // Publish values BEFORE the barrier: if the run halts at this
      // superstep the board is already complete, and a death after this
      // point loses nothing a redo will not rewrite.
      transport_->publish_values(engine_.value_bytes(), sizeof(Value),
                                 owned_slots_);

      CtrlMsg barrier;
      barrier.kind = CtrlMsg::Kind::kBarrier;
      barrier.shard = static_cast<std::uint32_t>(cfg_.me);
      barrier.superstep = s;
      barrier.sent = counts.sent;
      barrier.active = counts.active;
      barrier.executed = counts.executed;
      barrier.epoch = coord_epoch_;
      if constexpr (HasSerializableAggregator<Program>) {
        const auto agg = engine_.take_aggregate_partial();
        static_assert(sizeof(typename Program::aggregate_type) <=
                          CtrlMsg::kMaxAggregate,
                      "aggregate_type too large for the control plane");
        barrier.payload_len = static_cast<std::uint32_t>(agg.size());
        std::memcpy(barrier.payload, agg.data(), agg.size());
      }
      // Keep the latest barrier around: a takeover coordinator never saw
      // it, so an adoption re-sends it for re-collection. Duplicates of
      // COMMITTED barriers are answered from the release history.
      pending_barrier_ = barrier;
      if (!transport_->ctrl_send(barrier)) {
        if (!on_ctrl_down()) {
          return kWorkerExitOrphan;
        }
      }

      const CtrlMsg proceed = await_proceed(s);
      if (static_cast<CtrlMsg::Command>(proceed.flag) ==
          CtrlMsg::Command::kHalt) {
        // TCP: push the final values to the coordinator before exiting
        // (shm published them into the shared board already). Failure is
        // typed on the coordinator side — missing values fail the run.
        if (!transport_->finish_values()) {
          return kWorkerExitOrphan;
        }
        if (transport_->needs_values_ack()) {
          // Resilient TCP halt: the stream dies with this process, so hold
          // until the coordinator confirms the values are durably its —
          // a coordinator crash inside the halt window then re-collects
          // them from the reconnect backlog instead of losing them.
          return await_values_ack() ? kWorkerExitHalt : kWorkerExitOrphan;
        }
        return kWorkerExitHalt;
      }
      if constexpr (HasSerializableAggregator<Program>) {
        engine_.set_aggregated(
            std::span<const std::uint8_t>(proceed.payload,
                                          proceed.payload_len));
      }

      engine_.advance();
      maybe_fault(ShardFault::Phase::kBeforeCheckpoint, s);
      const std::uint64_t next = s + 1;
      if (checkpoint_due(next)) {
        write_checkpoint(next);
      }
      maybe_fault(ShardFault::Phase::kAfterCheckpoint, s);
      s = next;
    }
  }

 private:
  struct RetainedGen {
    std::uint64_t superstep = 0;
    std::vector<std::vector<std::uint8_t>> frames;  ///< per dst; self empty
  };

  [[nodiscard]] static double now() noexcept {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  [[nodiscard]] std::string shard_dir() const {
    return cfg_.options->checkpoint.directory + "/shard" +
           std::to_string(cfg_.me);
  }

  /// Restores from the newest per-shard snapshot that passes structural
  /// AND binding validation (graph, program, shard topology, slot range).
  /// A scripted RestoreFault wraps the directory's filesystem in
  /// io::ReadFaultVfs, so the newest snapshot reads as EIO, gets
  /// quarantined, and the walk falls back a generation — all through the
  /// production code path.
  bool try_restore(std::uint64_t& resume, ft::CheckpointMode& mode) {
    io::Vfs* base = cfg_.options->checkpoint.vfs;
    std::optional<io::ReadFaultVfs> faulty;
    for (const RestoreFault& rf : cfg_.options->restore_faults) {
      if (rf.shard == cfg_.me && rf.generation == cfg_.generation) {
        faulty.emplace(io::vfs_or_real(base), rf.fail_reads);
      }
    }
    io::Vfs* vfs = faulty.has_value() ? &*faulty : base;
    ft::SnapshotDirectory dir(shard_dir(), cfg_.options->checkpoint.basename,
                              vfs, cfg_.options->checkpoint.keep);
    const auto validator = [this](const ft::EngineSnapshot& snap) {
      return engine_.validate(snap, cfg_.graph_fp, bound_fp_);
    };
    std::optional<ft::SnapshotDirectory::Entry> entry;
    try {
      entry = dir.newest_valid(validator);
    } catch (const std::exception&) {
      return false;  // unreadable directory — restart from scratch
    }
    if (!entry.has_value()) {
      return false;
    }
    try {
      const ft::EngineSnapshot snap = ft::read_snapshot(entry->path, vfs);
      engine_.initialize();
      engine_.restore(snap);
      resume = snap.meta.superstep;
      mode = snap.meta.mode;
      return true;
    } catch (const std::exception&) {
      return false;
    }
  }

  /// Cut-negotiation restore: the newest snapshot at or below `cap` that
  /// fully validates. Unlike try_restore this must NOT quarantine newer
  /// snapshots — they are perfectly good, just above the proposed cut —
  /// so the walk filters by superstep before validating.
  bool try_restore_capped(std::uint64_t cap, std::uint64_t& resume,
                          ft::CheckpointMode& mode) {
    io::Vfs* vfs = cfg_.options->checkpoint.vfs;
    ft::SnapshotDirectory dir(shard_dir(), cfg_.options->checkpoint.basename,
                              vfs, cfg_.options->checkpoint.keep);
    std::vector<ft::SnapshotDirectory::Entry> entries;
    try {
      entries = dir.list();
    } catch (const std::exception&) {
      return false;
    }
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
      if (it->superstep > cap) {
        continue;
      }
      try {
        const ft::EngineSnapshot snap = ft::read_snapshot(it->path, vfs);
        if (engine_.validate(snap, cfg_.graph_fp, bound_fp_) != nullptr) {
          continue;
        }
        engine_.initialize();
        engine_.restore(snap);
        resume = snap.meta.superstep;
        mode = snap.meta.mode;
        return true;
      } catch (const std::exception&) {
        continue;  // torn/unreadable: fall back a generation
      }
    }
    return false;
  }

  /// Full-respawn rebuild of the in-flight state at a lightweight cut:
  /// every worker restored the SAME superstep, so nobody holds anybody's
  /// retained frames. Each worker regenerates ALL its outboxes via resend
  /// semantics as superstep resume-1, pushes the remote slices, and folds
  /// every source's frame (its own included, at source position `me`) in
  /// ascending source order into the current inbox — the original
  /// superstep-(resume-1) exchange, bit for bit.
  void rebuild_all(std::uint64_t resume) {
    engine_.regenerate_all(resume);
    for (std::size_t src = 0; src < part_.shards(); ++src) {
      floor_[src] = resume - 1;
    }
    RetainedGen gen;
    gen.superstep = resume - 1;
    gen.frames.resize(part_.shards());
    for (std::size_t dst = 0; dst < part_.shards(); ++dst) {
      gen.frames[dst] = engine_.take_outbox(dst);
      if (dst != cfg_.me) {
        push_frame(dst, resume - 1, gen.frames[dst]);
      }
    }
    std::vector<std::uint8_t> self_frame = std::move(gen.frames[cfg_.me]);
    gen.frames[cfg_.me].clear();
    retained_.push_back(std::move(gen));
    exchange(resume - 1, /*into_current=*/true, /*self_resend=*/false,
             &self_frame);
  }

  /// The coordinator is gone for good on the current link. With recovery
  /// enabled, park on the reattach rendezvous awaiting a fenced takeover;
  /// on adoption, re-introduce this live incarnation (hello.active == 1,
  /// pid attached) and re-send the latest barrier so the takeover can
  /// re-collect anything its predecessor never committed. False = recovery
  /// disabled or the park window expired — the caller exits orphan, the
  /// bounded-exit guarantee.
  bool on_ctrl_down() {
    const RecoveryOptions& rec = cfg_.options->recovery;
    if (!rec.enabled()) {
      return false;
    }
    const auto epoch =
        transport_->reattach_ctrl(rec.park_seconds, coord_epoch_);
    if (!epoch.has_value()) {
      return false;
    }
    coord_epoch_ = std::max(coord_epoch_, *epoch);
    transport_->note_epoch(coord_epoch_);
    CtrlMsg hello;
    hello.kind = CtrlMsg::Kind::kHello;
    hello.shard = static_cast<std::uint32_t>(cfg_.me);
    hello.superstep = superstep_now_;
    hello.flag = cfg_.generation;
    hello.sent = static_cast<std::uint64_t>(::getpid());
    hello.active = 1;  // adoption: a live incarnation re-binding
    hello.epoch = coord_epoch_;
    if (!transport_->ctrl_send(hello)) {
      return false;
    }
    if (pending_barrier_.has_value()) {
      CtrlMsg barrier = *pending_barrier_;
      barrier.epoch = coord_epoch_;
      if (!transport_->ctrl_send(barrier)) {
        return false;
      }
    }
    return true;
  }

  /// Resilient TCP halt hold: wait (bounded by the park window) for the
  /// coordinator's durable-receipt ack. The transport keeps reconnecting
  /// underneath — a takeover gets the values re-sent from the backlog and
  /// acks once its own values blob is durable.
  bool await_values_ack() {
    const double deadline =
        now() + std::max(cfg_.options->recovery.park_seconds, 1.0) + 2.0;
    while (now() < deadline) {
      const auto msg = transport_->ctrl_recv(10);
      if (msg.has_value()) {
        if (msg->kind == CtrlMsg::Kind::kValuesAck) {
          return true;
        }
        if (msg->kind == CtrlMsg::Kind::kAbort) {
          ::_exit(kWorkerExitAbort);
        }
      }
      if (transport_->ctrl_down()) {
        return false;
      }
      heartbeat();
    }
    return false;
  }

  [[nodiscard]] bool checkpoint_due(std::uint64_t resume) const noexcept {
    const ft::CheckpointPolicy& p = cfg_.options->checkpoint;
    if (!p.enabled() || resume == 0) {
      return false;
    }
    // kAdaptive degenerates to every-superstep here: per-shard cost
    // modelling is a coordinator concern the shard runtime does not
    // duplicate.
    const std::size_t every =
        p.trigger == ft::CheckpointTrigger::kEveryK ? std::max<std::size_t>(
                                                          p.every, 1)
                                                    : 1;
    return resume % every == 0;
  }

  void write_checkpoint(std::uint64_t resume) {
    const ft::CheckpointPolicy& p = cfg_.options->checkpoint;
    io::Vfs& vfs = io::vfs_or_real(p.vfs);
    try {
      if (!vfs.exists(shard_dir())) {
        vfs.mkdir(shard_dir());
      }
      const auto snap =
          engine_.capture(p.mode, resume, cfg_.graph_fp, bound_fp_);
      ft::write_snapshot(ft::snapshot_path(shard_dir(), p.basename, resume),
                         snap, p.vfs);
      ft::SnapshotDirectory dir(shard_dir(), p.basename, p.vfs, p.keep);
      dir.prune([this](const ft::EngineSnapshot& s) {
        return engine_.validate(s, cfg_.graph_fp, bound_fp_);
      });
    } catch (const std::exception&) {
      // Losing one checkpoint costs recomputation, not correctness; the
      // next trigger retries.
    }
  }

  void heartbeat() {
    const double t = now();
    if (t - last_heartbeat_ < cfg_.options->heartbeat_interval_seconds) {
      return;
    }
    last_heartbeat_ = t;
    CtrlMsg hb;
    hb.kind = CtrlMsg::Kind::kHeartbeat;
    hb.shard = static_cast<std::uint32_t>(cfg_.me);
    hb.epoch = coord_epoch_;
    if (!transport_->ctrl_send(hb)) {
      // The heartbeat is sent from inside every blocking loop, so this is
      // where a coordinator death is usually first noticed — and where
      // the park-and-reattach (or the bounded orphan exit) happens.
      if (!on_ctrl_down()) {
        ::_exit(kWorkerExitOrphan);
      }
    }
  }

  void maybe_fault(ShardFault::Phase phase, std::uint64_t superstep) {
    for (ShardFault& f : armed_) {
      if (f.kind == ShardFault::Kind::kNone || f.phase != phase ||
          f.superstep != superstep) {
        continue;
      }
      const ShardFault::Kind kind = f.kind;
      f.kind = ShardFault::Kind::kNone;  // fire once
      if (kind == ShardFault::Kind::kSigkill) {
        ::kill(::getpid(), SIGKILL);
      }
      // kHang: stop progressing AND stop heartbeating; only the
      // coordinator's watchdog can end this incarnation.
      for (;;) {
        ::pause();
      }
    }
  }

  /// Moves every collectable frame from the peer links into the pending
  /// stash, dropping stale generations (below the per-source floor) and
  /// duplicates (republished frames are byte-identical to the originals).
  /// Reconnected peers reported by the transport get the full retained
  /// republish — the resync half of reconnect-with-resync.
  void drain_frames() {
    for (std::size_t src = 0; src < part_.shards(); ++src) {
      if (src == cfg_.me) {
        continue;
      }
      while (auto frame = transport_->try_collect(src)) {
        if (frame->header.superstep < floor_[src]) {
          continue;
        }
        pending_[src].emplace(frame->header.superstep,
                              std::move(frame->payload));
      }
    }
    for (const std::size_t peer : transport_->take_resync_peers()) {
      // Superstep 0 = "republish everything retained": the peer's dedup
      // (floor + byte-identical duplicates) keeps the overshoot safe.
      CtrlMsg req;
      req.kind = CtrlMsg::Kind::kRecover;
      req.shard = static_cast<std::uint32_t>(peer);
      req.superstep = 0;
      deferred_recover_.push_back(req);
    }
    if (!in_push_ && !deferred_recover_.empty()) {
      flush_recover();
    }
  }

  /// Processes queued control messages. kProceed is returned to the
  /// caller (only the barrier wait expects one); everything else is
  /// handled inline. Republishing is deferred while a frame push is in
  /// flight to keep pushes non-reentrant.
  std::optional<CtrlMsg> pump(int timeout_ms) {
    const auto msg = transport_->ctrl_recv(timeout_ms);
    if (!msg.has_value()) {
      return std::nullopt;
    }
    if (cfg_.options->recovery.enabled()) {
      if (msg->epoch < coord_epoch_) {
        // A fenced incarnation's message still in flight: never obeyed.
        return std::nullopt;
      }
      if (msg->epoch > coord_epoch_) {
        coord_epoch_ = msg->epoch;
        transport_->note_epoch(coord_epoch_);
      }
    }
    switch (msg->kind) {
      case CtrlMsg::Kind::kAbort:
        ::_exit(kWorkerExitAbort);
      case CtrlMsg::Kind::kRecover:
        if (msg->shard != cfg_.me) {
          deferred_recover_.push_back(*msg);
          if (!in_push_) {
            flush_recover();
          }
        }
        return std::nullopt;
      case CtrlMsg::Kind::kProceed:
        return msg;
      default:
        return std::nullopt;
    }
  }

  /// Republishes retained frames to a recovering peer: every generation
  /// from its rebuild horizon (resume - 1 covers a lightweight rebuild)
  /// onward, oldest first so the receiver's cursor walks them in order.
  void flush_recover() {
    while (!deferred_recover_.empty()) {
      const CtrlMsg req = deferred_recover_.front();
      deferred_recover_.pop_front();
      const std::size_t peer = req.shard;
      const std::uint64_t oldest =
          req.superstep == 0 ? 0 : req.superstep - 1;
      for (const RetainedGen& gen : retained_) {
        if (gen.superstep < oldest) {
          continue;
        }
        push_frame(peer, gen.superstep, gen.frames[peer]);
      }
    }
  }

  /// Blocking publish with liveness: spins draining our own inputs and
  /// heartbeating until the frame fits (ring full / TCP link down or
  /// backpressured). A link that stays unwritable past the deadline means
  /// the peer is dead and the coordinator lost track of it — exiting lets
  /// the supervisor treat US as the failure and untangle.
  void push_frame(std::size_t dst, std::uint64_t superstep,
                  std::span<const std::uint8_t> payload) {
    in_push_ = true;
    const double deadline = now() + push_deadline_seconds();
    while (!transport_->try_publish(dst, superstep, payload)) {
      drain_frames();
      pump(1);
      heartbeat();
      if (now() > deadline) {
        ::_exit(kWorkerExitStuck);
      }
    }
    in_push_ = false;
    if (!deferred_recover_.empty()) {
      flush_recover();
    }
  }

  [[nodiscard]] double push_deadline_seconds() const noexcept {
    const double hang = cfg_.options->hang_timeout_seconds > 0.0
                            ? cfg_.options->hang_timeout_seconds
                            : (cfg_.options->guards.superstep_seconds > 0.0
                                   ? cfg_.options->guards.superstep_seconds
                                   : 30.0);
    return hang * 4.0;
  }

  /// Applies every source's frame for `superstep` in ascending source
  /// order — the determinism backbone. `self_resend` replays
  /// Program::resend at our own position (lightweight rebuild);
  /// otherwise `self_frame` is applied there.
  void exchange(std::uint64_t superstep, bool into_current, bool self_resend,
                const std::vector<std::uint8_t>* self_frame) {
    for (std::size_t src = 0; src < part_.shards(); ++src) {
      if (src == cfg_.me) {
        if (self_resend) {
          engine_.resend_self(superstep + 1);
        } else if (self_frame != nullptr) {
          engine_.apply_frame(*self_frame, into_current);
        }
        continue;
      }
      for (;;) {
        auto it = pending_[src].find(superstep);
        if (it != pending_[src].end()) {
          engine_.apply_frame(it->second, into_current);
          pending_[src].erase(pending_[src].begin(), std::next(it));
          floor_[src] = std::max(floor_[src], superstep + 1);
          break;
        }
        drain_frames();
        pump(1);
        heartbeat();
      }
    }
  }

  /// Waits at the barrier for the release of `superstep`, draining links
  /// (peers may already be posting the next superstep) and serving
  /// recovery requests meanwhile.
  [[nodiscard]] CtrlMsg await_proceed(std::uint64_t superstep) {
    for (;;) {
      if (const auto msg = pump(2)) {
        if (msg->superstep == superstep) {
          return *msg;
        }
        // A stale release for a superstep we already passed — possible
        // only for redone barriers; ignore.
      }
      drain_frames();
      heartbeat();
    }
  }

  WorkerConfig<Program> cfg_;
  std::unique_ptr<Transport> transport_;
  ShardPartition part_;
  ShardEngine<Program> engine_;
  std::uint64_t bound_fp_;
  std::vector<std::size_t> owned_slots_;

  /// Received-but-unapplied frames per source, keyed by superstep.
  std::vector<std::map<std::uint64_t, std::vector<std::uint8_t>>> pending_;
  /// Frames below this per-source superstep are stale duplicates.
  std::vector<std::uint64_t> floor_;
  /// Our recent outgoing frames, kept for peers that respawn behind us.
  std::deque<RetainedGen> retained_;
  std::deque<CtrlMsg> deferred_recover_;
  std::vector<ShardFault> armed_;

  double last_heartbeat_ = 0.0;
  bool in_push_ = false;

  /// Newest coordinator fencing epoch this worker has obeyed.
  std::uint64_t coord_epoch_ = 0;
  /// Superstep the run loop is currently in (adoption hellos report it).
  std::uint64_t superstep_now_ = 0;
  /// Latest barrier sent, re-sent on adoption by a takeover coordinator.
  std::optional<CtrlMsg> pending_barrier_;
};

/// Child-process entry: builds the transport matching the configured
/// plane and runs the worker. Defined out of Worker so the coordinator's
/// fork branch is one call.
template <VertexProgram Program>
[[noreturn]] inline void worker_main(const WorkerConfig<Program>& cfg,
                                     Channel channel) {
  int code = 1;
  try {
    std::unique_ptr<Transport> transport;
    if (cfg.options->transport == TransportKind::kTcp) {
      cfg.rendezvous->close_in_child_except(cfg.me);
      transport = make_tcp_transport(*cfg.rendezvous, cfg.me, cfg.generation,
                                     *cfg.options);
    } else {
      auto shm = std::make_unique<ShmTransport>(
          *cfg.spec, *cfg.arena, cfg.me, cfg.options->num_shards,
          std::move(channel));
      if (cfg.options->recovery.enabled()) {
        shm->set_reattach_path(cfg.options->recovery.directory +
                               "/reattach.sock");
      }
      transport = std::move(shm);
    }
    transport->note_epoch(cfg.coord_epoch);
    Worker<Program> worker(cfg, std::move(transport));
    code = worker.run();
  } catch (const PeerUnreachable&) {
    code = kWorkerExitUnreachable;
  } catch (...) {
    code = 2;
  }
  ::_exit(code);
}

}  // namespace ipregel::shard
