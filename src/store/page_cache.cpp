#include "store/page_cache.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ipregel::store {

PageCache::PageCache(const PagedStore& store, PageCacheOptions options)
    : store_(store), options_(std::move(options)) {
  if (options_.budget_bytes < store_.page_bytes()) {
    throw std::invalid_argument(
        "page-cache budget (" + std::to_string(options_.budget_bytes) +
        " bytes) below a single page (" +
        std::to_string(store_.page_bytes()) + " bytes)");
  }
  if (options_.thrash_window == 0) {
    options_.thrash_window = 1;
  }
}

PageCache::Pin PageCache::pin(std::uint64_t index) {
  std::string shed_detail;
  Pin out;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = frames_.find(index);
    if (it != frames_.end()) {
      Frame& frame = it->second;
      ++frame.pins;
      lru_.splice(lru_.begin(), lru_, frame.lru);
      ++stats_.hits;
      shed_detail = note_access_locked(/*hit=*/true);
      out = Pin(this, index, frame.buffer.data(), frame.payload_bytes);
    } else {
      ++stats_.misses;
      make_room_locked();
      std::vector<std::uint8_t> buffer(store_.page_bytes());
      const std::size_t payload =
          load_with_retries_locked(index, buffer.data());
      Frame& frame = insert_frame_locked(index, std::move(buffer), payload);
      frame.pins = 1;
      shed_detail = note_access_locked(/*hit=*/false);
      if (level_ == 0 && options_.read_ahead_pages > 0) {
        read_ahead_locked(index);
      }
      out = Pin(this, index, frame.buffer.data(), frame.payload_bytes);
    }
  }
  if (!shed_detail.empty() && options_.shed) {
    options_.shed(shed_detail);
  }
  return out;
}

void PageCache::unpin(std::uint64_t index) noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(index);
  if (it == frames_.end() || it->second.pins == 0) {
    // An unpin with no matching pin is a framework bug; stay saturating
    // (never negative) like the memory tracker rather than corrupting
    // the count.
    return;
  }
  Frame& frame = it->second;
  --frame.pins;
  if (frame.pins == 0 && level_ >= 2) {
    // Rung 2: no retention — the budget serves only pages actually under
    // computation.
    evict_locked(index);
  }
}

void PageCache::make_room_locked() {
  const std::size_t page = store_.page_bytes();
  while (stats_.resident_bytes + page > options_.budget_bytes) {
    // Evict from the cold end, skipping pinned frames.
    auto victim = lru_.end();
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (frames_.at(*it).pins == 0) {
        victim = std::prev(it.base());
        break;
      }
    }
    if (victim == lru_.end()) {
      throw PageError(PageErrorKind::kBudgetExhausted, store_.path(),
                      PageError::kNoPage, 1,
                      "every resident page is pinned; budget of " +
                          std::to_string(options_.budget_bytes) +
                          " bytes cannot admit another page");
    }
    evict_locked(*victim);
  }
}

void PageCache::evict_locked(std::uint64_t index) {
  auto it = frames_.find(index);
  lru_.erase(it->second.lru);
  stats_.resident_bytes -= store_.page_bytes();
  --stats_.resident_pages;
  ++stats_.evictions;
  frames_.erase(it);  // releases the frame's ledger charge
}

std::size_t PageCache::load_with_retries_locked(std::uint64_t index,
                                                std::uint8_t* out) {
  std::size_t attempts = 0;
  for (;;) {
    ++attempts;
    try {
      const std::size_t payload = store_.read_page(index, out);
      if (quarantined_.erase(index) > 0) {
        ++stats_.quarantine_refetches;
      }
      return payload;
    } catch (const PageError& e) {
      if (e.kind() == PageErrorKind::kBadCrc) {
        ++stats_.crc_failures;
        if (quarantined_.insert(index).second) {
          ++stats_.quarantine_events;
        }
      } else {
        ++stats_.io_failures;
      }
      if (!e.retryable() || attempts > options_.max_retries) {
        if (!e.retryable()) {
          throw;
        }
        throw PageError(PageErrorKind::kRetriesExhausted, store_.path(),
                        index, attempts, e.what());
      }
      ++stats_.retries;
    }
    // io::PowerLoss propagates out of read_page uncaught: a dead disk is
    // terminal, never retried.
  }
}

PageCache::Frame& PageCache::insert_frame_locked(
    std::uint64_t index, std::vector<std::uint8_t> buffer,
    std::size_t payload_bytes) {
  Frame& frame = frames_[index];
  frame.buffer = std::move(buffer);
  frame.payload_bytes = payload_bytes;
  frame.pins = 0;
  lru_.push_front(index);
  frame.lru = lru_.begin();
  frame.charge = runtime::MemReservation(runtime::MemCategory::kPageCache,
                                         store_.page_bytes());
  stats_.resident_bytes += store_.page_bytes();
  ++stats_.resident_pages;
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
  return frame;
}

void PageCache::read_ahead_locked(std::uint64_t after) {
  const std::uint64_t last =
      std::min<std::uint64_t>(after + options_.read_ahead_pages,
                              store_.num_pages() == 0
                                  ? 0
                                  : store_.num_pages() - 1);
  for (std::uint64_t p = after + 1; p <= last; ++p) {
    if (frames_.contains(p)) {
      continue;
    }
    // Speculative pages only fill spare budget — never evict for them.
    if (stats_.resident_bytes + store_.page_bytes() > options_.budget_bytes) {
      return;
    }
    std::vector<std::uint8_t> buffer(store_.page_bytes());
    std::size_t payload = 0;
    try {
      payload = load_with_retries_locked(p, buffer.data());
    } catch (const PageError&) {
      // A failed speculation is not a failure of the demand access; the
      // page will be read (and retried, and typed) when actually needed.
      // (io::PowerLoss still propagates: the disk is gone either way.)
      return;
    }
    insert_frame_locked(p, std::move(buffer), payload);
    ++stats_.read_ahead_loaded;
  }
}

std::string PageCache::note_access_locked(bool hit) {
  ++window_accesses_;
  if (!hit) {
    ++window_misses_;
  }
  if (window_accesses_ < options_.thrash_window) {
    return {};
  }
  const double rate = static_cast<double>(window_misses_) /
                      static_cast<double>(window_accesses_);
  window_accesses_ = 0;
  window_misses_ = 0;
  std::string shed_detail;
  if (rate >= options_.high_miss_rate) {
    ++hot_windows_;
    if (hot_windows_ >= options_.ladder_patience) {
      hot_windows_ = 0;
      const std::size_t from = level_;
      if (level_ < 3) {
        ++level_;
      }
      std::string detail;
      switch (level_) {
        case 1:
          detail = "read-ahead disabled";
          break;
        case 2:
          detail = "retention disabled (pinned pages only)";
          break;
        default:
          detail = "requesting external shed (paging pressure)";
          shed_detail = "page-cache thrash on " + store_.path() +
                        " (miss rate " + std::to_string(rate) + ")";
          break;
      }
      events_.push_back({from, level_, rate, std::move(detail)});
      stats_.level = level_;
    }
  } else if (rate < options_.low_miss_rate) {
    hot_windows_ = 0;
    if (level_ > 0) {
      const std::size_t from = level_;
      --level_;
      events_.push_back({from, level_, rate, "pressure receded"});
      stats_.level = level_;
    }
  } else {
    hot_windows_ = 0;
  }
  return shed_detail;
}

PageCacheStats PageCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<CacheDegradationEvent> PageCache::degradation_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t PageCache::level() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return level_;
}

bool PageCache::contains(std::uint64_t index) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return frames_.contains(index);
}

}  // namespace ipregel::store
