#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/memory_tracker.hpp"
#include "store/paged_store.hpp"

namespace ipregel::store {

/// Tuning and policy knobs for the page cache.
struct PageCacheOptions {
  /// Ceiling on resident page bytes, charged to the memory-reservation
  /// ledger (MemCategory::kPageCache) frame by frame. The cache NEVER
  /// holds more than this; when every resident page is pinned and a new
  /// one is needed, it fails typed (kBudgetExhausted) instead of
  /// overrunning the reservation.
  std::size_t budget_bytes = std::size_t{1} << 20;
  /// Contiguous pages fetched speculatively after a demand miss (same
  /// file order the sections are laid out in). Read-ahead only fills
  /// SPARE budget — it never evicts — and is the first thing the
  /// degradation ladder turns off.
  std::size_t read_ahead_pages = 2;
  /// Re-reads after a failed page attempt before the failure is terminal
  /// (kRetriesExhausted). io::PowerLoss is never retried.
  std::size_t max_retries = 2;
  /// Demand accesses per miss-rate sample window.
  std::size_t thrash_window = 256;
  /// Window miss rate at/above which the window counts as thrashing.
  double high_miss_rate = 0.95;
  /// Window miss rate below which the ladder steps back down.
  double low_miss_rate = 0.50;
  /// Consecutive thrashing windows before the ladder escalates a level.
  std::size_t ladder_patience = 2;
  /// Rung-3 pressure relief: asked to shed external work (the service
  /// layer points this at JobManager::shed_weakest_queued). Returns
  /// whether anything was shed. Called outside the cache lock.
  std::function<bool(const std::string&)> shed{};
};

/// Cumulative cache counters (a snapshot; taken under the cache lock).
struct PageCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t retries = 0;           ///< extra read attempts that were made
  std::size_t crc_failures = 0;      ///< reads rejected by the page seal
  std::size_t io_failures = 0;       ///< reads rejected by the transport
  std::size_t quarantine_events = 0; ///< pages entering quarantine
  std::size_t quarantine_refetches = 0;  ///< quarantined pages re-read clean
  std::size_t read_ahead_loaded = 0;
  std::size_t resident_pages = 0;
  std::size_t resident_bytes = 0;
  std::size_t peak_resident_bytes = 0;
  std::size_t level = 0;  ///< current degradation-ladder rung
};

/// One recorded ladder transition (or rung-3 shed request) — the paging
/// analogue of service::DegradationLog: sustained thrash must leave an
/// auditable trail, not just different timings.
struct CacheDegradationEvent {
  std::size_t from_level = 0;
  std::size_t to_level = 0;
  double miss_rate = 0.0;
  std::string detail;
};

/// Pinning LRU cache of verified store pages, budget-charged to the
/// memory ledger, with bounded retry, quarantine-and-refetch, and a
/// miss-rate-driven degradation ladder.
///
/// The ladder (climbed after `ladder_patience` consecutive windows at or
/// above `high_miss_rate`, descended when a window drops below
/// `low_miss_rate`):
///
///   level 0  normal: LRU retention + read-ahead
///   level 1  read-ahead off (speculative bytes are the cheapest to give
///            up; a thrashing scan was not using them anyway)
///   level 2  retention off: a page is dropped the moment its last pin
///            is released, so the budget serves only the pages actually
///            under computation (graceful degradation to "stream, don't
///            cache")
///   level 3  external shedding: the configured `shed` hook is asked to
///            release memory elsewhere (the JobManager evicts its least
///            important queued job), once per thrashing window
///
/// Failure ladder per page: read -> verify seal -> on damage retry up to
/// `max_retries` times (CRC failures additionally quarantine the page:
/// the damaged copy is never cached or served, and a later clean read is
/// counted as a refetch) -> typed kRetriesExhausted. A power cut
/// propagates immediately as io::PowerLoss, untyped-unwrapped, unretried.
///
/// Thread-safe; one lock serialises metadata AND misses' disk reads
/// (correctness over concurrency — the streaming superstep measures its
/// slowdown curve against this, honestly).
class PageCache {
 public:
  PageCache(const PagedStore& store, PageCacheOptions options);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// RAII pin on one verified resident page. The payload pointer stays
  /// valid (and the page stays resident) until destruction. Move-only.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept { swap(other); }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        release();
        swap(other);
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { release(); }

    /// The page's verified payload (logical length, padding excluded).
    [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] std::uint64_t page() const noexcept { return page_; }

   private:
    friend class PageCache;
    Pin(PageCache* cache, std::uint64_t page, const std::uint8_t* data,
        std::size_t size) noexcept
        : cache_(cache), page_(page), data_(data), size_(size) {}
    void release() noexcept {
      if (cache_ != nullptr) {
        cache_->unpin(page_);
        cache_ = nullptr;
      }
    }
    void swap(Pin& other) noexcept {
      std::swap(cache_, other.cache_);
      std::swap(page_, other.page_);
      std::swap(data_, other.data_);
      std::swap(size_, other.size_);
    }

    PageCache* cache_ = nullptr;
    std::uint64_t page_ = 0;
    const std::uint8_t* data_ = nullptr;
    std::size_t size_ = 0;
  };

  /// Returns a pinned, seal-verified copy of page `index`, fetching (and
  /// possibly retrying / evicting / reading ahead) as needed. Throws a
  /// typed PageError; propagates io::PowerLoss.
  [[nodiscard]] Pin pin(std::uint64_t index);

  [[nodiscard]] PageCacheStats stats() const;
  [[nodiscard]] std::vector<CacheDegradationEvent> degradation_events() const;
  [[nodiscard]] std::size_t level() const;
  [[nodiscard]] std::size_t budget_bytes() const noexcept {
    return options_.budget_bytes;
  }
  /// Whether `index` is resident right now (tests only).
  [[nodiscard]] bool contains(std::uint64_t index) const;

 private:
  struct Frame {
    std::vector<std::uint8_t> buffer;
    std::size_t payload_bytes = 0;
    std::size_t pins = 0;
    std::list<std::uint64_t>::iterator lru;
    runtime::MemReservation charge;
  };

  void unpin(std::uint64_t index) noexcept;
  /// Evicts unpinned LRU frames until a new page fits the budget; throws
  /// kBudgetExhausted when pinned frames alone leave no room.
  void make_room_locked();
  void evict_locked(std::uint64_t index);
  /// One seal-verified read with the bounded retry/quarantine ladder.
  std::size_t load_with_retries_locked(std::uint64_t index,
                                       std::uint8_t* out);
  Frame& insert_frame_locked(std::uint64_t index,
                             std::vector<std::uint8_t> buffer,
                             std::size_t payload_bytes);
  void read_ahead_locked(std::uint64_t after);
  /// Window bookkeeping; returns a shed request detail when rung 3 fired
  /// (the callback runs outside the lock).
  [[nodiscard]] std::string note_access_locked(bool hit);

  const PagedStore& store_;
  PageCacheOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Frame> frames_;
  std::list<std::uint64_t> lru_;  ///< front = most recently used
  std::unordered_set<std::uint64_t> quarantined_;
  PageCacheStats stats_;
  std::vector<CacheDegradationEvent> events_;
  std::size_t level_ = 0;
  std::size_t window_accesses_ = 0;
  std::size_t window_misses_ = 0;
  std::size_t hot_windows_ = 0;
};

}  // namespace ipregel::store
