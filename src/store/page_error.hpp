#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ipregel::store {

/// What went wrong while serving a page from the beyond-RAM edge store.
///
/// The paging path has the same design rule as the rest of the failure
/// domain: every abnormal outcome is typed, so callers branch on the kind
/// instead of string-matching. The cache's retry ladder also *dispatches*
/// on it — a CRC failure is retried (the bytes may have been torn in
/// flight), a bad superblock is not (the file itself is wrong and will be
/// wrong again).
enum class PageErrorKind : std::uint8_t {
  /// The underlying Vfs read threw (EIO and friends). Transient on real
  /// hardware, so the cache retries it.
  kIo,
  /// The read returned fewer bytes than the page stride — the file is
  /// truncated or the device lied. Retried: a short read can be a
  /// transient artefact of the transport.
  kShortRead,
  /// The page header is structurally wrong: bad magic, an index that does
  /// not match the slot the page was read from, or a payload length above
  /// the page capacity. Retried once like a CRC failure (a torn read can
  /// shred the header too), typed on its own so diagnostics can tell
  /// "wrong bytes" from "damaged bytes".
  kBadHeader,
  /// Header parsed but the CRC32 seal over header+payload does not match:
  /// silent corruption between the writer's seal and this read. The cache
  /// quarantines the copy and refetches from disk.
  kBadCrc,
  /// The store file's superblock failed validation (magic, version, CRC,
  /// or impossible geometry). The file is unusable; never retried.
  kBadSuperblock,
  /// The bounded retry budget ran out without a clean copy of the page.
  /// What reaches the caller is deterministic — the same page will fail
  /// again — so this is a terminal, typed failure, not a hang.
  kRetriesExhausted,
  /// The cache could not make room inside its memory-ledger budget: every
  /// resident page is pinned. A configuration error (budget below the
  /// working set of concurrent pins), reported instead of overrunning the
  /// reservation.
  kBudgetExhausted,
};

[[nodiscard]] constexpr std::string_view to_string(PageErrorKind k) noexcept {
  switch (k) {
    case PageErrorKind::kIo:
      return "io";
    case PageErrorKind::kShortRead:
      return "short-read";
    case PageErrorKind::kBadHeader:
      return "bad-header";
    case PageErrorKind::kBadCrc:
      return "bad-crc";
    case PageErrorKind::kBadSuperblock:
      return "bad-superblock";
    case PageErrorKind::kRetriesExhausted:
      return "retries-exhausted";
    case PageErrorKind::kBudgetExhausted:
      return "budget-exhausted";
  }
  return "invalid";
}

/// A typed paging failure: which page of which store file, what kind of
/// damage, and after how many read attempts. io::PowerLoss is deliberately
/// NOT wrapped into this — a dead disk must keep its dynamic type so the
/// chaos harness (and the no-retry rule) can recognise it.
class PageError : public std::runtime_error {
 public:
  /// Sentinel for failures with no single page (superblock, budget).
  static constexpr std::uint64_t kNoPage = static_cast<std::uint64_t>(-1);

  PageError(PageErrorKind kind, std::string path, std::uint64_t page,
            std::size_t attempts, const std::string& detail)
      : std::runtime_error(format(kind, path, page, attempts, detail)),
        kind_(kind),
        path_(std::move(path)),
        page_(page),
        attempts_(attempts) {}

  [[nodiscard]] PageErrorKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] bool has_page() const noexcept { return page_ != kNoPage; }
  [[nodiscard]] std::uint64_t page() const noexcept { return page_; }
  /// Read attempts made before giving up (1 for unretried failures).
  [[nodiscard]] std::size_t attempts() const noexcept { return attempts_; }

  /// Whether one more read of the same page can plausibly return clean
  /// bytes: true for transport-level damage, false for structural
  /// verdicts about the file itself.
  [[nodiscard]] bool retryable() const noexcept {
    return kind_ == PageErrorKind::kIo ||
           kind_ == PageErrorKind::kShortRead ||
           kind_ == PageErrorKind::kBadHeader ||
           kind_ == PageErrorKind::kBadCrc;
  }

 private:
  [[nodiscard]] static std::string format(PageErrorKind kind,
                                          const std::string& path,
                                          std::uint64_t page,
                                          std::size_t attempts,
                                          const std::string& detail) {
    std::string out = "[page:";
    out += to_string(kind);
    out += "] ";
    out += path;
    if (page != kNoPage) {
      out += ", page " + std::to_string(page);
    }
    if (attempts > 1) {
      out += ", " + std::to_string(attempts) + " attempts";
    }
    out += ": " + detail;
    return out;
  }

  PageErrorKind kind_;
  std::string path_;
  std::uint64_t page_;
  std::size_t attempts_;
};

}  // namespace ipregel::store
