#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "integrity/crc32.hpp"

namespace ipregel::store {

/// On-disk layout of the beyond-RAM paged CSR edge store.
///
/// A store file is one superblock followed by a run of uniform-stride
/// pages:
///
///   [ superblock, 512 bytes ][ page 0 ][ page 1 ] ... [ page N-1 ]
///
///   page i = [ PageHeader, 16 bytes ][ payload slot, page_bytes bytes ]
///            at byte offset  kSuperblockBytes + i * (16 + page_bytes)
///
/// Every page is sealed: its header carries a CRC32 (the framework's one
/// CRC, integrity::crc32) chained over the header-with-crc-zeroed and the
/// ENTIRE payload slot including zero padding, so a flipped bit anywhere
/// in the page — header, data, or padding — fails verification. Pages are
/// self-identifying (magic + their own index), so a read that lands on
/// the wrong offset is a typed kBadHeader, not silently-wrong edges.
///
/// The uniform stride is the point of the design: page i's offset is pure
/// arithmetic, so the pager issues exactly one positional read per page
/// (Vfs::File::read_at) with no directory structures to cache or corrupt.
/// The CSR arrays are laid into pages section by section; each section
/// starts on a fresh page and is a contiguous little-endian element array
/// (byte b of a section lives in section page b / page_bytes at offset
/// b % page_bytes), which is why page_bytes must be a multiple of 8 — no
/// u32/u64 element ever straddles a page boundary.
///
/// The file is immutable once published (written via io::AtomicFile:
/// tmp → fsync → rename → fsync_dir), so there is no update path to tear;
/// every integrity question is "did these bytes survive", which the seals
/// answer.

inline constexpr std::uint64_t kStoreMagic = 0x4547415047525049ull;  // IPRGPAGE
inline constexpr std::uint32_t kStoreVersion = 1;
inline constexpr std::uint32_t kPageMagic = 0x45474150u;  // "PAGE"
inline constexpr std::size_t kSuperblockBytes = 512;
inline constexpr std::size_t kPageHeaderBytes = 16;

/// Smallest / alignment constraints on the payload-slot size.
inline constexpr std::size_t kMinPageBytes = 64;
inline constexpr std::size_t kPageAlign = 8;

/// Superblock flag bits.
inline constexpr std::uint32_t kFlagHasWeights = 1u << 0;
inline constexpr std::uint32_t kFlagHasInEdges = 1u << 1;

/// The five CSR sections a store can carry, in file order. kWeights and
/// the in-edge sections are optional (num_pages == 0 when absent).
enum class Section : std::uint8_t {
  kOutOffsets,  ///< (num_slots + 1) x u64
  kOutTargets,  ///< num_edges x u32
  kWeights,     ///< num_edges x u32
  kInOffsets,   ///< (num_slots + 1) x u64
  kInTargets,   ///< num_edges x u32
};
inline constexpr std::size_t kNumSections = 5;

/// Where a section's bytes live: a contiguous run of pages.
struct SectionRef {
  std::uint64_t first_page = 0;
  std::uint64_t num_pages = 0;
  std::uint64_t payload_bytes = 0;  ///< logical bytes (last page may be short)
};

/// Fixed 16-byte header sealing one page.
struct PageHeader {
  std::uint32_t magic = kPageMagic;
  std::uint32_t page_index = 0;
  std::uint32_t payload_bytes = 0;  ///< logical bytes in this page's slot
  std::uint32_t crc = 0;            ///< seal; see page_crc()
};
static_assert(sizeof(PageHeader) == kPageHeaderBytes);

/// The CRC32 seal of a page: the first 12 header bytes (crc field
/// excluded by construction) chained over the full payload slot. `slot`
/// must be `capacity` bytes, zero-padded past header.payload_bytes.
[[nodiscard]] inline std::uint32_t page_crc(const PageHeader& header,
                                            const std::uint8_t* slot,
                                            std::size_t capacity) noexcept {
  const std::uint32_t head = integrity::crc32(&header, 12);
  return integrity::crc32(slot, capacity, head);
}

/// Decoded superblock. Serialised as a fixed little-endian field sequence
/// (see store_writer.cpp / paged_store.cpp) padded to kSuperblockBytes,
/// with its own trailing CRC32 — a store whose superblock does not verify
/// is rejected before a single page is read.
struct Superblock {
  std::uint32_t version = kStoreVersion;
  std::uint32_t page_bytes = 0;  ///< payload-slot capacity per page
  std::uint64_t num_vertices = 0;
  std::uint64_t num_slots = 0;
  std::uint64_t first_slot = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t id_offset = 0;
  std::uint32_t flags = 0;
  std::array<SectionRef, kNumSections> sections{};

  [[nodiscard]] const SectionRef& section(Section s) const noexcept {
    return sections[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] SectionRef& section(Section s) noexcept {
    return sections[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] bool has_weights() const noexcept {
    return (flags & kFlagHasWeights) != 0;
  }
  [[nodiscard]] bool has_in_edges() const noexcept {
    return (flags & kFlagHasInEdges) != 0;
  }

  /// Bytes from the start of the file to page `index`.
  [[nodiscard]] std::uint64_t page_offset(std::uint64_t index) const noexcept {
    return kSuperblockBytes +
           index * (kPageHeaderBytes + std::uint64_t{page_bytes});
  }
  /// Total pages in the file (sections are contiguous and in order).
  [[nodiscard]] std::uint64_t num_pages() const noexcept {
    std::uint64_t n = 0;
    for (const SectionRef& s : sections) {
      n += s.num_pages;
    }
    return n;
  }
};

namespace detail {

/// Sequential little-endian-native field packer/unpacker for the
/// superblock. Writer and reader share these so the layout cannot
/// diverge; integers are memcpy'd (this is a single-node cache format,
/// same convention as ft/binary_format.hpp).
template <typename T>
inline void put(std::uint8_t* buf, std::size_t& at, T v) noexcept {
  std::memcpy(buf + at, &v, sizeof(T));
  at += sizeof(T);
}

template <typename T>
inline T get(const std::uint8_t* buf, std::size_t& at) noexcept {
  T v;
  std::memcpy(&v, buf + at, sizeof(T));
  at += sizeof(T);
  return v;
}

}  // namespace detail

/// Serialises `sb` into a kSuperblockBytes buffer: magic, fields, section
/// table, CRC32 over everything so far, zero padding.
inline void encode_superblock(const Superblock& sb,
                              std::uint8_t* out) noexcept {
  std::memset(out, 0, kSuperblockBytes);
  std::size_t at = 0;
  detail::put(out, at, kStoreMagic);
  detail::put(out, at, sb.version);
  detail::put(out, at, sb.page_bytes);
  detail::put(out, at, sb.num_vertices);
  detail::put(out, at, sb.num_slots);
  detail::put(out, at, sb.first_slot);
  detail::put(out, at, sb.num_edges);
  detail::put(out, at, sb.id_offset);
  detail::put(out, at, sb.flags);
  for (const SectionRef& s : sb.sections) {
    detail::put(out, at, s.first_page);
    detail::put(out, at, s.num_pages);
    detail::put(out, at, s.payload_bytes);
  }
  const std::uint32_t crc = integrity::crc32(out, at);
  detail::put(out, at, crc);
}

/// Parses and verifies a kSuperblockBytes buffer into `sb`. Returns
/// nullptr on success, otherwise a static string naming the violation
/// (the caller wraps it into a typed PageError).
[[nodiscard]] inline const char* decode_superblock(const std::uint8_t* in,
                                                   Superblock& sb) noexcept {
  std::size_t at = 0;
  if (detail::get<std::uint64_t>(in, at) != kStoreMagic) {
    return "bad store magic";
  }
  sb.version = detail::get<std::uint32_t>(in, at);
  if (sb.version != kStoreVersion) {
    return "unsupported store version";
  }
  sb.page_bytes = detail::get<std::uint32_t>(in, at);
  sb.num_vertices = detail::get<std::uint64_t>(in, at);
  sb.num_slots = detail::get<std::uint64_t>(in, at);
  sb.first_slot = detail::get<std::uint64_t>(in, at);
  sb.num_edges = detail::get<std::uint64_t>(in, at);
  sb.id_offset = detail::get<std::uint32_t>(in, at);
  sb.flags = detail::get<std::uint32_t>(in, at);
  for (SectionRef& s : sb.sections) {
    s.first_page = detail::get<std::uint64_t>(in, at);
    s.num_pages = detail::get<std::uint64_t>(in, at);
    s.payload_bytes = detail::get<std::uint64_t>(in, at);
  }
  const std::uint32_t expect = integrity::crc32(in, at);
  if (detail::get<std::uint32_t>(in, at) != expect) {
    return "superblock CRC mismatch";
  }
  if (sb.page_bytes < kMinPageBytes || sb.page_bytes % kPageAlign != 0) {
    return "impossible page size";
  }
  return nullptr;
}

}  // namespace ipregel::store
