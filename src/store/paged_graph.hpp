#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "graph/types.hpp"
#include "runtime/memory_tracker.hpp"
#include "store/page_cache.hpp"
#include "store/paged_store.hpp"

namespace ipregel::store {

/// The engine-facing view of a paged store: vertex-sized state resident,
/// edge-sized state streamed.
///
/// This is the split the beyond-RAM mode is built on. The offset arrays
/// are O(V) — the same budget class as the engine's values, mailboxes,
/// and halted flags, all of which stay resident by design — so they are
/// loaded (seal-verified) at construction and answer out_degree() /
/// in_degree() without touching the cache. The target arrays are O(E) —
/// the bytes that don't fit — so neighbour iteration walks their pages
/// through the PageCache, pinning each page exactly once per contiguous
/// run of elements.
///
/// Iteration visits elements in exact CSR array order, which is what
/// makes a streaming pull gather combine in the same order as the in-RAM
/// engine — the heart of the bit-identity guarantee.
class PagedGraph {
 public:
  /// Loads the resident offset arrays (every page verified). Throws
  /// PageError on damage; propagates io::PowerLoss.
  PagedGraph(const PagedStore& store, PageCache& cache)
      : store_(store), cache_(cache), sb_(store.superblock()) {
    out_offsets_ = store_.load_u64_section(Section::kOutOffsets);
    if (sb_.has_in_edges()) {
      in_offsets_ = store_.load_u64_section(Section::kInOffsets);
    }
    offsets_mem_ = runtime::MemReservation(
        runtime::MemCategory::kGraphTopology,
        (out_offsets_.size() + in_offsets_.size()) * sizeof(std::uint64_t));
  }

  PagedGraph(const PagedGraph&) = delete;
  PagedGraph& operator=(const PagedGraph&) = delete;

  [[nodiscard]] const PagedStore& store() const noexcept { return store_; }
  [[nodiscard]] PageCache& cache() const noexcept { return cache_; }

  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return sb_.num_vertices;
  }
  [[nodiscard]] std::size_t num_slots() const noexcept {
    return sb_.num_slots;
  }
  [[nodiscard]] std::size_t first_slot() const noexcept {
    return sb_.first_slot;
  }
  [[nodiscard]] graph::vid_t id_offset() const noexcept {
    return sb_.id_offset;
  }
  [[nodiscard]] graph::eid_t num_edges() const noexcept {
    return sb_.num_edges;
  }
  [[nodiscard]] bool has_in_edges() const noexcept {
    return sb_.has_in_edges();
  }
  [[nodiscard]] bool has_weights() const noexcept {
    return sb_.has_weights();
  }

  [[nodiscard]] std::size_t slot_of(graph::vid_t id) const noexcept {
    return static_cast<std::size_t>(id - sb_.id_offset);
  }
  [[nodiscard]] graph::vid_t id_of(std::size_t slot) const noexcept {
    return static_cast<graph::vid_t>(slot) + sb_.id_offset;
  }

  [[nodiscard]] std::size_t out_degree(std::size_t slot) const noexcept {
    return out_offsets_[slot + 1] - out_offsets_[slot];
  }
  [[nodiscard]] std::size_t in_degree(std::size_t slot) const noexcept {
    return in_offsets_[slot + 1] - in_offsets_[slot];
  }

  /// Calls `fn(vid_t target)` for every out-neighbour of `slot`, in CSR
  /// order, streaming the target pages through the cache.
  template <typename Fn>
  void for_each_out_target(std::size_t slot, Fn&& fn) const {
    for_each_element(Section::kOutTargets, out_offsets_[slot],
                     out_offsets_[slot + 1], fn);
  }

  /// Calls `fn(vid_t source)` for every in-neighbour of `slot`, in CSR
  /// order (identical to CsrGraph::in_neighbours order).
  template <typename Fn>
  void for_each_in_neighbour(std::size_t slot, Fn&& fn) const {
    for_each_element(Section::kInTargets, in_offsets_[slot],
                     in_offsets_[slot + 1], fn);
  }

  /// Calls `fn(vid_t target, weight_t w)` for every out-edge of `slot`.
  /// Requires has_weights(); pins one target page and one weight page at
  /// a time (the cache budget must admit two pinned pages per thread).
  template <typename Fn>
  void for_each_out_edge_weighted(std::size_t slot, Fn&& fn) const {
    const std::uint64_t begin = out_offsets_[slot];
    const std::uint64_t end = out_offsets_[slot + 1];
    for (std::uint64_t e = begin; e < end; ++e) {
      graph::vid_t target;
      graph::weight_t weight;
      read_element(Section::kOutTargets, e, target);
      read_element(Section::kWeights, e, weight);
      fn(target, weight);
    }
  }

 private:
  /// Streams elements [begin, end) of a u32 section page by page: one pin
  /// per touched page, elements delivered in array order. page_bytes is a
  /// multiple of 8, so no element straddles a page boundary.
  template <typename Fn>
  void for_each_element(Section section, std::uint64_t begin,
                        std::uint64_t end, Fn& fn) const {
    const SectionRef& ref = sb_.section(section);
    const std::size_t page_bytes = store_.page_bytes();
    const std::size_t per_page = page_bytes / sizeof(graph::vid_t);
    std::uint64_t e = begin;
    while (e < end) {
      const std::uint64_t page_in_section = e / per_page;
      const std::uint64_t first_in_page = page_in_section * per_page;
      const std::uint64_t last = std::min<std::uint64_t>(
          end, first_in_page + per_page);
      const PageCache::Pin pin =
          cache_.pin(ref.first_page + page_in_section);
      const auto* elems = reinterpret_cast<const graph::vid_t*>(pin.data());
      for (; e < last; ++e) {
        fn(elems[e - first_in_page]);
      }
    }
  }

  template <typename T>
  void read_element(Section section, std::uint64_t index, T& out) const {
    const SectionRef& ref = sb_.section(section);
    const std::size_t per_page = store_.page_bytes() / sizeof(T);
    const PageCache::Pin pin = cache_.pin(ref.first_page + index / per_page);
    std::memcpy(&out, pin.data() + (index % per_page) * sizeof(T), sizeof(T));
  }

  const PagedStore& store_;
  PageCache& cache_;
  const Superblock& sb_;
  std::vector<std::uint64_t> out_offsets_;
  std::vector<std::uint64_t> in_offsets_;
  runtime::MemReservation offsets_mem_;
};

}  // namespace ipregel::store
