#include "store/paged_store.hpp"

#include <cstring>

namespace ipregel::store {

PagedStore::PagedStore(io::Vfs& vfs, std::string path)
    : vfs_(vfs), path_(std::move(path)) {
  try {
    file_ = vfs_.open(path_, io::Vfs::OpenMode::kRead);
    std::uint8_t block[kSuperblockBytes];
    const std::size_t got = file_->read_at(block, sizeof(block), 0);
    if (got != sizeof(block)) {
      throw PageError(PageErrorKind::kShortRead, path_, PageError::kNoPage, 1,
                      "superblock short read (" + std::to_string(got) + " of " +
                          std::to_string(sizeof(block)) + " bytes)");
    }
    if (const char* why = decode_superblock(block, sb_)) {
      throw PageError(PageErrorKind::kBadSuperblock, path_, PageError::kNoPage,
                      1, why);
    }
  } catch (const io::PowerLoss&) {
    throw;  // a dead disk keeps its dynamic type
  } catch (const io::IoError& e) {
    throw PageError(PageErrorKind::kIo, path_, PageError::kNoPage, 1,
                    e.what());
  }
}

std::size_t PagedStore::read_page(std::uint64_t index,
                                  std::uint8_t* out) const {
  if (index >= num_pages()) {
    throw PageError(PageErrorKind::kBadHeader, path_, index, 1,
                    "page index beyond the store's " +
                        std::to_string(num_pages()) + " pages");
  }
  const std::size_t stride = kPageHeaderBytes + page_bytes();
  std::vector<std::uint8_t> raw(stride);
  std::size_t got = 0;
  try {
    got = file_->read_at(raw.data(), stride, sb_.page_offset(index));
  } catch (const io::PowerLoss&) {
    throw;
  } catch (const io::IoError& e) {
    throw PageError(PageErrorKind::kIo, path_, index, 1, e.what());
  }
  if (got != stride) {
    throw PageError(PageErrorKind::kShortRead, path_, index, 1,
                    "read " + std::to_string(got) + " of " +
                        std::to_string(stride) + " page bytes");
  }
  PageHeader header;
  std::memcpy(&header, raw.data(), sizeof(header));
  if (header.magic != kPageMagic) {
    throw PageError(PageErrorKind::kBadHeader, path_, index, 1,
                    "bad page magic");
  }
  if (header.page_index != static_cast<std::uint32_t>(index)) {
    throw PageError(PageErrorKind::kBadHeader, path_, index, 1,
                    "page identifies as index " +
                        std::to_string(header.page_index));
  }
  if (header.payload_bytes > page_bytes()) {
    throw PageError(PageErrorKind::kBadHeader, path_, index, 1,
                    "payload length above page capacity");
  }
  const std::uint8_t* slot = raw.data() + kPageHeaderBytes;
  if (page_crc(header, slot, page_bytes()) != header.crc) {
    throw PageError(PageErrorKind::kBadCrc, path_, index, 1,
                    "page seal mismatch (silent corruption)");
  }
  std::memcpy(out, slot, page_bytes());
  return header.payload_bytes;
}

void PagedStore::load_section_bytes(Section s, std::uint8_t* out,
                                    std::size_t bytes) const {
  const SectionRef& ref = sb_.section(s);
  std::vector<std::uint8_t> slot(page_bytes());
  std::size_t at = 0;
  for (std::uint64_t p = 0; p < ref.num_pages; ++p) {
    const std::size_t payload = read_page(ref.first_page + p, slot.data());
    if (at + payload > bytes) {
      throw PageError(PageErrorKind::kBadHeader, path_, ref.first_page + p, 1,
                      "section pages exceed the section's payload length");
    }
    std::memcpy(out + at, slot.data(), payload);
    at += payload;
  }
  if (at != bytes) {
    throw PageError(PageErrorKind::kBadHeader, path_, PageError::kNoPage, 1,
                    "section pages cover " + std::to_string(at) + " of " +
                        std::to_string(bytes) + " payload bytes");
  }
}

std::vector<std::uint64_t> PagedStore::load_u64_section(Section s) const {
  const SectionRef& ref = sb_.section(s);
  std::vector<std::uint64_t> out(ref.payload_bytes / sizeof(std::uint64_t));
  load_section_bytes(s, reinterpret_cast<std::uint8_t*>(out.data()),
                     ref.payload_bytes);
  return out;
}

std::vector<std::uint32_t> PagedStore::load_u32_section(Section s) const {
  const SectionRef& ref = sb_.section(s);
  std::vector<std::uint32_t> out(ref.payload_bytes / sizeof(std::uint32_t));
  load_section_bytes(s, reinterpret_cast<std::uint8_t*>(out.data()),
                     ref.payload_bytes);
  return out;
}

}  // namespace ipregel::store
