#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/vfs.hpp"
#include "store/page_error.hpp"
#include "store/page_format.hpp"

namespace ipregel::store {

/// Read-side handle on one paged store file: validates the superblock at
/// open, then serves individual sealed pages by index.
///
/// A PagedStore holds ONE open read handle and serves every page through
/// Vfs::File::read_at — positional reads have no cursor, so concurrent
/// readers (the cache under a multi-threaded superstep) cannot hand each
/// other's pages back. The store itself is stateless beyond the decoded
/// superblock; all caching, retrying, and quarantining policy lives in
/// PageCache. read_page() verifies the page's seal on EVERY read — a page
/// is either proven intact or reported as a typed PageError, never
/// returned on faith.
class PagedStore {
 public:
  /// Opens `path` and validates the superblock. Throws PageError
  /// (kBadSuperblock, or kIo/kShortRead for unreadable headers) and lets
  /// io::PowerLoss propagate untouched.
  PagedStore(io::Vfs& vfs, std::string path);

  PagedStore(const PagedStore&) = delete;
  PagedStore& operator=(const PagedStore&) = delete;

  [[nodiscard]] const Superblock& superblock() const noexcept { return sb_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::size_t page_bytes() const noexcept {
    return sb_.page_bytes;
  }
  [[nodiscard]] std::uint64_t num_pages() const noexcept {
    return sb_.num_pages();
  }

  /// Reads page `index` into `out` (capacity >= page_bytes()), verifies
  /// header and CRC seal, and returns the page's logical payload length.
  /// Throws a typed PageError on any violation; io::PowerLoss propagates
  /// as itself (a dead disk is not a page problem and is never retried).
  std::size_t read_page(std::uint64_t index, std::uint8_t* out) const;

  /// Loads a whole section (every page verified) as a u64 / u32 element
  /// array. Used for the resident offset arrays at graph-open time and by
  /// tests comparing store contents against in-RAM CSR arrays.
  [[nodiscard]] std::vector<std::uint64_t> load_u64_section(Section s) const;
  [[nodiscard]] std::vector<std::uint32_t> load_u32_section(Section s) const;

 private:
  void load_section_bytes(Section s, std::uint8_t* out,
                          std::size_t bytes) const;

  io::Vfs& vfs_;
  std::string path_;
  std::unique_ptr<io::Vfs::File> file_;
  Superblock sb_;
};

}  // namespace ipregel::store
