#include "store/store_writer.hpp"

#include <algorithm>
#include <cstring>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "io/stream.hpp"

namespace ipregel::store {

using graph::eid_t;
using graph::vid_t;

void validate_page_bytes(std::size_t page_bytes) {
  if (page_bytes < kMinPageBytes) {
    throw std::invalid_argument("store page_bytes must be >= " +
                                std::to_string(kMinPageBytes) + " (got " +
                                std::to_string(page_bytes) + ")");
  }
  if (page_bytes % kPageAlign != 0) {
    throw std::invalid_argument(
        "store page_bytes must be a multiple of " +
        std::to_string(kPageAlign) +
        " so no array element straddles a page boundary (got " +
        std::to_string(page_bytes) + ")");
  }
  if (page_bytes > 0xFFFFFFFFull) {
    throw std::invalid_argument("store page_bytes must fit in 32 bits");
  }
}

namespace {

[[nodiscard]] std::uint64_t pages_for(std::uint64_t bytes,
                                      std::size_t page_bytes) noexcept {
  return (bytes + page_bytes - 1) / page_bytes;
}

/// Streams section bytes into sealed fixed-stride pages. Each section
/// starts on a fresh page; the final (possibly partial) page of a section
/// is zero-padded to full capacity and sealed like any other.
class PageWriter {
 public:
  PageWriter(std::ostream& out, std::size_t page_bytes)
      : out_(out), page_bytes_(page_bytes), slot_(page_bytes, 0) {}

  void append(const void* data, std::size_t n) {
    section_bytes_ += n;
    const auto* p = static_cast<const std::uint8_t*>(data);
    while (n > 0) {
      const std::size_t room = page_bytes_ - fill_;
      const std::size_t take = std::min(room, n);
      std::memcpy(slot_.data() + fill_, p, take);
      fill_ += take;
      p += take;
      n -= take;
      if (fill_ == page_bytes_) {
        seal_page();
      }
    }
  }

  /// Ends the current section: seals a trailing partial page (if any) and
  /// returns where the section landed.
  SectionRef finish_section() {
    if (fill_ > 0) {
      seal_page();
    }
    SectionRef ref{section_first_page_, page_index_ - section_first_page_,
                   section_bytes_};
    section_first_page_ = page_index_;
    section_bytes_ = 0;
    return ref;
  }

  [[nodiscard]] std::uint64_t pages_written() const noexcept {
    return page_index_;
  }

 private:
  void seal_page() {
    // Zero the unused tail so the seal covers deterministic bytes.
    std::memset(slot_.data() + fill_, 0, page_bytes_ - fill_);
    PageHeader header;
    header.page_index = static_cast<std::uint32_t>(page_index_);
    header.payload_bytes = static_cast<std::uint32_t>(fill_);
    header.crc = page_crc(header, slot_.data(), page_bytes_);
    out_.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out_.write(reinterpret_cast<const char*>(slot_.data()),
               static_cast<std::streamsize>(page_bytes_));
    ++page_index_;
    fill_ = 0;
  }

  std::ostream& out_;
  std::size_t page_bytes_;
  std::vector<std::uint8_t> slot_;
  std::size_t fill_ = 0;
  std::uint64_t page_index_ = 0;
  std::uint64_t section_first_page_ = 0;
  std::uint64_t section_bytes_ = 0;
};

/// Lays out the section table ahead of time (the superblock is written
/// before any page, and the file is strictly sequential).
void layout_sections(Superblock& sb, std::size_t page_bytes,
                     std::size_t num_slots, std::uint64_t num_edges) {
  const std::uint64_t offsets_bytes =
      (static_cast<std::uint64_t>(num_slots) + 1) * sizeof(eid_t);
  const std::uint64_t targets_bytes = num_edges * sizeof(vid_t);
  std::uint64_t next_page = 0;
  const auto place = [&](Section s, std::uint64_t bytes, bool present) {
    SectionRef& ref = sb.section(s);
    ref.first_page = next_page;
    ref.payload_bytes = present ? bytes : 0;
    ref.num_pages = present ? pages_for(bytes, page_bytes) : 0;
    next_page += ref.num_pages;
  };
  place(Section::kOutOffsets, offsets_bytes, true);
  place(Section::kOutTargets, targets_bytes, true);
  place(Section::kWeights, targets_bytes, sb.has_weights());
  place(Section::kInOffsets, offsets_bytes, sb.has_in_edges());
  place(Section::kInTargets, targets_bytes, sb.has_in_edges());
}

void write_superblock(std::ostream& out, const Superblock& sb) {
  std::uint8_t block[kSuperblockBytes];
  encode_superblock(sb, block);
  out.write(reinterpret_cast<const char*>(block), sizeof(block));
}

void check_layout(const Superblock& sb, Section s, const SectionRef& got) {
  const SectionRef& want = sb.section(s);
  if (want.first_page != got.first_page || want.num_pages != got.num_pages ||
      want.payload_bytes != got.payload_bytes) {
    throw std::logic_error(
        "store writer: section landed off its precomputed layout");
  }
}

}  // namespace

void write_store(const graph::CsrGraph& graph, const std::string& path,
                 io::Vfs* vfs, const StoreWriteOptions& options) {
  validate_page_bytes(options.page_bytes);
  io::Vfs& fs = io::vfs_or_real(vfs);

  Superblock sb;
  sb.page_bytes = static_cast<std::uint32_t>(options.page_bytes);
  sb.num_vertices = graph.num_vertices();
  sb.num_slots = graph.num_slots();
  sb.first_slot = graph.first_slot();
  sb.num_edges = graph.num_edges();
  sb.id_offset = graph.id_offset();
  sb.flags = (graph.has_weights() ? kFlagHasWeights : 0u) |
             (graph.has_in_edges() ? kFlagHasInEdges : 0u);
  layout_sections(sb, options.page_bytes, graph.num_slots(),
                  graph.num_edges());

  io::AtomicFile file(fs, path);
  write_superblock(file.stream(), sb);
  PageWriter pages(file.stream(), options.page_bytes);

  // Rebuild the prefix-sum arrays from the graph's public degree API:
  // identical values to its private arrays, slot by slot.
  const std::size_t slots = graph.num_slots();
  {
    std::vector<eid_t> offsets(slots + 1, 0);
    for (std::size_t s = 0; s < slots; ++s) {
      offsets[s + 1] = offsets[s] + graph.out_degree(s);
    }
    pages.append(offsets.data(), offsets.size() * sizeof(eid_t));
    check_layout(sb, Section::kOutOffsets, pages.finish_section());
  }
  for (std::size_t s = 0; s < slots; ++s) {
    const auto span = graph.out_neighbours(s);
    pages.append(span.data(), span.size() * sizeof(vid_t));
  }
  check_layout(sb, Section::kOutTargets, pages.finish_section());
  if (graph.has_weights()) {
    for (std::size_t s = 0; s < slots; ++s) {
      const auto span = graph.out_weights(s);
      pages.append(span.data(), span.size() * sizeof(graph::weight_t));
    }
  }
  check_layout(sb, Section::kWeights, pages.finish_section());
  if (graph.has_in_edges()) {
    std::vector<eid_t> offsets(slots + 1, 0);
    for (std::size_t s = 0; s < slots; ++s) {
      offsets[s + 1] = offsets[s] + graph.in_degree(s);
    }
    pages.append(offsets.data(), offsets.size() * sizeof(eid_t));
    check_layout(sb, Section::kInOffsets, pages.finish_section());
    for (std::size_t s = 0; s < slots; ++s) {
      const auto span = graph.in_neighbours(s);
      pages.append(span.data(), span.size() * sizeof(vid_t));
    }
    check_layout(sb, Section::kInTargets, pages.finish_section());
  } else {
    check_layout(sb, Section::kInOffsets, pages.finish_section());
    check_layout(sb, Section::kInTargets, pages.finish_section());
  }

  file.commit();
}

void write_store_streaming(graph::EdgeSource& source, const std::string& path,
                           io::Vfs* vfs,
                           const StreamingBuildOptions& options) {
  validate_page_bytes(options.page_bytes);
  io::Vfs& fs = io::vfs_or_real(vfs);
  const eid_t m = source.num_edges();

  Superblock sb;
  sb.page_bytes = static_cast<std::uint32_t>(options.page_bytes);
  sb.num_edges = m;
  sb.flags = options.build_in_edges ? kFlagHasInEdges : 0u;

  // Pass 1: id range (replicating CsrGraph::build's addressing maths).
  vid_t min_id = 0;
  vid_t max_id = 0;
  if (m > 0) {
    min_id = static_cast<vid_t>(-1);
    graph::Edge e;
    source.restart();
    while (source.next(e)) {
      min_id = std::min({min_id, e.src, e.dst});
      max_id = std::max({max_id, e.src, e.dst});
    }
    sb.num_vertices = static_cast<std::uint64_t>(max_id) - min_id + 1;
    switch (options.addressing) {
      case graph::AddressingMode::kDirect:
        if (min_id != 0) {
          throw std::invalid_argument(
              "direct mapping requires vertex ids starting at 0 (got min "
              "id " +
              std::to_string(min_id) + "); use offset or desolate mapping");
        }
        sb.id_offset = 0;
        sb.first_slot = 0;
        sb.num_slots = sb.num_vertices;
        break;
      case graph::AddressingMode::kOffset:
        sb.id_offset = min_id;
        sb.first_slot = 0;
        sb.num_slots = sb.num_vertices;
        break;
      case graph::AddressingMode::kDesolate:
        sb.id_offset = 0;
        sb.first_slot = min_id;
        sb.num_slots = static_cast<std::uint64_t>(max_id) + 1;
        break;
    }
  }
  const auto slot_of = [&](vid_t id) {
    return static_cast<std::size_t>(id - sb.id_offset);
  };
  const auto slots = static_cast<std::size_t>(sb.num_slots);

  // Pass 2: degree counts -> prefix sums (vertex-sized, stays resident).
  std::vector<eid_t> out_offsets(slots + 1, 0);
  std::vector<eid_t> in_offsets;
  if (m > 0) {
    graph::Edge e;
    source.restart();
    if (options.build_in_edges) {
      in_offsets.assign(slots + 1, 0);
      while (source.next(e)) {
        ++out_offsets[slot_of(e.src) + 1];
        ++in_offsets[slot_of(e.dst) + 1];
      }
      for (std::size_t s = 0; s < slots; ++s) {
        in_offsets[s + 1] += in_offsets[s];
      }
    } else {
      while (source.next(e)) {
        ++out_offsets[slot_of(e.src) + 1];
      }
    }
    for (std::size_t s = 0; s < slots; ++s) {
      out_offsets[s + 1] += out_offsets[s];
    }
  } else if (options.build_in_edges) {
    in_offsets.assign(slots + 1, 0);
  }

  layout_sections(sb, options.page_bytes, slots, m);

  io::AtomicFile file(fs, path);
  write_superblock(file.stream(), sb);
  PageWriter pages(file.stream(), options.page_bytes);

  pages.append(out_offsets.data(), out_offsets.size() * sizeof(eid_t));
  check_layout(sb, Section::kOutOffsets, pages.finish_section());

  // Chunked counting-sort scatter: targets for scatter positions
  // [lo, hi) are collected in one extra pass over the source, then the
  // chunk is streamed to pages. Edge-list order within a source vertex is
  // preserved (the cursor walks the stream in order), so the emitted
  // array is element-identical to CsrGraph::build's.
  const eid_t chunk_elems = std::max<eid_t>(
      1024, options.edge_ram_budget_bytes / sizeof(vid_t));
  const auto scatter_section =
      [&](const std::vector<eid_t>& offsets, bool by_dst, Section section) {
        std::vector<vid_t> buffer;
        std::vector<eid_t> cursor(slots);
        for (eid_t lo = 0; lo < m; lo += chunk_elems) {
          const eid_t hi = std::min<eid_t>(lo + chunk_elems, m);
          buffer.assign(static_cast<std::size_t>(hi - lo), 0);
          std::copy(offsets.begin(), offsets.end() - 1, cursor.begin());
          graph::Edge e;
          source.restart();
          while (source.next(e)) {
            const vid_t key = by_dst ? e.dst : e.src;
            const vid_t val = by_dst ? e.src : e.dst;
            const eid_t pos = cursor[slot_of(key)]++;
            if (pos >= lo && pos < hi) {
              buffer[static_cast<std::size_t>(pos - lo)] = val;
            }
          }
          pages.append(buffer.data(), buffer.size() * sizeof(vid_t));
        }
        check_layout(sb, section, pages.finish_section());
      };

  scatter_section(out_offsets, /*by_dst=*/false, Section::kOutTargets);
  check_layout(sb, Section::kWeights, pages.finish_section());
  if (options.build_in_edges) {
    pages.append(in_offsets.data(), in_offsets.size() * sizeof(eid_t));
    check_layout(sb, Section::kInOffsets, pages.finish_section());
    scatter_section(in_offsets, /*by_dst=*/true, Section::kInTargets);
  } else {
    check_layout(sb, Section::kInOffsets, pages.finish_section());
    check_layout(sb, Section::kInTargets, pages.finish_section());
  }

  file.commit();
}

}  // namespace ipregel::store
