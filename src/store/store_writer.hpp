#pragma once

#include <cstddef>
#include <string>

#include "graph/csr.hpp"
#include "graph/edge_stream.hpp"
#include "graph/types.hpp"
#include "io/vfs.hpp"
#include "store/page_format.hpp"

namespace ipregel::store {

/// Options for writing a paged store file.
struct StoreWriteOptions {
  /// Payload-slot capacity per page. Must be >= kMinPageBytes and a
  /// multiple of kPageAlign (so no element straddles a page boundary).
  std::size_t page_bytes = std::size_t{1} << 16;
};

/// Serialises a built CsrGraph into a paged store file at `path`,
/// published via io::AtomicFile (crash-safe: the final name either holds
/// the previous complete file or the new complete file, never a torn
/// one). The emitted arrays are byte-for-byte the graph's own CSR arrays,
/// so a paged run over the store sees exactly the topology an in-RAM run
/// sees — the foundation of the bit-identity guarantee.
///
/// Throws std::invalid_argument for a bad page size and io::IoError for
/// filesystem failures.
void write_store(const graph::CsrGraph& graph, const std::string& path,
                 io::Vfs* vfs = nullptr, const StoreWriteOptions& options = {});

/// Options for the streaming (beyond-RAM) store build.
struct StreamingBuildOptions {
  std::size_t page_bytes = std::size_t{1} << 16;
  graph::AddressingMode addressing = graph::AddressingMode::kOffset;
  bool build_in_edges = false;
  /// Bound on the scatter buffer used to place edge targets: the builder
  /// never materialises more than this many bytes of the edge arrays at
  /// once, re-streaming the source once per chunk instead. Vertex-sized
  /// arrays (degree counts, offsets) stay resident — they are O(V), the
  /// same budget class as the engine's values and mailboxes.
  std::size_t edge_ram_budget_bytes = std::size_t{1} << 24;
};

/// Builds a paged store at `path` directly from an edge stream WITHOUT
/// ever materialising the edge list or the CSR arrays in memory: degree
/// counts and offsets are computed in streaming passes, and the target
/// arrays are scattered chunk by chunk within `edge_ram_budget_bytes`
/// (one extra pass over the source per chunk). The resulting file is
/// byte-identical to write_store(CsrGraph::build(same edges)) with the
/// same page size — the chunked scatter replicates the CSR builder's
/// stable counting sort exactly.
///
/// The stream is unweighted (the store's kWeights section is absent).
/// Throws std::invalid_argument for bad options (including kDirect
/// addressing when ids do not start at 0) and io::IoError for filesystem
/// failures.
void write_store_streaming(graph::EdgeSource& source, const std::string& path,
                           io::Vfs* vfs = nullptr,
                           const StreamingBuildOptions& options = {});

/// Validates a page size against the format constraints; throws
/// std::invalid_argument with a precise message when unusable.
void validate_page_bytes(std::size_t page_bytes);

}  // namespace ipregel::store
