#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/run_error.hpp"
#include "graph/types.hpp"
#include "io/vfs.hpp"
#include "runtime/memory_tracker.hpp"
#include "runtime/timer.hpp"
#include "store/page_error.hpp"
#include "store/paged_graph.hpp"

namespace ipregel::store {

/// Which message-delivery scheme the streaming superstep uses.
enum class StreamMode : std::uint8_t {
  /// Pull/broadcast: senders arm a single resident outbox value,
  /// receivers gather from in-neighbours in CSR order (streaming the
  /// in-target pages). The gather fold is EXACTLY the in-RAM engine's
  /// (same array, same order, same combine fold), so results are
  /// bit-identical to Engine<Program, CombinerKind::kPull> for any
  /// program — including float programs like PageRank.
  kPull,
  /// Push/broadcast: senders stream their out-target pages and combine
  /// into the receiver's single-slot resident inbox under a per-vertex
  /// spinlock. Delivery order depends on thread interleaving, so
  /// bit-identity versus the in-RAM engine holds for programs whose
  /// combiner is order-insensitive (min/max/sum-of-ints — e.g. SSSP,
  /// Hashmin), the same caveat the in-RAM push combiners carry.
  kPush,
};

/// Options for a streaming (beyond-RAM) run.
struct PagedRunOptions {
  std::size_t threads = 1;
  std::size_t max_supersteps = static_cast<std::size_t>(-1);
  /// Cooperative cancel flag, polled at superstep barriers.
  const std::atomic<bool>* cancel_token = nullptr;
};

/// Statistics of a streaming run: the engine's RunResult plus the cache
/// counters accumulated while edges streamed through.
struct PagedRunResult {
  RunResult run{};
  PageCacheStats cache{};
};

/// Edge-streaming BSP runner: vertex values, halted flags, and mailboxes
/// resident (O(V), exactly the state the in-RAM engine keeps per vertex);
/// edge topology streamed from a PagedStore through a budget-charged
/// PageCache (O(E), the part that does not fit).
///
/// The superstep loop replicates the in-RAM engine's semantics point for
/// point: scan-all selection skips vertices that are halted with an empty
/// inbox, compute runs under the same Context protocol (single combined
/// message, broadcast, vote_to_halt), and the loop terminates when no
/// message was sent and no vertex stayed active. See StreamMode for the
/// bit-identity guarantees.
///
/// Failure domain: a page that cannot be served (after the cache's
/// bounded retry/quarantine ladder) unwinds the superstep and surfaces as
/// RunError{kPageError} carrying the PageError detail; a simulated power
/// cut (io::PowerLoss) does the same — typed, never a hang. compute()
/// exceptions map to kUserException as in the engine. run_checked()
/// converts all of these to a RunOutcome.
template <typename Program>
class StreamingRunner {
 public:
  using Value = typename Program::value_type;
  using Msg = typename Program::message_type;

  StreamingRunner(PagedGraph& graph, Program program = {},
                  PagedRunOptions options = {})
      : graph_(graph), program_(std::move(program)), options_(options) {
    if (options_.threads == 0) {
      options_.threads = 1;
    }
    const std::size_t slots = graph_.num_slots();
    values_.resize(slots);
    halted_.assign(slots, 0);
    cur_msg_.resize(slots);
    nxt_msg_.resize(slots);
    cur_has_.assign(slots, 0);
    nxt_has_.assign(slots, 0);
    state_mem_ = runtime::MemReservation(
        runtime::MemCategory::kVertexValues,
        slots * (sizeof(Value) + 2 * sizeof(Msg) + 3));
  }

  StreamingRunner(const StreamingRunner&) = delete;
  StreamingRunner& operator=(const StreamingRunner&) = delete;

  /// Runs to completion (or the superstep cap). Throws RunError;
  /// reentrant — every call reinitialises vertex state.
  PagedRunResult run(StreamMode mode) {
    if (mode == StreamMode::kPull) {
      if constexpr (!Program::broadcast_only) {
        throw std::invalid_argument(
            "the pull stream mode requires broadcast-only communication");
      }
      if (!graph_.has_in_edges()) {
        throw std::invalid_argument(
            "the pull stream mode gathers from in-neighbours: write the "
            "store with in-edges");
      }
    }
    reset_state();
    if (mode == StreamMode::kPush && locks_ == nullptr) {
      locks_.reset(new std::atomic_flag[graph_.num_slots()]());
    }
    PagedRunResult out;
    runtime::Timer timer;
    const std::size_t first = graph_.first_slot();
    const std::size_t slots = graph_.num_slots();
    bool capped = true;
    while (superstep_ < options_.max_supersteps) {
      if (options_.cancel_token != nullptr &&
          options_.cancel_token->load(std::memory_order_relaxed)) {
        throw RunError(RunErrorKind::kCancelled, superstep_, 0,
                       RunError::kNoVertex, "cancelled at superstep barrier");
      }
      std::atomic<std::size_t> sent{0};
      std::atomic<std::size_t> active{0};
      std::atomic<std::size_t> executed{0};
      parallel_slots(first, slots, [&](std::size_t begin, std::size_t end) {
        std::size_t my_sent = 0;
        std::size_t my_active = 0;
        std::size_t my_executed = 0;
        for (std::size_t slot = begin; slot < end; ++slot) {
          process_vertex(mode, slot, my_sent, my_active, my_executed);
        }
        sent.fetch_add(my_sent, std::memory_order_relaxed);
        active.fetch_add(my_active, std::memory_order_relaxed);
        executed.fetch_add(my_executed, std::memory_order_relaxed);
      });
      out.run.total_messages += sent.load();
      out.run.total_executed_vertices += executed.load();
      ++superstep_;
      // Generation swap: next superstep consumes what this one sent.
      cur_msg_.swap(nxt_msg_);
      cur_has_.swap(nxt_has_);
      std::fill(nxt_has_.begin(), nxt_has_.end(), std::uint8_t{0});
      if (sent.load() == 0 && active.load() == 0) {
        capped = false;
        break;
      }
    }
    out.run.supersteps = superstep_;
    out.run.seconds = timer.seconds();
    out.run.reached_superstep_cap = capped;
    out.cache = graph_.cache().stats();
    return out;
  }

  /// Typed-failure entry point: RunError becomes outcome data, exactly
  /// like Engine::run_checked.
  RunOutcome run_checked(StreamMode mode) {
    RunOutcome out;
    try {
      out.result = run(mode).run;
    } catch (const RunError& e) {
      out.error = e;
    }
    return out;
  }

  [[nodiscard]] const std::vector<Value>& values() const noexcept {
    return values_;
  }
  [[nodiscard]] const Value& value_of(graph::vid_t id) const noexcept {
    return values_[graph_.slot_of(id)];
  }

 private:
  /// Per-vertex view handed to Program::compute — the streaming mirror of
  /// Engine::Context (same protocol, same visibility rules).
  class Context {
   public:
    bool get_next_message(Msg& out) noexcept {
      if (msg_ == nullptr) {
        return false;
      }
      out = *msg_;
      msg_ = nullptr;
      return true;
    }

    void broadcast(const Msg& msg) {
      runner_.do_broadcast(mode_, slot_, msg, sent_);
    }

    void vote_to_halt() noexcept { voted_ = true; }

    [[nodiscard]] std::size_t superstep() const noexcept {
      return runner_.superstep_;
    }
    [[nodiscard]] bool is_first_superstep() const noexcept {
      return runner_.superstep_ == 0;
    }
    [[nodiscard]] std::size_t num_vertices() const noexcept {
      return runner_.graph_.num_vertices();
    }
    [[nodiscard]] graph::vid_t id() const noexcept {
      return runner_.graph_.id_of(slot_);
    }
    [[nodiscard]] Value& value() noexcept { return runner_.values_[slot_]; }
    [[nodiscard]] const Value& value() const noexcept {
      return runner_.values_[slot_];
    }
    [[nodiscard]] std::size_t out_degree() const noexcept {
      return runner_.graph_.out_degree(slot_);
    }

   private:
    friend class StreamingRunner;
    Context(StreamingRunner& runner, StreamMode mode, std::size_t slot,
            const Msg* msg, std::size_t& sent) noexcept
        : runner_(runner), mode_(mode), slot_(slot), msg_(msg), sent_(sent) {}

    StreamingRunner& runner_;
    StreamMode mode_;
    std::size_t slot_;
    const Msg* msg_;
    std::size_t& sent_;
    bool voted_ = false;
  };

  void reset_state() {
    superstep_ = 0;
    const std::size_t first = graph_.first_slot();
    for (std::size_t s = first; s < graph_.num_slots(); ++s) {
      values_[s] = program_.initial_value(graph_.id_of(s));
      halted_[s] = 0;
    }
    std::fill(cur_has_.begin(), cur_has_.end(), std::uint8_t{0});
    std::fill(nxt_has_.begin(), nxt_has_.end(), std::uint8_t{0});
  }

  void process_vertex(StreamMode mode, std::size_t slot, std::size_t& sent,
                      std::size_t& active, std::size_t& executed) {
    Msg combined{};
    bool has = false;
    if (mode == StreamMode::kPull) {
      // The gather of the in-RAM pull combiner, element for element:
      // in-neighbours in CSR order, fold = first message then combine.
      if (superstep_ > 0) {
        graph_.for_each_in_neighbour(slot, [&](graph::vid_t u) {
          const std::size_t us = graph_.slot_of(u);
          if (cur_has_[us] != 0) {
            if (has) {
              Program::combine(combined, cur_msg_[us]);
            } else {
              combined = cur_msg_[us];
              has = true;
            }
          }
        });
      }
    } else {
      has = cur_has_[slot] != 0;
      if (has) {
        combined = cur_msg_[slot];
      }
    }
    // Scan-all selection, as in the engine: halted with an empty inbox is
    // skipped.
    if (!has && superstep_ > 0 && halted_[slot] != 0) {
      return;
    }
    Context ctx(*this, mode, slot, has ? &combined : nullptr, sent);
    try {
      program_.compute(ctx);
    } catch (const PageError&) {
      throw;
    } catch (const io::IoError&) {
      throw;
    } catch (const RunError&) {
      throw;
    } catch (const std::exception& e) {
      throw RunError(RunErrorKind::kUserException, superstep_, 0,
                     graph_.id_of(slot), e.what());
    }
    halted_[slot] = ctx.voted_ ? 1 : 0;
    ++executed;
    if (!ctx.voted_) {
      ++active;
    }
  }

  void do_broadcast(StreamMode mode, std::size_t slot, const Msg& msg,
                    std::size_t& sent) {
    const std::size_t degree = graph_.out_degree(slot);
    if (mode == StreamMode::kPull) {
      if (degree > 0) {
        nxt_msg_[slot] = msg;
        nxt_has_[slot] = 1;
      }
    } else {
      graph_.for_each_out_target(slot, [&](graph::vid_t dst) {
        const std::size_t ds = graph_.slot_of(dst);
        std::atomic_flag& lock = locks_[ds];
        while (lock.test_and_set(std::memory_order_acquire)) {
        }
        if (nxt_has_[ds] != 0) {
          Program::combine(nxt_msg_[ds], msg);
        } else {
          nxt_msg_[ds] = msg;
          nxt_has_[ds] = 1;
        }
        lock.clear(std::memory_order_release);
      });
    }
    sent += degree;
  }

  /// Fork-join block partition of [first, slots) across options_.threads.
  /// The first worker exception (typed-translated) wins and rethrows on
  /// the calling thread after the join — no exception ever escapes a
  /// worker, no worker is detached, so a failing superstep unwinds
  /// instead of hanging.
  template <typename Body>
  void parallel_slots(std::size_t first, std::size_t slots, Body&& body) {
    const std::size_t n = slots - first;
    const std::size_t teams = std::min(options_.threads, n == 0 ? 1 : n);
    std::exception_ptr error;
    std::mutex error_mu;
    const auto guarded = [&](std::size_t begin, std::size_t end) {
      try {
        body(begin, end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!error) {
          error = std::current_exception();
        }
      }
    };
    if (teams <= 1) {
      guarded(first, slots);
    } else {
      std::vector<std::thread> workers;
      workers.reserve(teams);
      const std::size_t chunk = (n + teams - 1) / teams;
      for (std::size_t t = 0; t < teams; ++t) {
        const std::size_t begin = first + t * chunk;
        const std::size_t end = std::min(slots, begin + chunk);
        if (begin >= end) {
          break;
        }
        workers.emplace_back(guarded, begin, end);
      }
      for (std::thread& w : workers) {
        w.join();
      }
    }
    if (error) {
      translate_and_throw(error);
    }
  }

  /// Maps a captured worker exception onto the run-failure taxonomy:
  /// paging damage (typed PageError, transport IoError, or a dead disk's
  /// PowerLoss) becomes kPageError with the full detail preserved.
  [[noreturn]] void translate_and_throw(std::exception_ptr error) {
    try {
      std::rethrow_exception(std::move(error));
    } catch (const RunError&) {
      throw;
    } catch (const PageError& e) {
      throw RunError(RunErrorKind::kPageError, superstep_, 0,
                     RunError::kNoVertex, e.what());
    } catch (const io::IoError& e) {
      throw RunError(RunErrorKind::kPageError, superstep_, 0,
                     RunError::kNoVertex, e.what());
    } catch (const std::exception& e) {
      throw RunError(RunErrorKind::kUserException, superstep_, 0,
                     RunError::kNoVertex, e.what());
    }
  }

  PagedGraph& graph_;
  Program program_;
  PagedRunOptions options_;
  std::size_t superstep_ = 0;

  std::vector<Value> values_;
  std::vector<std::uint8_t> halted_;
  // Single-slot mailboxes, two generations. Pull mode uses them as the
  // sender's outbox (gather reads cur_*); push mode as the receiver's
  // inbox (selection consumes cur_*). Same O(V) shape either way.
  std::vector<Msg> cur_msg_;
  std::vector<Msg> nxt_msg_;
  std::vector<std::uint8_t> cur_has_;
  std::vector<std::uint8_t> nxt_has_;
  std::unique_ptr<std::atomic_flag[]> locks_;  // push mode only
  runtime::MemReservation state_mem_;
};

}  // namespace ipregel::store
