#pragma once

// Shared chaos-matrix plumbing: every matrix derives its randomized cells
// from a seed that IPREGEL_CHAOS_SEED overrides (so CI soaks can sweep
// seeds and a failing run can be replayed exactly), and announces each
// cell's coordinates up front (so the failing cell of a matrix is
// identifiable from the log alone, seed included).

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

namespace ipregel::testing {

/// The matrix seed: IPREGEL_CHAOS_SEED when set (decimal or 0x-hex),
/// otherwise the matrix's checked-in default.
[[nodiscard]] inline std::uint64_t chaos_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("IPREGEL_CHAOS_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 0);
    if (end != env && *end == '\0') {
      return static_cast<std::uint64_t>(v);
    }
  }
  return fallback;
}

/// One line per cell, BEFORE the cell runs: if the cell fails (or hangs
/// into the ctest timeout), the last announced line names it, and the
/// seed reproduces it via IPREGEL_CHAOS_SEED.
inline void announce_cell(const char* matrix, std::uint64_t seed,
                          const std::string& cell) {
  std::cout << "[chaos] matrix=" << matrix << " seed=" << seed
            << " cell=" << cell << std::endl;
}

}  // namespace ipregel::testing
