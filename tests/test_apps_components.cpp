// Application-level tests for the fixpoint programs: Hashmin components,
// MaxValue propagation, and messaging-based in-degree.

#include <gtest/gtest.h>

#include <set>

#include "apps/hashmin.hpp"
#include "apps/in_degree.hpp"
#include "apps/max_value.hpp"
#include "apps/serial_reference.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using graph::EdgeList;
using graph::vid_t;
using ipregel::testing::expect_all_versions_match;
using ipregel::testing::make_graph;

TEST(Hashmin, SingleComponentCollapsesToMinId) {
  EdgeList e = graph::cycle_graph(32);
  e.symmetrize();
  const CsrGraph g = make_graph(e);
  Engine<apps::Hashmin, CombinerKind::kSpinlockPush, true> engine(g);
  (void)engine.run();
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    EXPECT_EQ(engine.values()[s], 0u);
  }
}

TEST(Hashmin, SeparateComponentsKeepSeparateLabels) {
  EdgeList e;
  // component A: {0, 1, 2}; component B: {5, 6}; isolated: 3, 4
  e.add(0, 1);
  e.add(1, 0);
  e.add(1, 2);
  e.add(2, 1);
  e.add(5, 6);
  e.add(6, 5);
  const CsrGraph g = make_graph(e);
  Engine<apps::Hashmin, CombinerKind::kMutexPush, true> engine(g);
  (void)engine.run();
  EXPECT_EQ(engine.value_of(0), 0u);
  EXPECT_EQ(engine.value_of(1), 0u);
  EXPECT_EQ(engine.value_of(2), 0u);
  EXPECT_EQ(engine.value_of(5), 5u);
  EXPECT_EQ(engine.value_of(6), 5u);
  EXPECT_EQ(engine.value_of(3), 3u) << "isolated vertices keep their id";
  EXPECT_EQ(engine.value_of(4), 4u);
}

TEST(Hashmin, DirectedSemanticsFollowEdges) {
  // On a directed path the min id flows only downstream — exactly the
  // fixpoint the serial reference computes.
  const CsrGraph g = make_graph(graph::path_graph(8));
  expect_all_versions_match(g, apps::Hashmin{}, apps::serial::hashmin(g),
                            "hashmin/directed-path");
}

TEST(Hashmin, ComponentCountMatchesSerialOnRandomGraphs) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    EdgeList e = graph::uniform_random(200, 300, seed);
    e.symmetrize();
    const CsrGraph g = make_graph(e);
    const auto expected = apps::serial::hashmin(g);
    std::vector<vid_t> values;
    (void)run_version(g, apps::Hashmin{},
                      {CombinerKind::kSpinlockPush, true}, {}, nullptr,
                      &values);
    std::set<vid_t> expected_labels(expected.begin(), expected.end());
    std::set<vid_t> got_labels(values.begin(), values.end());
    EXPECT_EQ(got_labels, expected_labels) << "seed " << seed;
    EXPECT_EQ(values, expected) << "seed " << seed;
  }
}

TEST(Hashmin, LabelNeverExceedsOwnId) {
  // Invariant: labels only decrease from the initial own-id seeding.
  const CsrGraph g = make_graph(graph::rmat(8, 4, {.seed = 33}));
  Engine<apps::Hashmin, CombinerKind::kPull, false> engine(g);
  (void)engine.run();
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    EXPECT_LE(engine.values()[s], g.id_of(s));
  }
}

TEST(MaxValue, PropagatesTheGlobalMaxOnStronglyConnectedGraphs) {
  const CsrGraph g = make_graph(graph::cycle_graph(20));
  const apps::MaxValue program{.seed = 99};
  Engine<apps::MaxValue, CombinerKind::kSpinlockPush, true> engine(g,
                                                                   program);
  (void)engine.run();
  std::uint64_t global_max = 0;
  for (vid_t id = 0; id < 20; ++id) {
    global_max = std::max(global_max, program.initial_value(id));
  }
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    EXPECT_EQ(engine.values()[s], global_max);
  }
}

TEST(MaxValue, MatchesSerialOnDirectedDags) {
  const CsrGraph g = make_graph(graph::binary_tree(5, false));
  expect_all_versions_match(g, apps::MaxValue{.seed = 123},
                            apps::serial::max_value(g, 123), "maxvalue/dag");
}

TEST(MaxValue, SeedChangesTheFixpoint) {
  const CsrGraph g = make_graph(graph::cycle_graph(8));
  Engine<apps::MaxValue, CombinerKind::kSpinlockPush, true> a(
      g, apps::MaxValue{.seed = 1});
  Engine<apps::MaxValue, CombinerKind::kSpinlockPush, true> b(
      g, apps::MaxValue{.seed = 2});
  (void)a.run();
  (void)b.run();
  EXPECT_NE(a.values()[0], b.values()[0]);
}

TEST(InDegree, CountsFanInWithoutInEdgeLists) {
  EdgeList e;
  e.add(1, 0);
  e.add(2, 0);
  e.add(3, 0);
  e.add(0, 1);
  // Graph built WITHOUT in-edges: the program derives in-degrees purely
  // from messaging.
  const CsrGraph g = graph::CsrGraph::build(e);
  Engine<apps::InDegree, CombinerKind::kSpinlockPush, true> engine(g);
  const RunResult r = engine.run();
  EXPECT_EQ(r.supersteps, 2u);
  EXPECT_EQ(engine.value_of(0), 3u);
  EXPECT_EQ(engine.value_of(1), 1u);
  EXPECT_EQ(engine.value_of(2), 0u);
}

TEST(InDegree, MatchesSerialOnSkewedGraphs) {
  const CsrGraph g = make_graph(graph::rmat(9, 5, {.seed = 44}));
  expect_all_versions_match(g, apps::InDegree{}, apps::serial::in_degree(g),
                            "indegree/rmat");
}

TEST(InDegree, MultiEdgesCountMultiply) {
  EdgeList e;
  e.add(0, 1);
  e.add(0, 1);
  e.add(0, 1);
  const CsrGraph g = graph::CsrGraph::build(e);
  Engine<apps::InDegree, CombinerKind::kSpinlockPush, false> engine(g);
  (void)engine.run();
  EXPECT_EQ(engine.value_of(1), 3u);
}

}  // namespace
}  // namespace ipregel
