// Tests for the k-core extension app: struct-valued vertices, sum
// combiner, cascade of removals across supersteps.

#include <gtest/gtest.h>

#include "apps/kcore.hpp"
#include "apps/serial_reference.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using graph::EdgeList;
using graph::vid_t;
using ipregel::testing::make_graph;

template <typename EngineT>
void expect_matches_serial(EngineT& engine, const CsrGraph& g,
                           std::uint32_t k, const std::string& tag) {
  (void)engine.run();
  const std::vector<bool> expected = apps::serial::k_core(g, k);
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(!engine.values()[s].removed, expected[s])
        << tag << " vertex " << g.id_of(s) << " k=" << k;
  }
}

TEST(KCore, TriangleWithATailPeelsTheTail) {
  // Triangle 0-1-2 plus tail 2-3-4: the 2-core is exactly the triangle.
  EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 0);
  e.add(2, 3);
  e.add(3, 4);
  e.symmetrize();
  const CsrGraph g = make_graph(e);
  Engine<apps::KCore, CombinerKind::kSpinlockPush, true> engine(
      g, apps::KCore{.k = 2});
  (void)engine.run();
  EXPECT_FALSE(engine.value_of(0).removed);
  EXPECT_FALSE(engine.value_of(1).removed);
  EXPECT_FALSE(engine.value_of(2).removed);
  EXPECT_TRUE(engine.value_of(3).removed);
  EXPECT_TRUE(engine.value_of(4).removed);
}

TEST(KCore, RemovalCascades) {
  // A path has no 2-core: peeling the endpoints cascades inwards until
  // everything is gone — many supersteps of reactivation.
  EdgeList e = graph::path_graph(20);
  e.symmetrize();
  const CsrGraph g = make_graph(e);
  Engine<apps::KCore, CombinerKind::kSpinlockPush, true> engine(
      g, apps::KCore{.k = 2});
  const RunResult r = engine.run();
  EXPECT_GE(r.supersteps, 10u) << "the cascade proceeds one layer per step";
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    EXPECT_TRUE(engine.values()[s].removed);
  }
}

TEST(KCore, CompleteGraphSurvivesUpToItsDegree) {
  EdgeList e = graph::complete_graph(6);  // degree 5, already symmetric
  const CsrGraph g = make_graph(e);
  Engine<apps::KCore, CombinerKind::kSpinlockPush, true> survive(
      g, apps::KCore{.k = 5});
  (void)survive.run();
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    EXPECT_FALSE(survive.values()[s].removed);
  }
  Engine<apps::KCore, CombinerKind::kSpinlockPush, true> dissolve(
      g, apps::KCore{.k = 6});
  (void)dissolve.run();
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    EXPECT_TRUE(dissolve.values()[s].removed);
  }
}

TEST(KCore, MatchesSerialPeelingOnRandomGraphsAllVersions) {
  for (const std::uint64_t seed : {4ull, 9ull}) {
    EdgeList e = graph::uniform_random(150, 450, seed);
    e.symmetrize();
    const CsrGraph g = make_graph(e);
    for (const std::uint32_t k : {2u, 3u, 4u}) {
      for (const VersionId v : applicable_versions<apps::KCore>()) {
        std::vector<apps::KCore::State> values;
        (void)run_version(g, apps::KCore{.k = k}, v, {}, nullptr, &values);
        const std::vector<bool> expected = apps::serial::k_core(g, k);
        for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
          ASSERT_EQ(!values[s].removed, expected[s])
              << version_name(v) << " seed=" << seed << " k=" << k
              << " vertex " << g.id_of(s);
        }
      }
    }
  }
}

TEST(KCore, IsolatedVerticesAreRemovedForAnyPositiveK) {
  EdgeList e;
  e.add(0, 1);
  e.add(1, 0);
  e.add(0, 3);  // vertex 2 isolated in the id space
  e.add(3, 0);
  const CsrGraph g = make_graph(e);
  Engine<apps::KCore, CombinerKind::kSpinlockPush, true> engine(
      g, apps::KCore{.k = 1});
  (void)engine.run();
  EXPECT_TRUE(engine.value_of(2).removed);
  EXPECT_FALSE(engine.value_of(0).removed);
}

}  // namespace
}  // namespace ipregel
