// Degree-anchored label propagation vs the serial reference, across every
// applicable framework version. The app packs (out-degree desc, id asc)
// into one 64-bit min-combinable key, so all versions — and the sharded
// runtime, tested elsewhere — must agree bit-for-bit.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "apps/label_propagation.hpp"
#include "apps/serial_reference.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using apps::LabelPropagation;

TEST(LabelPropagationApp, PackOrdersByDegreeThenId) {
  // Higher degree always wins; equal degree falls to the smaller id.
  EXPECT_LT(LabelPropagation::pack(5, 9), LabelPropagation::pack(4, 0));
  EXPECT_LT(LabelPropagation::pack(3, 2), LabelPropagation::pack(3, 7));
  EXPECT_EQ(LabelPropagation::label_of(LabelPropagation::pack(17, 42)), 42u);
  EXPECT_EQ(LabelPropagation::label_of(LabelPropagation::pack(0, 0)), 0u);
}

TEST(LabelPropagationApp, AdoptsTheHubOfEachComponent) {
  // Two components: a star anchored at 0 (degree 3) plus an isolated edge
  // pair. Symmetric edges so labels can flow both ways.
  const graph::EdgeList edges(std::vector<graph::Edge>{
      {0, 1}, {1, 0}, {0, 2}, {2, 0}, {0, 3}, {3, 0}, {4, 5}, {5, 4}});
  const auto g = testing::make_graph(edges);
  const auto expected = apps::serial::label_propagation(g);
  testing::expect_all_versions_match(g, LabelPropagation{}, expected,
                                     "star-plus-edge");
  // And the unpacked labels are what the serial fixpoint means: everyone
  // in the star carries the hub's id, the pair agrees on its own hub.
  const std::set<graph::vid_t> star_label = {
      LabelPropagation::label_of(expected[g.slot_of(0)])};
  for (const graph::vid_t v : {1u, 2u, 3u}) {
    EXPECT_EQ(LabelPropagation::label_of(expected[g.slot_of(v)]),
              *star_label.begin());
  }
  EXPECT_EQ(LabelPropagation::label_of(expected[g.slot_of(4)]),
            LabelPropagation::label_of(expected[g.slot_of(5)]));
}

TEST(LabelPropagationApp, MatchesSerialOnRmat) {
  const auto g = testing::make_graph(
      graph::rmat(8, 6, graph::RmatOptions{.seed = 9}));
  testing::expect_all_versions_match(g, LabelPropagation{},
                                     apps::serial::label_propagation(g),
                                     "rmat-s8");
}

TEST(LabelPropagationApp, MatchesSerialOnAGrid) {
  const auto g =
      testing::make_graph(graph::grid_2d(9, 7, graph::GridOptions{}));
  testing::expect_all_versions_match(g, LabelPropagation{},
                                     apps::serial::label_propagation(g),
                                     "grid-9x7");
}

TEST(LabelPropagationApp, SurvivesDesolateAddressing) {
  // Sparse ids exercise the hash-addressed slot map; the serial reference
  // and engine must still line up slot for slot.
  auto edges = graph::rmat(6, 4, graph::RmatOptions{.seed = 31});
  graph::shift_ids(edges, 100000);
  const auto g =
      testing::make_graph(edges, graph::AddressingMode::kDesolate);
  testing::expect_all_versions_match(g, LabelPropagation{},
                                     apps::serial::label_propagation(g),
                                     "desolate");
}

TEST(LabelPropagationApp, CycleConvergesToItsSingleHub) {
  // A cycle is degree-regular: the tie-break alone decides, so every
  // vertex must end up labelled with the smallest id.
  const auto g = testing::make_graph(graph::cycle_graph(24));
  const auto expected = apps::serial::label_propagation(g);
  testing::expect_all_versions_match(g, LabelPropagation{}, expected,
                                     "cycle-24");
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    EXPECT_EQ(LabelPropagation::label_of(expected[s]), 0u)
        << "slot " << s;
  }
}

}  // namespace
}  // namespace ipregel
