// Multi-source lane programs (apps/multi_bfs.hpp, apps/ppr.hpp): every
// lane of a batched run must be bit-identical (BFS) or numerically equal
// (PPR) to the corresponding single-query serial reference — the
// correctness contract the query broker's batching rests on.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "apps/multi_bfs.hpp"
#include "apps/ppr.hpp"
#include "apps/serial_reference.hpp"
#include "apps/sssp.hpp"
#include "core/program_traits.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace {

using namespace ipregel;  // NOLINT(google-build-using-namespace)

// The concept is the broker's compile-time contract: lane programs expose
// kLanes matching their array width, plain programs count as one lane.
static_assert(LaneProgram<apps::MultiBfs<4>>);
static_assert(LaneProgram<apps::MultiPpr<2>>);
static_assert(!LaneProgram<apps::Sssp>);
static_assert(lane_count<apps::MultiBfs<8>> == 8);
static_assert(lane_count<apps::MultiPpr<1>> == 1);
static_assert(lane_count<apps::Sssp> == 1);

template <std::size_t K>
std::vector<typename apps::MultiBfs<K>::value_type> expected_bfs(
    const graph::CsrGraph& g,
    const std::array<graph::vid_t, K>& sources) {
  std::vector<typename apps::MultiBfs<K>::value_type> expected(
      g.num_slots());
  for (std::size_t k = 0; k < K; ++k) {
    const std::vector<std::uint32_t> lane =
        apps::serial::sssp_unit(g, sources[k]);
    for (std::size_t s = 0; s < g.num_slots(); ++s) {
      expected[s][k] = lane[s];
    }
  }
  return expected;
}

TEST(MultiBfs, LanesMatchSerialReferenceOnScaleFree) {
  const graph::CsrGraph g =
      ipregel::testing::make_graph(graph::rmat(9, 6, {.seed = 11}));
  apps::MultiBfs<4> program;
  program.sources = {2, 17, 101, 2};  // lane 3 duplicates lane 0 (padding)
  ipregel::testing::expect_all_versions_match(
      g, program, expected_bfs<4>(g, program.sources), "multi-bfs/rmat");
}

TEST(MultiBfs, LanesMatchSerialReferenceOnHighDiameter) {
  // The long-wavefront regime: lanes with very different eccentricities
  // share one run; early-finished lanes must stay frozen while the
  // farthest lane keeps relaxing.
  const graph::CsrGraph g = ipregel::testing::make_graph(
      graph::grid_2d(17, 23, {.removal_fraction = 0.15, .seed = 5}));
  apps::MultiBfs<2> program;
  program.sources = {0, 17 * 23 - 1};
  ipregel::testing::expect_all_versions_match(
      g, program, expected_bfs<2>(g, program.sources), "multi-bfs/grid");
}

TEST(MultiBfs, SingleLaneMatchesSssp) {
  // MultiBfs<1> is unit SSSP in a one-element array: same distances as
  // the paper's Fig. 5 program, lane-wrapped.
  const graph::CsrGraph g =
      ipregel::testing::make_graph(graph::rmat(8, 8, {.seed = 3}));
  apps::MultiBfs<1> program;
  program.sources = {2};
  std::vector<apps::MultiBfs<1>::value_type> values;
  run_version(g, program,
              {CombinerKind::kSpinlockPush, /*selection_bypass=*/true},
              EngineOptions{}, nullptr, &values);
  const std::vector<std::uint32_t> expected =
      apps::serial::sssp_unit(g, 2);
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(values[s][0], expected[s]) << "slot " << s;
  }
}

TEST(MultiBfs, UnreachableLaneStaysInfinite) {
  // Directed path: a source at the tail reaches nothing but itself.
  const graph::CsrGraph g = ipregel::testing::make_graph(graph::path_graph(64));
  apps::MultiBfs<2> program;
  program.sources = {0, 63};
  std::vector<apps::MultiBfs<2>::value_type> values;
  run_version(g, program,
              {CombinerKind::kSpinlockPush, /*selection_bypass=*/true},
              EngineOptions{}, nullptr, &values);
  EXPECT_EQ(values[g.slot_of(63)][1], 0u);
  EXPECT_EQ(values[g.slot_of(0)][1], apps::MultiBfs<2>::kInfinity);
  EXPECT_EQ(values[g.slot_of(63)][0], 63u);
}

TEST(MultiPpr, LanesMatchSerialReference) {
  const graph::CsrGraph g =
      ipregel::testing::make_graph(graph::rmat(9, 6, {.seed = 21}));
  apps::MultiPpr<2> program;
  program.rounds = 15;
  program.set_seeds(0, {2, 5, 9});
  program.set_seeds(1, {40});
  const std::vector<double> lane0 =
      apps::serial::ppr(g, {2, 5, 9}, program.rounds, program.damping);
  const std::vector<double> lane1 =
      apps::serial::ppr(g, {40}, program.rounds, program.damping);
  for (const VersionId v : applicable_versions<apps::MultiPpr<2>>()) {
    std::vector<apps::MultiPpr<2>::value_type> values;
    run_version(g, program, v, EngineOptions{}, nullptr, &values);
    for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
      ASSERT_NEAR(values[s][0], lane0[s], 1e-12)
          << version_name(v) << " lane 0, slot " << s;
      ASSERT_NEAR(values[s][1], lane1[s], 1e-12)
          << version_name(v) << " lane 1, slot " << s;
    }
  }
}

TEST(MultiPpr, EmptySeedLaneIsAllZero) {
  // Padding lanes of a short batch carry an empty seed set and must not
  // perturb the served lanes.
  const graph::CsrGraph g =
      ipregel::testing::make_graph(graph::rmat(8, 6, {.seed = 7}));
  apps::MultiPpr<2> program;
  program.rounds = 10;
  program.set_seeds(0, {3, 14});
  const std::vector<double> lane0 =
      apps::serial::ppr(g, {3, 14}, program.rounds, program.damping);
  std::vector<apps::MultiPpr<2>::value_type> values;
  run_version(g, program, {CombinerKind::kSpinlockPush, false},
              EngineOptions{}, nullptr, &values);
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_NEAR(values[s][0], lane0[s], 1e-12) << "served lane, slot " << s;
    ASSERT_EQ(values[s][1], 0.0) << "padding lane, slot " << s;
  }
}

TEST(MultiPpr, DuplicateSeedsCollapse) {
  // set_seeds dedups, so {5, 5, 9} and {5, 9} are the same query — the
  // cache keys on the normalised seed set for the same reason.
  const graph::CsrGraph g =
      ipregel::testing::make_graph(graph::rmat(8, 6, {.seed = 13}));
  apps::MultiPpr<1> a;
  a.rounds = 8;
  a.set_seeds(0, {5, 5, 9});
  apps::MultiPpr<1> b;
  b.rounds = 8;
  b.set_seeds(0, {9, 5});
  std::vector<apps::MultiPpr<1>::value_type> va;
  std::vector<apps::MultiPpr<1>::value_type> vb;
  run_version(g, a, {CombinerKind::kSpinlockPush, false}, EngineOptions{},
              nullptr, &va);
  run_version(g, b, {CombinerKind::kSpinlockPush, false}, EngineOptions{},
              nullptr, &vb);
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(va[s][0], vb[s][0]) << "slot " << s;
  }
}

}  // namespace
