// Application-level tests for PageRank (the paper's Fig. 6 program).

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "apps/pagerank.hpp"
#include "apps/serial_reference.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using graph::EdgeList;
using ipregel::testing::make_graph;

double total_rank(std::span<const double> values, const CsrGraph& g) {
  double sum = 0.0;
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    sum += values[s];
  }
  return sum;
}

TEST(PageRank, MassIsConservedOnDanglingFreeGraphs) {
  // On a cycle every vertex has out-degree 1: no rank mass leaks, so the
  // ranks must sum to 1 after any number of rounds.
  const CsrGraph g = make_graph(graph::cycle_graph(64));
  Engine<apps::PageRank, CombinerKind::kPull, false> engine(
      g, apps::PageRank{.rounds = 25});
  (void)engine.run();
  EXPECT_NEAR(total_rank(engine.values(), g), 1.0, 1e-9);
}

TEST(PageRank, UniformOnRegularGraphs) {
  // A cycle is 1-regular: PageRank converges to the uniform distribution.
  const CsrGraph g = make_graph(graph::cycle_graph(10));
  Engine<apps::PageRank, CombinerKind::kSpinlockPush, false> engine(
      g, apps::PageRank{.rounds = 60});
  (void)engine.run();
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    EXPECT_NEAR(engine.values()[s], 0.1, 1e-9);
  }
}

TEST(PageRank, HubAccumulatesRank) {
  // star with edges leaf -> centre: the centre must outrank every leaf.
  EdgeList e;
  for (graph::vid_t leaf = 1; leaf < 10; ++leaf) {
    e.add(leaf, 0);
    e.add(0, leaf);  // give the centre out-edges so mass circulates
  }
  const CsrGraph g = make_graph(e);
  Engine<apps::PageRank, CombinerKind::kPull, false> engine(
      g, apps::PageRank{.rounds = 30});
  (void)engine.run();
  for (graph::vid_t leaf = 1; leaf < 10; ++leaf) {
    EXPECT_GT(engine.value_of(0), engine.value_of(leaf));
  }
}

TEST(PageRank, RunsExactlyRoundsPlusOneSupersteps) {
  // Fig. 6: broadcast while superstep < ROUND, then one more superstep to
  // absorb the final messages and vote.
  const CsrGraph g = make_graph(graph::cycle_graph(8));
  Engine<apps::PageRank, CombinerKind::kSpinlockPush, false> engine(
      g, apps::PageRank{.rounds = 30});
  EXPECT_EQ(engine.run().supersteps, 31u);
}

TEST(PageRank, MatchesSerialOnSkewedGraph) {
  const CsrGraph g = make_graph(graph::rmat(9, 6, {.seed = 12}));
  const auto expected = apps::serial::pagerank(g, 15);
  ipregel::testing::expect_all_versions_near(
      g, apps::PageRank{.rounds = 15}, expected, 1e-11, "pagerank/rmat");
}

TEST(PageRank, DampingParameterIsHonoured) {
  // With damping 0 every vertex pins to 1/n regardless of structure.
  const CsrGraph g = make_graph(graph::rmat(6, 4, {.seed = 5}));
  Engine<apps::PageRank, CombinerKind::kSpinlockPush, false> engine(
      g, apps::PageRank{.rounds = 5, .damping = 0.0});
  (void)engine.run();
  const double uniform = 1.0 / static_cast<double>(g.num_vertices());
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    EXPECT_NEAR(engine.values()[s], uniform, 1e-12);
  }
}

TEST(PageRank, DanglingVerticesKeepBaseRank) {
  // A dangling sink never broadcasts; its rank is base + received mass,
  // and the base term alone for a vertex nothing points at.
  EdgeList e;
  e.add(0, 1);
  e.add(1, 2);  // 2 is dangling; 3 exists isolated via id space
  e.add(0, 3);
  const CsrGraph g = make_graph(e);
  Engine<apps::PageRank, CombinerKind::kPull, false> engine(
      g, apps::PageRank{.rounds = 10});
  (void)engine.run();
  const double base = 0.15 / static_cast<double>(g.num_vertices());
  EXPECT_GT(engine.value_of(2), base);
  // Vertex 0: nothing points at it.
  EXPECT_NEAR(engine.value_of(0), base, 1e-12);
}

TEST(PageRank, ThirtyRoundsIsThePaperDefault) {
  EXPECT_EQ(apps::PageRank{}.rounds, 30u);
  EXPECT_DOUBLE_EQ(apps::PageRank{}.damping, 0.85);
}

}  // namespace
}  // namespace ipregel
