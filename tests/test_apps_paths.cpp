// Application-level tests for the path algorithms: SSSP (Fig. 5),
// weighted SSSP, and BFS parents, on structured graphs with hand-checkable
// answers.

#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/serial_reference.hpp"
#include "apps/sssp.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using graph::EdgeList;
using graph::vid_t;
using ipregel::testing::expect_all_versions_match;
using ipregel::testing::make_graph;

TEST(Sssp, DistancesOnAPathAreTheIndices) {
  const CsrGraph g = make_graph(graph::path_graph(64));
  Engine<apps::Sssp, CombinerKind::kSpinlockPush, true> engine(
      g, apps::Sssp{.source = 0});
  (void)engine.run();
  for (vid_t id = 0; id < 64; ++id) {
    EXPECT_EQ(engine.value_of(id), id);
  }
}

TEST(Sssp, UpstreamVerticesAreUnreachable) {
  const CsrGraph g = make_graph(graph::path_graph(10));
  Engine<apps::Sssp, CombinerKind::kSpinlockPush, true> engine(
      g, apps::Sssp{.source = 5});
  (void)engine.run();
  for (vid_t id = 0; id < 5; ++id) {
    EXPECT_EQ(engine.value_of(id), apps::Sssp::kInfinity);
  }
  for (vid_t id = 5; id < 10; ++id) {
    EXPECT_EQ(engine.value_of(id), id - 5);
  }
}

TEST(Sssp, CycleWrapsAround) {
  const CsrGraph g = make_graph(graph::cycle_graph(12));
  Engine<apps::Sssp, CombinerKind::kPull, true> engine(
      g, apps::Sssp{.source = 3});
  (void)engine.run();
  for (vid_t id = 0; id < 12; ++id) {
    EXPECT_EQ(engine.value_of(id), (id + 12 - 3) % 12);
  }
}

TEST(Sssp, GridDistancesAreManhattan) {
  // On a full 2-D lattice from the corner, hop distance = row + col.
  constexpr vid_t kRows = 9;
  constexpr vid_t kCols = 13;
  const CsrGraph g = make_graph(graph::grid_2d(kRows, kCols));
  Engine<apps::Sssp, CombinerKind::kSpinlockPush, true> engine(
      g, apps::Sssp{.source = 0});
  (void)engine.run();
  for (vid_t r = 0; r < kRows; ++r) {
    for (vid_t c = 0; c < kCols; ++c) {
      EXPECT_EQ(engine.value_of(r * kCols + c), r + c)
          << "(" << r << "," << c << ")";
    }
  }
}

TEST(Sssp, AllVersionsAgreeOnAllSources) {
  const CsrGraph g = make_graph(graph::binary_tree(5));
  for (const vid_t source : {0u, 1u, 7u, 30u}) {
    expect_all_versions_match(g, apps::Sssp{.source = source},
                              apps::serial::sssp_unit(g, source),
                              "sssp/source" + std::to_string(source));
  }
}

TEST(Sssp, SourceWithNoOutEdgesTerminatesInOneSuperstep) {
  EdgeList e;
  e.add(0, 1);  // vertex 2 = the default source, no out-edges
  e.add(1, 2);
  const CsrGraph g = make_graph(e);
  Engine<apps::Sssp, CombinerKind::kSpinlockPush, true> engine(g);
  const RunResult r = engine.run();
  EXPECT_EQ(r.supersteps, 1u);
  EXPECT_EQ(engine.value_of(2), 0u);
  EXPECT_EQ(engine.value_of(0), apps::Sssp::kInfinity);
}

TEST(WeightedSssp, TakesTheCheapDetour) {
  // Direct edge costs 10; the detour 0->1->2 costs 3.
  EdgeList e;
  e.add(0, 2, 10);
  e.add(0, 1, 1);
  e.add(1, 2, 2);
  const CsrGraph g = make_graph(e);
  Engine<apps::WeightedSssp, CombinerKind::kSpinlockPush, true> engine(
      g, apps::WeightedSssp{.source = 0});
  (void)engine.run();
  EXPECT_EQ(engine.value_of(2), 3u);
}

TEST(WeightedSssp, MatchesDijkstraOnRandomWeightedGrids) {
  const CsrGraph g = make_graph(
      graph::grid_2d(15, 15, {.max_weight = 9, .seed = 17}));
  const auto expected = apps::serial::sssp_weighted(g, 0);
  expect_all_versions_match(g, apps::WeightedSssp{.source = 0}, expected,
                            "weighted-sssp/grid");
}

TEST(WeightedSssp, ReconvergesWhenALaterPathIsShorter) {
  // The BSP wavefront reaches vertex 3 in one hop (cost 100) before the
  // three-hop path (cost 3) arrives; the vertex must be re-activated and
  // corrected — the reactivation-by-message semantics.
  EdgeList e;
  e.add(0, 3, 100);
  e.add(0, 1, 1);
  e.add(1, 2, 1);
  e.add(2, 3, 1);
  e.add(3, 4, 1);
  const CsrGraph g = make_graph(e);
  Engine<apps::WeightedSssp, CombinerKind::kSpinlockPush, true> engine(
      g, apps::WeightedSssp{.source = 0});
  (void)engine.run();
  EXPECT_EQ(engine.value_of(3), 3u);
  EXPECT_EQ(engine.value_of(4), 4u) << "the correction must propagate";
}

TEST(BfsParent, SourceIsItsOwnParent) {
  const CsrGraph g = make_graph(graph::path_graph(5));
  Engine<apps::BfsParent, CombinerKind::kSpinlockPush, true> engine(
      g, apps::BfsParent{.source = 0});
  (void)engine.run();
  EXPECT_EQ(engine.value_of(0), 0u);
  for (vid_t id = 1; id < 5; ++id) {
    EXPECT_EQ(engine.value_of(id), id - 1);
  }
}

TEST(BfsParent, PicksSmallestParentAmongEqualPaths) {
  // 1 and 2 both reach 3 at level 2; the min combiner must pick parent 1.
  EdgeList e;
  e.add(0, 1);
  e.add(0, 2);
  e.add(1, 3);
  e.add(2, 3);
  const CsrGraph g = make_graph(e);
  Engine<apps::BfsParent, CombinerKind::kPull, true> engine(
      g, apps::BfsParent{.source = 0});
  (void)engine.run();
  EXPECT_EQ(engine.value_of(3), 1u);
}

TEST(BfsParent, MatchesSerialOnTreesAndGrids) {
  for (unsigned levels = 2; levels <= 6; ++levels) {
    const CsrGraph g = make_graph(graph::binary_tree(levels));
    expect_all_versions_match(g, apps::BfsParent{.source = 0},
                              apps::serial::bfs_parent(g, 0),
                              "bfs/tree" + std::to_string(levels));
  }
}

TEST(BfsParent, UnreachableVerticesStayUnreached) {
  EdgeList e;
  e.add(0, 1);
  e.add(2, 3);  // separate component
  const CsrGraph g = make_graph(e);
  Engine<apps::BfsParent, CombinerKind::kSpinlockPush, true> engine(
      g, apps::BfsParent{.source = 0});
  (void)engine.run();
  EXPECT_EQ(engine.value_of(2), apps::BfsParent::kUnreached);
  EXPECT_EQ(engine.value_of(3), apps::BfsParent::kUnreached);
}

}  // namespace
}  // namespace ipregel
