// Tests for the benchmark harness library: the footnote-8 extrapolation,
// lead-change detection, linear fitting, table formatting and workload
// generation contracts.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include "benchlib/extrapolate.hpp"
#include "benchlib/reporting.hpp"
#include "benchlib/workloads.hpp"
#include "graph/csr.hpp"
#include "graph/graph_stats.hpp"

namespace {

using namespace ipregel::bench;  // NOLINT(google-build-using-namespace)

TEST(Extrapolate, PerfectScalingContinuesToHalve) {
  // Efficiency 1 between 8 and 16 nodes: every further doubling halves.
  std::vector<ScalingPoint> curve{{1, 16.0}, {2, 8.0}, {4, 4.0},
                                  {8, 2.0},  {16, 1.0}};
  const auto out = extrapolate_scaling(curve, 2);
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out[5].nodes, 32u);
  EXPECT_FALSE(out[5].measured);
  EXPECT_NEAR(out[5].seconds, 0.5, 1e-12);
  EXPECT_NEAR(out[6].seconds, 0.25, 1e-12);
}

TEST(Extrapolate, ImperfectEfficiencyIsCarriedForward) {
  // The paper's footnote 8: the 8->16 efficiency repeats per doubling.
  std::vector<ScalingPoint> curve{{8, 3.0}, {16, 2.0}};  // ratio 1.5
  const auto out = extrapolate_scaling(curve, 1);
  EXPECT_NEAR(out.back().seconds, 2.0 / 1.5, 1e-12);
}

TEST(Extrapolate, ReconstructsMemoryFailedPointsBackward) {
  // 1 and 2 nodes failed with OOM; their runtimes are projected backward
  // with the same per-doubling ratio (Fig. 8's hollow markers).
  std::vector<ScalingPoint> curve{{1, 0.0, true, true},
                                  {2, 0.0, true, true},
                                  {4, 8.0},
                                  {8, 4.0},
                                  {16, 2.0}};
  const auto out = extrapolate_scaling(curve, 0);
  EXPECT_FALSE(out[0].measured);
  EXPECT_NEAR(out[0].seconds, 32.0, 1e-9) << "two backward doublings";
  EXPECT_NEAR(out[1].seconds, 16.0, 1e-9);
}

TEST(Extrapolate, FewerThanTwoPointsPassThrough) {
  std::vector<ScalingPoint> curve{{1, 5.0}};
  const auto out = extrapolate_scaling(curve, 3);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].seconds, 5.0, 1e-12);
}

TEST(LeadChange, ExactPointWins) {
  const std::vector<ScalingPoint> curve{{1, 10.0}, {2, 5.0}, {4, 2.0}};
  EXPECT_EQ(lead_change(curve, 5.0), 2u);
}

TEST(LeadChange, InterpolatesBetweenDoublings) {
  // Reference 3.0 sits between the 8-node (4.0) and 16-node (2.0) points:
  // linear interpolation crosses at 12 nodes — the paper's "11 nodes"
  // granularity.
  const std::vector<ScalingPoint> curve{{8, 4.0}, {16, 2.0}};
  EXPECT_EQ(lead_change(curve, 3.0), 12u);
}

TEST(LeadChange, NeverReachedReturnsNullopt) {
  const std::vector<ScalingPoint> curve{{1, 10.0}, {16, 9.5}, {64, 9.2}};
  EXPECT_FALSE(lead_change(curve, 1.0).has_value());
}

TEST(LeadChange, SkipsMemoryFailures) {
  const std::vector<ScalingPoint> curve{
      {1, 0.0, true, true}, {2, 4.0}, {4, 1.0}};
  EXPECT_EQ(lead_change(curve, 4.5), 2u);
}

TEST(LinearFit, RecoversAnExactLine) {
  const std::vector<double> xs{10, 20, 30, 40};
  const std::vector<double> ys{25, 45, 65, 85};  // y = 5 + 2x
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
  EXPECT_NEAR(fit.at(100), 205.0, 1e-9);
}

TEST(LinearFit, DegenerateInputsReturnZeroFit) {
  EXPECT_DOUBLE_EQ(fit_line({1.0}, {2.0}).slope, 0.0);
  EXPECT_DOUBLE_EQ(fit_line({3.0, 3.0}, {1.0, 2.0}).slope, 0.0);
}

TEST(Reporting, FormattersAreStable) {
  EXPECT_EQ(fmt_seconds(1.23456), "1.235");
  EXPECT_EQ(fmt_bytes(512u << 20), "512.00 MiB");
  EXPECT_EQ(fmt_bytes(std::size_t{3} << 30), "3.00 GiB");
  EXPECT_EQ(fmt_factor(6.5), "6.50x");
  EXPECT_EQ(fmt_factor(1400.0), "1400x");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(12), "12");
  EXPECT_EQ(fmt_count(123), "123");
  EXPECT_EQ(fmt_count(1000), "1,000");
}

TEST(Reporting, CsvEscapesCommasAndQuotes) {
  Table t("T", {"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  const std::string path = ::testing::TempDir() + "ipregel_table.csv";
  std::remove(path.c_str());
  t.write_csv(path);
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  EXPECT_NE(contents.find("\"x,y\""), std::string::npos);
  EXPECT_NE(contents.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Reporting, CsvRewriteReplacesThePreviousTable) {
  // A committed results CSV must hold exactly the last run's table: a
  // re-baseline that appended would carry stale rows contradicting the
  // JSON next to it.
  const std::string path = ::testing::TempDir() + "ipregel_rewrite.csv";
  std::remove(path.c_str());
  Table first("T", {"col"});
  first.add_row({"stale"});
  first.write_csv(path);
  Table second("T", {"col"});
  second.add_row({"fresh"});
  second.write_csv(path);
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  EXPECT_EQ(contents.find("stale"), std::string::npos)
      << "rewrite must truncate, not append";
  EXPECT_NE(contents.find("fresh"), std::string::npos);
  EXPECT_EQ(contents.find("# T"), contents.rfind("# T"))
      << "exactly one table header";
}

TEST(Workloads, TwitterScalingIsProportional) {
  // The paper's 7.4.2 contract: p% of the graph has p% of vertices/edges.
  const auto full = twitter_target();
  const auto half = make_twitter_scaled(50);
  EXPECT_EQ(half.size(), full.num_edges / 2);
  const auto [min_id, max_id] = half.id_range();
  EXPECT_LT(max_id, full.num_vertices / 2);
}

TEST(JsonReport, DumpHasTheSectionsTheGateScriptParses) {
  JsonReport report("traffic_sim");
  report.text("graph", "wiki-like");
  report.num("load_1.0x.p99_ms", 12.5);
  report.count("load_1.0x.completed", 40000);
  report.num("batching_speedup", 4.25);
  report.floor("batching_speedup", 3.0);
  const std::string json = report.dump();

  EXPECT_NE(json.find("\"bench\": \"traffic_sim\""), std::string::npos);
  EXPECT_NE(json.find("\"meta\""), std::string::npos);
  EXPECT_NE(json.find("\"graph\": \"wiki-like\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"load_1.0x.p99_ms\": 12.5"), std::string::npos);
  EXPECT_NE(json.find("\"load_1.0x.completed\": 40000"),
            std::string::npos);
  EXPECT_NE(json.find("\"gates\""), std::string::npos);
  EXPECT_NE(json.find("\"batching_speedup\": 3"), std::string::npos);
}

TEST(JsonReport, CeilingsSectionAndSelfCheck) {
  JsonReport report("traffic_sim");
  report.num("load_1.0x.p99_ms", 12.5);
  report.num("load_1.0x.hit_rate", 0.99);
  report.floor("load_1.0x.hit_rate", 0.9);
  report.ceiling("load_1.0x.p99_ms", 250.0);
  const std::string json = report.dump();
  EXPECT_NE(json.find("\"ceilings\""), std::string::npos);
  EXPECT_NE(json.find("\"load_1.0x.p99_ms\": 250"), std::string::npos);
  EXPECT_TRUE(report.violations().empty());
}

TEST(JsonReport, ViolationsFlagEveryBrokenThreshold) {
  // The self-check is what keeps a collapsed run from exiting 0 and
  // being committed as the next baseline.
  JsonReport report("traffic_sim");
  report.num("hit_rate", 0.65);         // below its floor
  report.num("p99_ms", 92839.0);        // above its ceiling
  report.count("completed", 40000);     // satisfies its floor
  report.floor("hit_rate", 0.9);
  report.ceiling("p99_ms", 250.0);
  report.floor("completed", 38000.0);
  report.ceiling("never_recorded", 1.0);
  const std::vector<std::string> v = report.violations();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_NE(v[0].find("hit_rate"), std::string::npos);
  EXPECT_NE(v[1].find("p99_ms"), std::string::npos);
  EXPECT_NE(v[2].find("never_recorded"), std::string::npos);
}

TEST(JsonReport, EscapesAndClampsAwkwardValues) {
  JsonReport report("r");
  report.text("quote", "a\"b");
  report.num("inf", std::numeric_limits<double>::infinity());
  const std::string json = report.dump();
  EXPECT_NE(json.find("a\\\"b"), std::string::npos)
      << "quotes must be escaped";
  EXPECT_NE(json.find("\"inf\": null"), std::string::npos)
      << "JSON has no infinity";
}

TEST(JsonReport, EmptySectionsStayValidJson) {
  const std::string json = JsonReport("empty").dump();
  EXPECT_NE(json.find("\"metrics\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"gates\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"ceilings\": {}"), std::string::npos);
}

TEST(Workloads, WikiLikeIsSkewedRoadLikeIsRegular) {
  // Cheap structural audit at the small size (the contract Table 1 prints).
  ::setenv("IPREGEL_BENCH_SIZE", "small", 1);
  const Workload wiki = make_wiki_like();
  const Workload road = make_road_like();
  ::unsetenv("IPREGEL_BENCH_SIZE");
  const auto ws = ipregel::graph::compute_stats(wiki.graph);
  const auto rs = ipregel::graph::compute_stats(road.graph);
  EXPECT_GT(static_cast<double>(ws.max_out_degree),
            20.0 * ws.average_out_degree)
      << "wiki-like must be heavy-tailed";
  EXPECT_LE(rs.max_out_degree, 4u) << "road-like must be near-regular";
  EXPECT_LT(rs.average_out_degree, 4.0);
  EXPECT_GT(ws.average_out_degree, rs.average_out_degree)
      << "the paper's density contrast between the two graphs";
}

TEST(Workloads, BenchSizeEnvironmentIsRespected) {
  ::setenv("IPREGEL_BENCH_SIZE", "small", 1);
  EXPECT_EQ(bench_size(), BenchSize::kSmall);
  ::setenv("IPREGEL_BENCH_SIZE", "large", 1);
  EXPECT_EQ(bench_size(), BenchSize::kLarge);
  ::setenv("IPREGEL_BENCH_SIZE", "default", 1);
  EXPECT_EQ(bench_size(), BenchSize::kDefault);
  ::unsetenv("IPREGEL_BENCH_SIZE");
  EXPECT_EQ(bench_size(), BenchSize::kDefault);
}

}  // namespace
