// The headline chaos matrix of coordinator recovery: SIGKILL (or
// power-cut) the COORDINATOR at every phase of its protocol — mid-spawn,
// mid-barrier-collect, just before and inside the manifest publish, after
// a partial proceed delivery, and during a takeover's own recovery — for
// PageRank, SSSP, and Hashmin, under both checkpoint modes, on both
// transports, with both takeover strategies (adopt parked survivors /
// full respawn from snapshots). Every cell requires the resumed run to
// finish with values BIT-IDENTICAL to the undisturbed run: the takeover
// must continue from the durable manifest, never re-commit a barrier, and
// never invent one. The fencing cells additionally resurrect a stale
// coordinator and require workers to reject it with the typed
// kCoordinatorFenced error rather than hang or obey.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "chaos_seed.hpp"
#include "runtime/rng.hpp"
#include "shard/resilient.hpp"
#include "test_util.hpp"

namespace ipregel::shard {
namespace {

class TempDir {
 public:
  // Deliberately short (no suite/test names): the recovery directory
  // hosts the reattach rendezvous socket, and sun_path caps the whole
  // path at ~107 bytes. Cell tags are unique across the binary.
  explicit TempDir(const std::string& suffix) {
    path_ = std::filesystem::temp_directory_path() / ("ipck_" + suffix);
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

/// The matrix seed (IPREGEL_CHAOS_SEED overrides); the seeded cell derives
/// its coordinates from it, every cell announces itself under it.
const std::uint64_t kSeed = testing::chaos_seed(0xC00D'2026ULL);

ShardOptions coord_cell_options(ft::CheckpointMode mode,
                                TransportKind transport,
                                const std::string& ckpt_dir) {
  ShardOptions opt;
  opt.num_shards = 2;
  opt.transport = transport;
  opt.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  opt.checkpoint.mode = mode;
  opt.checkpoint.every = 1;
  opt.checkpoint.keep = 3;
  opt.checkpoint.directory = ckpt_dir;
  opt.retain_supersteps = 4;
  opt.supervisor.backoff_initial_seconds = 0.01;
  opt.net.backoff_initial_seconds = 0.005;
  opt.net.backoff_max_seconds = 0.05;
  opt.guards.run_seconds = 120.0;
  return opt;
}

[[nodiscard]] CoordFault coord_kill(CoordFault::Phase phase,
                                    std::uint64_t superstep,
                                    std::uint64_t epoch = 1) {
  CoordFault f;
  f.kind = CoordFault::Kind::kSigkill;
  f.phase = phase;
  f.superstep = superstep;
  f.epoch = epoch;
  return f;
}

[[nodiscard]] CoordFault coord_power_cut(std::uint64_t superstep,
                                         std::uint64_t at_syscall,
                                         std::uint64_t epoch = 1) {
  CoordFault f;
  f.kind = CoordFault::Kind::kPowerCut;
  f.phase = CoordFault::Phase::kManifestPublish;
  f.superstep = superstep;
  f.at_syscall = at_syscall;
  f.epoch = epoch;
  return f;
}

using OptTweak = std::function<void(ShardOptions&)>;
using OutcomeCheck = std::function<void(const ShardOutcome&)>;

/// One cell: the undisturbed sharded run (no recovery, no faults) is the
/// oracle; the chaos run goes through run_sharded_resilient with the
/// scripted coordinator faults and must converge to bit-identical values.
template <typename Program>
void run_coord_cell(const graph::CsrGraph& g, Program program,
                    ft::CheckpointMode mode, TransportKind transport,
                    std::vector<CoordFault> faults,
                    std::size_t min_takeovers, const std::string& tag,
                    const OptTweak& tweak_both = {},
                    const OptTweak& tweak_chaos = {},
                    const OutcomeCheck& check = {}) {
  using Value = typename Program::value_type;
  SCOPED_TRACE(tag);
  testing::announce_cell("coordinator_kill", kSeed, tag);

  TempDir base_ckpt(tag + "_base");
  auto base_opt = coord_cell_options(mode, transport, base_ckpt.str());
  if (tweak_both) {
    tweak_both(base_opt);
  }
  std::vector<Value> want;
  const auto base = run_sharded(g, program, base_opt, &want);
  ASSERT_TRUE(base.ok()) << base.error->what();

  TempDir chaos_ckpt(tag + "_ckpt");
  TempDir chaos_run(tag + "_run");
  auto chaos_opt = coord_cell_options(mode, transport, chaos_ckpt.str());
  if (tweak_both) {
    tweak_both(chaos_opt);
  }
  chaos_opt.recovery.directory = chaos_run.str();
  chaos_opt.recovery.park_seconds = 6.0;
  chaos_opt.recovery.reattach_wait_seconds = 0.4;
  chaos_opt.coord_faults = std::move(faults);
  if (tweak_chaos) {
    tweak_chaos(chaos_opt);
  }
  std::vector<Value> got;
  const auto chaos = run_sharded_resilient(g, program, chaos_opt, &got);
  ASSERT_TRUE(chaos.ok()) << chaos.error->what();
  EXPECT_GE(chaos.shard.coordinator_takeovers, min_takeovers);
  // The takeover continued the SAME run: superstep count identical, no
  // barrier lost, none committed twice — and the committed message totals
  // match to the unit (no frame lost below the resync floor, none
  // double-counted past dedup).
  EXPECT_EQ(chaos.result.supersteps, base.result.supersteps);
  EXPECT_EQ(chaos.result.reached_superstep_cap,
            base.result.reached_superstep_cap);
  EXPECT_EQ(chaos.result.total_messages, base.result.total_messages);
  if (mode == ft::CheckpointMode::kHeavyweight) {
    EXPECT_EQ(chaos.result.total_executed_vertices,
              base.result.total_executed_vertices);
  } else {
    // A lightweight restore rebuilds the resumed superstep's inbox by
    // replaying Program::resend for EVERY local vertex — a superset of
    // what the original frontier actually sent — so the re-executed
    // superstep activates a superset of vertices. The extras observe no
    // improvement, send nothing (message totals stay exact above), and
    // converge to the same values; executed may only grow. This applies
    // to any lightweight cell, not just the full-respawn ones: a
    // reattach takeover whose window expires under scheduler pressure
    // legitimately falls back to respawn-from-snapshot.
    EXPECT_GE(chaos.result.total_executed_vertices,
              base.result.total_executed_vertices);
  }
  if (check) {
    check(chaos);
  }

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    // Bitwise, not approximate: the resumed schedule must replay the
    // exact fold order, doubles included.
    ASSERT_EQ(std::memcmp(&got[s], &want[s], sizeof(Value)), 0)
        << "slot " << s << " diverged after coordinator recovery";
  }
}

[[nodiscard]] graph::CsrGraph pagerank_graph() {
  return testing::make_graph(
      graph::rmat(6, 4, graph::RmatOptions{.seed = 12}));
}

[[nodiscard]] apps::PageRank pagerank12() {
  apps::PageRank pr;
  pr.rounds = 12;
  return pr;
}

[[nodiscard]] graph::CsrGraph grid_graph() {
  return testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
}

/// The full phase sweep for one (app, mode, transport) combo: coordinator
/// death at every distinct point of its protocol, including a power cut
/// INSIDE the manifest publish and a second death during the first
/// takeover's own recovery.
template <typename Program>
void run_phase_sweep(const graph::CsrGraph& g, Program program,
                     ft::CheckpointMode mode, TransportKind transport,
                     const std::string& combo) {
  // Mid-spawn: shard 1 was just forked, later state never existed. The
  // takeover adopts what parked and cold-starts the rest.
  run_coord_cell(g, program, mode, transport,
                 {coord_kill(CoordFault::Phase::kSpawn, 1)}, 1,
                 combo + "_spawn");
  // Mid-barrier-collect: one shard's barrier entry arrived, the release
  // was never computed. The workers re-send and the takeover re-folds.
  run_coord_cell(g, program, mode, transport,
                 {coord_kill(CoordFault::Phase::kBarrierCollect, 3)}, 1,
                 combo + "_barrier_s3");
  // Just before the commit: the release of s3 evaporates with the
  // coordinator; the re-fold must reproduce it identically.
  run_coord_cell(g, program, mode, transport,
                 {coord_kill(CoordFault::Phase::kManifestPublish, 3)}, 1,
                 combo + "_precommit_s3");
  // Power cut INSIDE the commit (mutating syscall 1 of the publish): the
  // run directory holds a torn .tmp the takeover must ignore.
  run_coord_cell(g, program, mode, transport, {coord_power_cut(3, 1)}, 1,
                 combo + "_powercut_s3");
  // After a partial proceed: shard 0 heard the release of s3, shard 1
  // never did. The takeover must re-deliver without double-committing.
  run_coord_cell(g, program, mode, transport,
                 {coord_kill(CoordFault::Phase::kProceed, 3)}, 1,
                 combo + "_proceed_s3");
  // Death during recovery: the first takeover dies right after its first
  // adoption/respawn; the second takeover recovers the recovery.
  run_coord_cell(g, program, mode, transport,
                 {coord_kill(CoordFault::Phase::kProceed, 3, 1),
                  coord_kill(CoordFault::Phase::kRecover, 0, 2)},
                 2, combo + "_die_during_recovery");
}

TEST(CoordinatorKillMatrix, PhaseSweepPagerankHeavyweightShm) {
  run_phase_sweep(pagerank_graph(), pagerank12(),
                  ft::CheckpointMode::kHeavyweight, TransportKind::kShm,
                  "pagerank_heavy_shm");
}

TEST(CoordinatorKillMatrix, PhaseSweepSsspLightweightShm) {
  run_phase_sweep(grid_graph(), apps::Sssp{},
                  ft::CheckpointMode::kLightweight, TransportKind::kShm,
                  "sssp_light_shm");
}

TEST(CoordinatorKillMatrix, TransportAppModeSpread) {
  // The proceed-phase kill across the combos the sweeps above did not
  // visit: every app, both modes, and TCP see a coordinator death.
  const auto grid = grid_graph();
  run_coord_cell(grid, apps::Hashmin{}, ft::CheckpointMode::kHeavyweight,
                 TransportKind::kTcp,
                 {coord_kill(CoordFault::Phase::kProceed, 3)}, 1,
                 "hashmin_heavy_tcp_proceed_s3");
  run_coord_cell(pagerank_graph(), pagerank12(),
                 ft::CheckpointMode::kLightweight, TransportKind::kTcp,
                 {coord_kill(CoordFault::Phase::kProceed, 3)}, 1,
                 "pagerank_light_tcp_proceed_s3");
  run_coord_cell(grid, apps::Sssp{}, ft::CheckpointMode::kHeavyweight,
                 TransportKind::kTcp,
                 {coord_kill(CoordFault::Phase::kProceed, 3)}, 1,
                 "sssp_heavy_tcp_proceed_s3");
  run_coord_cell(grid, apps::Hashmin{}, ft::CheckpointMode::kLightweight,
                 TransportKind::kShm,
                 {coord_kill(CoordFault::Phase::kProceed, 3)}, 1,
                 "hashmin_light_shm_proceed_s3");
}

TEST(CoordinatorKillMatrix, FullRespawnTakeover) {
  // prefer_reattach=false: the takeover abandons the parked survivors,
  // negotiates a consistent snapshot cut, and respawns EVERY shard from
  // durable state alone. No worker may be adopted.
  const OptTweak full_respawn = [](ShardOptions& opt) {
    opt.recovery.prefer_reattach = false;
  };
  const OutcomeCheck nothing_adopted = [](const ShardOutcome& chaos) {
    EXPECT_EQ(chaos.shard.adopted_workers, 0u);
    EXPECT_GE(chaos.shard.respawns, 2u);
  };
  run_coord_cell(pagerank_graph(), pagerank12(),
                 ft::CheckpointMode::kHeavyweight, TransportKind::kShm,
                 {coord_kill(CoordFault::Phase::kProceed, 4)}, 1,
                 "full_respawn_pagerank_heavy_shm", {}, full_respawn,
                 nothing_adopted);
  run_coord_cell(grid_graph(), apps::Sssp{},
                 ft::CheckpointMode::kLightweight, TransportKind::kShm,
                 {coord_kill(CoordFault::Phase::kBarrierCollect, 5)}, 1,
                 "full_respawn_sssp_light_shm", {}, full_respawn,
                 nothing_adopted);
  run_coord_cell(grid_graph(), apps::Sssp{},
                 ft::CheckpointMode::kHeavyweight, TransportKind::kTcp,
                 {coord_kill(CoordFault::Phase::kProceed, 4)}, 1,
                 "full_respawn_sssp_heavy_tcp", {}, full_respawn,
                 nothing_adopted);
}

TEST(CoordinatorKillMatrix, KillAtTheHaltRelease) {
  // The coordinator dies delivering the FINAL (halting) release: shard 0
  // heard "halt", shard 1 did not. The takeover boots into a run whose
  // manifest already says halting and must still produce the values —
  // over TCP that path flows through the durable values blob.
  // max_supersteps = 5 means the final (capped) release is the barrier
  // at superstep index 4 — that is the halting proceed to die inside.
  const OptTweak cap5 = [](ShardOptions& opt) { opt.max_supersteps = 5; };
  run_coord_cell(grid_graph(), apps::Sssp{},
                 ft::CheckpointMode::kHeavyweight, TransportKind::kShm,
                 {coord_kill(CoordFault::Phase::kProceed, 4)}, 1,
                 "halt_release_shm", cap5);
  run_coord_cell(grid_graph(), apps::Sssp{},
                 ft::CheckpointMode::kHeavyweight, TransportKind::kTcp,
                 {coord_kill(CoordFault::Phase::kProceed, 4)}, 1,
                 "halt_release_tcp", cap5);
}

TEST(CoordinatorKillMatrix, WorkerAndCoordinatorDieInOneRun) {
  // A worker dies at s4 (ordinary shard recovery), then the coordinator
  // dies at s6: the takeover inherits a run that already respawned once.
  ShardFault worker_kill;
  worker_kill.kind = ShardFault::Kind::kSigkill;
  worker_kill.shard = 1;
  worker_kill.superstep = 4;
  worker_kill.phase = ShardFault::Phase::kCompute;
  run_coord_cell(
      grid_graph(), apps::Sssp{}, ft::CheckpointMode::kHeavyweight,
      TransportKind::kShm, {coord_kill(CoordFault::Phase::kProceed, 6)}, 1,
      "worker_then_coordinator", {},
      [&](ShardOptions& opt) { opt.faults = {worker_kill}; },
      [](const ShardOutcome& chaos) {
        EXPECT_GE(chaos.shard.respawns, 1u);
      });
}

void run_fencing_cell(TransportKind transport, const std::string& tag) {
  // Split-brain drill: epoch 1 dies at s3; its takeover (epoch 2) dies at
  // s5; the SECOND takeover resurrects as a STALE incarnation — it skips
  // the fence claim and presents epoch 1, exactly like a woken-up dead
  // coordinator that still believes it owns the run. Workers that obeyed
  // epoch 2 must reject it (typed kCoordinatorFenced, no hang, nothing
  // committed), and the supervisor's NEXT incarnation — properly fenced
  // at epoch 3 — finishes the run bit-identically.
  run_coord_cell(
      grid_graph(), apps::Sssp{}, ft::CheckpointMode::kHeavyweight,
      transport,
      {coord_kill(CoordFault::Phase::kProceed, 3, 1),
       coord_kill(CoordFault::Phase::kProceed, 5, 2)},
      2, tag, {},
      [](ShardOptions& opt) { opt.recovery.stale_epoch_at_takeover = 2; },
      [](const ShardOutcome& chaos) {
        EXPECT_GE(chaos.shard.coordinator_fenced, 1u)
            << "the stale incarnation was never fenced";
      });
}

TEST(CoordinatorKillMatrix, StaleCoordinatorIsFencedShm) {
  run_fencing_cell(TransportKind::kShm, "stale_fenced_shm");
}

TEST(CoordinatorKillMatrix, StaleCoordinatorIsFencedTcp) {
  run_fencing_cell(TransportKind::kTcp, "stale_fenced_tcp");
}

TEST(CoordinatorKillMatrix, TcpWorkerMidReconnectWhenCoordinatorDies) {
  // Satellite: a TCP worker is knocked into its backoff-reconnect loop
  // (ctrl connection dropped) and the coordinator dies while the worker
  // is still reconnecting. The worker's re-HELLO lands on the fenced
  // TAKEOVER, which must resync the retained frames exactly once —
  // message totals must match the undisturbed run to the unit (no frame
  // lost below the floor, none double-counted past dedup).
  NetFault drop;
  drop.kind = NetFault::Kind::kDropConn;
  drop.plane = NetFault::Plane::kCtrl;
  drop.shard = 1;
  drop.at_op = 12;
  run_coord_cell(
      grid_graph(), apps::Sssp{}, ft::CheckpointMode::kHeavyweight,
      TransportKind::kTcp, {coord_kill(CoordFault::Phase::kProceed, 4)}, 1,
      "tcp_mid_backoff_takeover", {},
      [&](ShardOptions& opt) { opt.net_faults = {drop}; },
      [](const ShardOutcome& chaos) {
        EXPECT_GE(chaos.shard.coordinator_takeovers, 1u);
      });
}

TEST(CoordinatorKillMatrix, SeededCell) {
  // One cell whose coordinates come from the matrix seed, so
  // IPREGEL_CHAOS_SEED sweeps genuinely new ground.
  const std::uint64_t h = runtime::mix64(kSeed ^ 0xC0'0C'D1'CEULL);
  constexpr CoordFault::Phase kPhases[] = {
      CoordFault::Phase::kSpawn, CoordFault::Phase::kBarrierCollect,
      CoordFault::Phase::kManifestPublish, CoordFault::Phase::kProceed};
  const auto phase = kPhases[h % 4];
  const std::uint64_t superstep =
      phase == CoordFault::Phase::kSpawn ? (h >> 2) % 2 : 2 + (h >> 2) % 4;
  const auto mode = ((h >> 8) % 2) == 0 ? ft::CheckpointMode::kHeavyweight
                                        : ft::CheckpointMode::kLightweight;
  const auto transport =
      ((h >> 9) % 2) == 0 ? TransportKind::kShm : TransportKind::kTcp;
  const std::string tag = "seeded_phase" +
                          std::to_string(static_cast<int>(phase)) + "_s" +
                          std::to_string(superstep) + "_" +
                          std::string(to_string(mode)) + "_" +
                          (transport == TransportKind::kShm ? "shm" : "tcp");
  run_coord_cell(grid_graph(), apps::Sssp{}, mode, transport,
                 {coord_kill(phase, superstep)}, 1, tag);
}

}  // namespace
}  // namespace ipregel::shard
