// Tests for the aggregator extension: per-superstep global reductions with
// BSP visibility (the original Pregel's aggregator mechanism), and the
// convergence-driven PageRank built on it.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "apps/pagerank.hpp"
#include "apps/serial_reference.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using graph::vid_t;
using ipregel::testing::make_graph;

/// Sums vertex ids into the aggregate each superstep; records what
/// aggregated() reported, per superstep, into its value.
struct SumProbe {
  using value_type = std::uint64_t;
  using message_type = std::uint64_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = false;

  using aggregate_type = std::uint64_t;
  static aggregate_type aggregate_identity() noexcept { return 0; }
  static void aggregate(aggregate_type& acc,
                        const aggregate_type& x) noexcept {
    acc += x;
  }

  std::size_t rounds = 3;

  [[nodiscard]] value_type initial_value(vid_t) const noexcept { return 0; }

  void compute(auto& ctx) const {
    // Record the previous superstep's reduction, then contribute.
    ctx.value() = ctx.aggregated();
    ctx.aggregate(ctx.id() + 1);
    if (ctx.superstep() + 1 >= rounds) {
      ctx.vote_to_halt();
    }
  }

  static void combine(message_type& old, const message_type& incoming) {
    old += incoming;
  }
};

TEST(Aggregator, PreviousSuperstepValueIsVisibleToAll) {
  const CsrGraph g = make_graph(graph::cycle_graph(10));
  // sum of (id + 1) over 10 vertices = 55 every superstep.
  Engine<SumProbe, CombinerKind::kSpinlockPush, false> engine(
      g, SumProbe{.rounds = 3});
  const RunResult r = engine.run();
  EXPECT_EQ(r.supersteps, 3u);
  // The last superstep (2) saw superstep 1's reduction.
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    EXPECT_EQ(engine.values()[s], 55u);
  }
}

TEST(Aggregator, IdentityDuringSuperstepZero) {
  const CsrGraph g = make_graph(graph::cycle_graph(4));
  Engine<SumProbe, CombinerKind::kSpinlockPush, false> engine(
      g, SumProbe{.rounds = 1});
  (void)engine.run();
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    EXPECT_EQ(engine.values()[s], 0u) << "nothing aggregated before ss 0";
  }
}

TEST(Aggregator, ThreadCountDoesNotChangeTheReduction) {
  const CsrGraph g = make_graph(graph::rmat(8, 4, {.seed = 19}));
  Engine<SumProbe, CombinerKind::kSpinlockPush, false> one(
      g, SumProbe{.rounds = 2}, EngineOptions{.threads = 1});
  Engine<SumProbe, CombinerKind::kSpinlockPush, false> four(
      g, SumProbe{.rounds = 2}, EngineOptions{.threads = 4});
  (void)one.run();
  (void)four.run();
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    ASSERT_EQ(one.values()[s], four.values()[s]);
  }
}

TEST(Aggregator, StateResetsBetweenRuns) {
  const CsrGraph g = make_graph(graph::cycle_graph(6));
  Engine<SumProbe, CombinerKind::kSpinlockPush, false> engine(
      g, SumProbe{.rounds = 1});
  (void)engine.run();
  (void)engine.run();
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    EXPECT_EQ(engine.values()[s], 0u)
        << "a fresh run must start from the identity again";
  }
}

TEST(PageRankConverging, StopsOnItsOwnAndMatchesTheFixpoint) {
  const CsrGraph g = make_graph(graph::rmat(9, 6, {.seed = 23}));
  Engine<apps::PageRankConverging, CombinerKind::kSpinlockPush, false>
      engine(g, apps::PageRankConverging{.epsilon = 1e-12});
  const RunResult r = engine.run();
  EXPECT_FALSE(r.reached_superstep_cap);
  EXPECT_GT(r.supersteps, 10u) << "1e-12 needs many rounds";
  // Compare with a long fixed-round power iteration.
  const auto expected = apps::serial::pagerank(g, 120);
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_NEAR(engine.values()[s], expected[s], 1e-9);
  }
}

TEST(PageRankConverging, LooserThresholdStopsSooner) {
  const CsrGraph g = make_graph(graph::rmat(8, 5, {.seed = 29}));
  Engine<apps::PageRankConverging, CombinerKind::kSpinlockPush, false>
      loose(g, apps::PageRankConverging{.epsilon = 1e-3});
  Engine<apps::PageRankConverging, CombinerKind::kSpinlockPush, false>
      tight(g, apps::PageRankConverging{.epsilon = 1e-10});
  const RunResult rl = loose.run();
  const RunResult rt = tight.run();
  EXPECT_LT(rl.supersteps, rt.supersteps);
}

TEST(PageRankConverging, AgreesAcrossCombiners) {
  const CsrGraph g = make_graph(graph::rmat(8, 5, {.seed = 31}));
  const apps::PageRankConverging program{.epsilon = 1e-10};
  Engine<apps::PageRankConverging, CombinerKind::kSpinlockPush, false> push(
      g, program);
  Engine<apps::PageRankConverging, CombinerKind::kPull, false> pull(
      g, program);
  const RunResult rpush = push.run();
  const RunResult rpull = pull.run();
  EXPECT_EQ(rpush.supersteps, rpull.supersteps);
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_NEAR(push.values()[s], pull.values()[s], 1e-14);
  }
}

TEST(Aggregator, ProgramsWithoutAggregatorStillCompile) {
  // HasAggregator must be false for plain programs and the engine must not
  // grow any aggregator state for them (compile-time check by usage).
  static_assert(!HasAggregator<apps::PageRank>);
  static_assert(HasAggregator<apps::PageRankConverging>);
  static_assert(HasAggregator<SumProbe>);
}

}  // namespace
}  // namespace ipregel
