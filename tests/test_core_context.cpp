// Tests of the vertex context — the paper's Fig. 3 API surface — observed
// from inside a recording program.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using graph::EdgeList;
using graph::vid_t;
using ipregel::testing::make_graph;

/// Records what the context reports for each vertex during superstep 0.
struct Recorder {
  using value_type = std::uint64_t;
  using message_type = std::uint64_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;

  struct Observation {
    vid_t id;
    std::size_t out_degree;
    std::size_t num_vertices;
    bool first_superstep;
  };
  std::vector<Observation>* observations = nullptr;
  mutable std::atomic<int>* lock = nullptr;

  [[nodiscard]] value_type initial_value(vid_t id) const noexcept {
    return id * 10;
  }

  void compute(auto& ctx) const {
    if (ctx.is_first_superstep()) {
      while (lock->exchange(1) != 0) {
      }
      observations->push_back({ctx.id(), ctx.out_degree(),
                               ctx.num_vertices(),
                               ctx.is_first_superstep()});
      lock->store(0);
    }
    ctx.vote_to_halt();
  }

  static void combine(message_type& old, const message_type& incoming) {
    old += incoming;
  }
};

TEST(Context, ReportsIdDegreeAndGlobalCounts) {
  EdgeList e;
  e.add(10, 11);
  e.add(10, 12);
  e.add(11, 12);
  const CsrGraph g = make_graph(e);  // ids 10..12, offset mapping
  std::vector<Recorder::Observation> observations;
  std::atomic<int> lock{0};
  Engine<Recorder, CombinerKind::kSpinlockPush, true> engine(
      g, Recorder{&observations, &lock});
  (void)engine.run();
  ASSERT_EQ(observations.size(), 3u);
  for (const auto& o : observations) {
    EXPECT_GE(o.id, 10u);
    EXPECT_LE(o.id, 12u);
    EXPECT_EQ(o.num_vertices, 3u);
    EXPECT_TRUE(o.first_superstep);
    if (o.id == 10) {
      EXPECT_EQ(o.out_degree, 2u);
    }
    if (o.id == 12) {
      EXPECT_EQ(o.out_degree, 0u);
    }
  }
  // initial_value used the external id.
  EXPECT_EQ(engine.value_of(11), 110u);
}

/// Counts how many times get_next_message yields per activation — the
/// single-combined-message protocol of section 6.3.
struct MessageCounter {
  using value_type = std::uint32_t;
  using message_type = std::uint32_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;

  [[nodiscard]] value_type initial_value(vid_t) const noexcept { return 0; }

  void compute(auto& ctx) const {
    if (ctx.is_first_superstep()) {
      ctx.broadcast(1);
    } else {
      std::uint32_t yields = 0;
      message_type m = 0;
      while (ctx.get_next_message(m)) {
        ++yields;
      }
      ctx.value() = yields;
    }
    ctx.vote_to_halt();
  }

  static void combine(message_type& old, const message_type& incoming) {
    old += incoming;
  }
};

TEST(Context, CombinerLeavesAtMostOneMessage) {
  // Vertex 0 has many in-neighbours, all broadcasting: with a combiner the
  // mailbox still yields exactly ONE (combined) message.
  const CsrGraph g = make_graph(graph::star_graph(16, true));
  for (const VersionId v : applicable_versions<MessageCounter>()) {
    std::vector<std::uint32_t> values;
    (void)run_version(g, MessageCounter{}, v, {}, nullptr, &values);
    EXPECT_EQ(values[0], 1u) << version_name(v)
                             << ": 15 senders, one combined message";
    for (std::size_t s = 1; s < g.num_slots(); ++s) {
      EXPECT_EQ(values[s], 1u) << version_name(v);
    }
  }
}

/// Observes superstep numbering from inside compute.
struct SuperstepProbe {
  using value_type = std::uint64_t;
  using message_type = std::uint64_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = false;

  [[nodiscard]] value_type initial_value(vid_t) const noexcept { return 0; }

  void compute(auto& ctx) const {
    // Encode the last observed superstep; run 4 supersteps then halt.
    ctx.value() = ctx.superstep();
    EXPECT_EQ(ctx.is_first_superstep(), ctx.superstep() == 0);
    if (ctx.superstep() >= 3) {
      ctx.vote_to_halt();
    }
  }

  static void combine(message_type& old, const message_type& incoming) {
    old += incoming;
  }
};

TEST(Context, SuperstepNumberingIsZeroBasedAndMonotone) {
  const CsrGraph g = make_graph(graph::cycle_graph(4));
  Engine<SuperstepProbe, CombinerKind::kSpinlockPush, false> engine(g);
  const RunResult r = engine.run();
  EXPECT_EQ(r.supersteps, 4u);
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    EXPECT_EQ(engine.values()[s], 3u) << "last superstep observed";
  }
}

/// Mutates value() across supersteps to prove the reference is stable.
struct Accumulator {
  using value_type = std::uint64_t;
  using message_type = std::uint64_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = false;

  [[nodiscard]] value_type initial_value(vid_t) const noexcept { return 0; }

  void compute(auto& ctx) const {
    ctx.value() += ctx.superstep() + 1;
    if (ctx.superstep() == 2) {
      ctx.vote_to_halt();
    }
  }

  static void combine(message_type& old, const message_type& incoming) {
    old += incoming;
  }
};

TEST(Context, ValueMutationsPersistAcrossSupersteps) {
  const CsrGraph g = make_graph(graph::path_graph(3));
  Engine<Accumulator, CombinerKind::kMutexPush, false> engine(g);
  (void)engine.run();
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    EXPECT_EQ(engine.values()[s], 1u + 2u + 3u);
  }
}

/// Sums this vertex's out-edge weights in superstep 0.
struct WeightSum {
  using value_type = std::uint64_t;
  using message_type = std::uint64_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;
  [[nodiscard]] value_type initial_value(vid_t) const noexcept {
    return 0;
  }
  void compute(auto& ctx) const {
    if (ctx.is_first_superstep()) {
      for (const auto w : ctx.out_weights()) {
        ctx.value() += w;
      }
    }
    ctx.vote_to_halt();
  }
  static void combine(message_type& old, const message_type& incoming) {
    old += incoming;
  }
};

TEST(Context, OutWeightsAreVisibleToPrograms) {
  EdgeList e;
  e.add(0, 1, 7);
  e.add(0, 2, 9);
  const CsrGraph g = make_graph(e);

  Engine<WeightSum, CombinerKind::kSpinlockPush, true> engine(g);
  (void)engine.run();
  EXPECT_EQ(engine.value_of(0), 16u);
  EXPECT_EQ(engine.value_of(1), 0u);
}

}  // namespace
}  // namespace ipregel
