// Behavioural tests of the Engine itself: superstep accounting, halting
// semantics, option handling, and the guard rails around invalid
// configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "core/engine.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using graph::EdgeList;
using graph::vid_t;
using ipregel::testing::make_graph;

/// Sends one message along a directed path per superstep; used to count
/// supersteps and messages precisely.
struct PathRelay {
  using value_type = std::uint32_t;
  using message_type = std::uint32_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;

  [[nodiscard]] value_type initial_value(vid_t) const noexcept { return 0; }

  void compute(auto& ctx) const {
    if (ctx.is_first_superstep()) {
      if (ctx.id() == 0) {
        ctx.value() = 1;
        ctx.broadcast(1);
      }
    } else {
      message_type m = 0;
      if (ctx.get_next_message(m) && ctx.value() == 0) {
        ctx.value() = m + 1;
        ctx.broadcast(ctx.value());
      }
    }
    ctx.vote_to_halt();
  }

  static void combine(message_type& old, const message_type& incoming) {
    old = std::min(old, incoming);
  }
};

/// Lies about always_halts: stays active forever. The bypass engine must
/// refuse to run it rather than silently compute garbage.
struct LiesAboutHalting {
  using value_type = std::uint32_t;
  using message_type = std::uint32_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;  // the lie

  [[nodiscard]] value_type initial_value(vid_t) const noexcept { return 0; }
  void compute(auto&) const { /* never votes to halt */ }
  static void combine(message_type&, const message_type&) {}
};

/// Exercises targeted sends (send_message) and vote/reactivate semantics:
/// vertex 0 pings vertex N-1 directly, which pongs back once.
struct PingPong {
  using value_type = std::uint32_t;
  using message_type = std::uint32_t;
  static constexpr bool broadcast_only = false;
  static constexpr bool always_halts = false;

  vid_t last = 0;

  [[nodiscard]] value_type initial_value(vid_t) const noexcept { return 0; }

  void compute(auto& ctx) const {
    message_type m = 0;
    const bool got = ctx.get_next_message(m);
    if (ctx.is_first_superstep() && ctx.id() == 0) {
      ctx.send_message(last, 1);
    } else if (got && ctx.id() == last) {
      ctx.value() = m;
      ctx.send_message(0, m + 1);
    } else if (got && ctx.id() == 0) {
      ctx.value() = m;
    }
    ctx.vote_to_halt();
  }

  static void combine(message_type& old, const message_type& incoming) {
    old = std::max(old, incoming);
  }
};

TEST(Engine, SuperstepAndMessageAccountingOnAPath) {
  // Path 0 -> 1 -> ... -> 9: the relay needs exactly 10 supersteps (the
  // last one consumes the final message and sends nothing) and 9 messages.
  const CsrGraph g = make_graph(graph::path_graph(10));
  Engine<PathRelay, CombinerKind::kSpinlockPush, true> engine(g);
  const RunResult r = engine.run();
  EXPECT_EQ(r.supersteps, 10u);
  EXPECT_EQ(r.total_messages, 9u);
  EXPECT_FALSE(r.reached_superstep_cap);
  for (vid_t id = 0; id < 10; ++id) {
    EXPECT_EQ(engine.value_of(id), id + 1);
  }
}

TEST(Engine, ExecutedVerticesCountsSelectionPrecision) {
  const CsrGraph g = make_graph(graph::path_graph(100));
  // Scan-all runs all 100 vertices in superstep 0, then exactly one per
  // superstep receives a message... but scan-all also re-runs nothing else
  // since everyone halted. Bypass must execute the same vertices.
  Engine<PathRelay, CombinerKind::kSpinlockPush, false> scan(g);
  Engine<PathRelay, CombinerKind::kSpinlockPush, true> bypass(g);
  const RunResult rs = scan.run();
  const RunResult rb = bypass.run();
  EXPECT_EQ(rs.total_executed_vertices, rb.total_executed_vertices)
      << "bypass must not change which vertices execute";
  EXPECT_EQ(rs.total_executed_vertices, 100u + 99u);
}

TEST(Engine, PerSuperstepStatsOnRequest) {
  const CsrGraph g = make_graph(graph::path_graph(5));
  Engine<PathRelay, CombinerKind::kSpinlockPush, true> engine(
      g, {}, EngineOptions{.collect_superstep_stats = true});
  const RunResult r = engine.run();
  ASSERT_EQ(r.per_superstep.size(), r.supersteps);
  EXPECT_EQ(r.per_superstep[0].executed_vertices, 5u);
  EXPECT_EQ(r.per_superstep[0].messages_sent, 1u);
  for (std::size_t s = 1; s < r.per_superstep.size(); ++s) {
    EXPECT_EQ(r.per_superstep[s].executed_vertices, 1u) << "superstep " << s;
  }
}

TEST(Engine, StatsAreEmptyUnlessRequested) {
  const CsrGraph g = make_graph(graph::path_graph(5));
  Engine<PathRelay, CombinerKind::kSpinlockPush, true> engine(g);
  EXPECT_TRUE(engine.run().per_superstep.empty());
}

TEST(Engine, SuperstepCapStopsDivergentRuns) {
  const CsrGraph g = make_graph(graph::cycle_graph(4));
  // On a cycle the relay's message circulates; cap it early.
  Engine<apps::PageRank, CombinerKind::kSpinlockPush, false> engine(
      g, apps::PageRank{.rounds = 1'000'000},
      EngineOptions{.max_supersteps = 7});
  const RunResult r = engine.run();
  EXPECT_EQ(r.supersteps, 7u);
  EXPECT_TRUE(r.reached_superstep_cap);
}

TEST(Engine, BypassRejectsProgramsThatDoNotHalt) {
  const CsrGraph g = make_graph(graph::path_graph(4));
  Engine<LiesAboutHalting, CombinerKind::kSpinlockPush, true> engine(g);
  EXPECT_THROW((void)engine.run(), std::logic_error)
      << "a bypass engine must detect non-halting vertices, not silently "
         "drop them";
}

TEST(Engine, ScanAllToleratesNonHaltingPrograms) {
  const CsrGraph g = make_graph(graph::path_graph(4));
  Engine<LiesAboutHalting, CombinerKind::kSpinlockPush, false> engine(
      g, {}, EngineOptions{.max_supersteps = 5});
  const RunResult r = engine.run();
  EXPECT_TRUE(r.reached_superstep_cap);
  EXPECT_EQ(r.supersteps, 5u);
}

TEST(Engine, PullCombinerDemandsInEdges) {
  const CsrGraph no_in = graph::CsrGraph::build(graph::path_graph(4));
  EXPECT_THROW(
      (Engine<apps::Hashmin, CombinerKind::kPull, false>(no_in)),
      std::invalid_argument);
}

TEST(Engine, TargetedSendsReachAnyVertex) {
  // PingPong messages skip over the graph structure entirely.
  const CsrGraph g = make_graph(graph::path_graph(50));
  const PingPong program{.last = 49};
  Engine<PingPong, CombinerKind::kSpinlockPush, false> engine(g, program);
  const RunResult r = engine.run();
  EXPECT_EQ(engine.value_of(49), 1u);
  EXPECT_EQ(engine.value_of(0), 2u);
  EXPECT_EQ(r.total_messages, 2u);
  EXPECT_EQ(r.supersteps, 3u);
}

TEST(Engine, EmptyGraphTerminatesImmediately) {
  const CsrGraph g = graph::CsrGraph::build(EdgeList{});
  Engine<PathRelay, CombinerKind::kSpinlockPush, false> engine(g);
  const RunResult r = engine.run();
  EXPECT_EQ(r.supersteps, 0u);
  EXPECT_EQ(r.total_messages, 0u);
}

TEST(Engine, DesolateGraphSkipsWastedSlots) {
  EdgeList e = graph::path_graph(6);
  graph::shift_ids(e, 4);
  const CsrGraph g = graph::CsrGraph::build(
      e, {.addressing = graph::AddressingMode::kDesolate,
          .build_in_edges = true});
  Engine<apps::Sssp, CombinerKind::kSpinlockPush, true> engine(
      g, apps::Sssp{.source = 4});
  const RunResult r = engine.run();
  EXPECT_EQ(r.total_executed_vertices, 6u + 5u)
      << "wasted slots must never be executed";
  for (vid_t id = 4; id < 10; ++id) {
    EXPECT_EQ(engine.value_of(id), id - 4);
  }
}

TEST(Engine, SharedExternalPoolWorks) {
  runtime::ThreadPool pool(2);
  const CsrGraph g = make_graph(graph::path_graph(10));
  Engine<PathRelay, CombinerKind::kSpinlockPush, true> a(g, {}, {}, &pool);
  Engine<PathRelay, CombinerKind::kMutexPush, false> b(g, {}, {}, &pool);
  EXPECT_EQ(a.run().supersteps, 10u);
  EXPECT_EQ(b.run().supersteps, 10u);
}

TEST(Engine, SingleThreadedOptionIsExact) {
  const CsrGraph g = make_graph(graph::cycle_graph(16));
  Engine<apps::Hashmin, CombinerKind::kSpinlockPush, true> engine(
      g, {}, EngineOptions{.threads = 1});
  (void)engine.run();
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    EXPECT_EQ(engine.values()[s], 0u) << "cycle collapses to min id 0";
  }
}

TEST(Engine, MessageCountMatchesBroadcastFanout) {
  // Star centre broadcasts to n-1 leaves in superstep 0 of Hashmin; leaves
  // broadcast back only if they improve.
  const CsrGraph g = make_graph(graph::star_graph(8, true));
  Engine<apps::Hashmin, CombinerKind::kSpinlockPush, false> engine(
      g, {}, EngineOptions{.collect_superstep_stats = true});
  const RunResult r = engine.run();
  ASSERT_GE(r.per_superstep.size(), 2u);
  EXPECT_EQ(r.per_superstep[0].messages_sent, 7u + 7u)
      << "superstep 0: everyone broadcasts its own id";
}

}  // namespace
}  // namespace ipregel
