// Unit tests for the selection-bypass work list (paper section 4).

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/frontier.hpp"

namespace {

using ipregel::Frontier;

std::vector<std::size_t> sorted_current(const Frontier& f) {
  std::vector<std::size_t> v(f.current().begin(), f.current().end());
  std::sort(v.begin(), v.end());
  return v;
}

TEST(Frontier, StartsEmpty) {
  Frontier f(100, 2, true);
  f.flip();
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.size(), 0u);
}

TEST(Frontier, AddThenFlipExposesSlots) {
  Frontier f(100, 2, true);
  EXPECT_TRUE(f.add(5, 0));
  EXPECT_TRUE(f.add(63, 1));
  EXPECT_TRUE(f.add(64, 0));
  f.flip();
  EXPECT_EQ(sorted_current(f), (std::vector<std::size_t>{5, 63, 64}));
}

TEST(Frontier, BitmapDeduplicatesWithinASuperstep) {
  // Many senders message the same vertex; it must be executed once.
  Frontier f(100, 2, true);
  EXPECT_TRUE(f.add(7, 0));
  EXPECT_FALSE(f.add(7, 1));
  EXPECT_FALSE(f.add(7, 0));
  f.flip();
  EXPECT_EQ(f.size(), 1u);
}

TEST(Frontier, SlotsCanReappearInLaterSupersteps) {
  // flip() must release the claim so the vertex can be re-selected later
  // (SSSP improves distances across many supersteps).
  Frontier f(100, 1, true);
  f.add(7, 0);
  f.flip();
  EXPECT_TRUE(f.add(7, 0)) << "claim must be cleared by flip";
  f.flip();
  EXPECT_EQ(sorted_current(f), (std::vector<std::size_t>{7}));
}

TEST(Frontier, AddClaimedSkipsTheBitmap) {
  // The push-combiner path: the mailbox lock already proved exactly-once.
  Frontier f(100, 2, false);
  f.add_claimed(3, 0);
  f.add_claimed(9, 1);
  f.flip();
  EXPECT_EQ(sorted_current(f), (std::vector<std::size_t>{3, 9}));
}

TEST(Frontier, FlipDrainsPendingLists) {
  Frontier f(100, 1, false);
  f.add_claimed(1, 0);
  f.flip();
  EXPECT_EQ(f.size(), 1u);
  f.flip();
  EXPECT_TRUE(f.empty()) << "a flip with no new adds yields an empty list";
}

TEST(Frontier, ConcurrentAddsClaimEachSlotExactlyOnce) {
  constexpr std::size_t kSlots = 1 << 14;
  constexpr std::size_t kThreads = 4;
  Frontier f(kSlots, kThreads, true);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&f, t] {
      // All threads try to claim every slot.
      for (std::size_t s = 0; s < kSlots; ++s) {
        f.add((s + t * 13) % kSlots, t);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  f.flip();
  ASSERT_EQ(f.size(), kSlots) << "every slot claimed exactly once";
  auto v = sorted_current(f);
  for (std::size_t s = 0; s < kSlots; ++s) {
    ASSERT_EQ(v[s], s);
  }
}

TEST(Frontier, ResetClearsClaimsAndLists) {
  Frontier f(100, 1, true);
  f.add(1, 0);
  f.add(2, 0);
  f.reset();
  f.flip();
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.add(1, 0)) << "claims must be released by reset";
}

TEST(Frontier, TracksListBytes) {
  Frontier f(1000, 2, false);
  for (std::size_t s = 0; s < 100; ++s) {
    f.add_claimed(s, s % 2);
  }
  f.flip();
  EXPECT_GE(f.list_bytes(), 100 * sizeof(std::size_t));
}

}  // namespace
