// Tests of Pregel halting/reactivation semantics: vote_to_halt makes a
// vertex inactive, a message reactivates it, and the computation ends when
// everyone is halted with nothing in flight (paper Fig. 1 / section 4).

#include <gtest/gtest.h>

#include <atomic>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using graph::EdgeList;
using graph::vid_t;
using ipregel::testing::make_graph;

/// Halts immediately; counts global activations (thread-safe).
struct ActivationCounter {
  using value_type = std::uint32_t;
  using message_type = std::uint32_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;

  std::atomic<std::uint64_t>* activations = nullptr;
  vid_t chatty = 0;       ///< this vertex broadcasts in superstep 0
  std::size_t rounds = 1; ///< how many supersteps it keeps broadcasting

  [[nodiscard]] value_type initial_value(vid_t) const noexcept { return 0; }

  void compute(auto& ctx) const {
    activations->fetch_add(1, std::memory_order_relaxed);
    ctx.value() += 1;
    if (ctx.id() == chatty && ctx.superstep() < rounds) {
      ctx.broadcast(1);
    }
    ctx.vote_to_halt();
  }

  static void combine(message_type& old, const message_type& incoming) {
    old += incoming;
  }
};

TEST(Halting, HaltedVerticesStayAsleepWithoutMessages) {
  // star 0 -> {1..7}: vertex 0 broadcasts once. Supersteps: 0 (all run),
  // 1 (only the 7 leaves run). Then silence.
  const CsrGraph g = make_graph(graph::star_graph(8));
  std::atomic<std::uint64_t> activations{0};
  Engine<ActivationCounter, CombinerKind::kSpinlockPush, false> engine(
      g, ActivationCounter{&activations, 0, 1});
  const RunResult r = engine.run();
  EXPECT_EQ(r.supersteps, 2u);
  EXPECT_EQ(activations.load(), 8u + 7u);
}

TEST(Halting, MessagesReactivateOnlyTheirRecipients) {
  // path 0 -> 1 -> 2 -> 3: vertex 0 broadcasts once in superstep 0. Only
  // vertex 1 wakes in superstep 1; it does not rebroadcast, so 2 and 3
  // stay asleep and the run ends. (A halted vertex — including the
  // broadcaster itself — is never reselected without a message.)
  const CsrGraph g = make_graph(graph::path_graph(4));
  std::atomic<std::uint64_t> activations{0};
  Engine<ActivationCounter, CombinerKind::kSpinlockPush, false> engine(
      g, ActivationCounter{&activations, 0, 1});
  const RunResult r = engine.run();
  EXPECT_EQ(r.supersteps, 2u);
  EXPECT_EQ(activations.load(), 4u + 1u);
  EXPECT_EQ(engine.value_of(1), 2u) << "superstep 0 + one wake-up";
  EXPECT_EQ(engine.value_of(2), 1u) << "superstep 0 only";
}

TEST(Halting, BypassAndScanAllAgreeOnActivations) {
  const CsrGraph g = make_graph(graph::binary_tree(4));
  std::atomic<std::uint64_t> scan_activations{0};
  std::atomic<std::uint64_t> bypass_activations{0};
  Engine<ActivationCounter, CombinerKind::kSpinlockPush, false> scan(
      g, ActivationCounter{&scan_activations, 0, 3});
  Engine<ActivationCounter, CombinerKind::kSpinlockPush, true> bypass(
      g, ActivationCounter{&bypass_activations, 0, 3});
  const RunResult rs = scan.run();
  const RunResult rb = bypass.run();
  EXPECT_EQ(rs.supersteps, rb.supersteps);
  EXPECT_EQ(scan_activations.load(), bypass_activations.load())
      << "the bypass must select exactly the message recipients";
}

/// Stays active for `rounds` supersteps without any messaging — exercises
/// the active-without-inbox path of scan-all selection.
struct SilentWorker {
  using value_type = std::uint32_t;
  using message_type = std::uint32_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = false;

  std::size_t rounds = 5;

  [[nodiscard]] value_type initial_value(vid_t) const noexcept { return 0; }

  void compute(auto& ctx) const {
    ctx.value() += 1;
    if (ctx.superstep() + 1 >= rounds) {
      ctx.vote_to_halt();
    }
  }

  static void combine(message_type& old, const message_type& incoming) {
    old += incoming;
  }
};

TEST(Halting, ActiveVerticesRunWithoutMessages) {
  const CsrGraph g = make_graph(graph::path_graph(6));
  Engine<SilentWorker, CombinerKind::kSpinlockPush, false> engine(
      g, SilentWorker{.rounds = 5});
  const RunResult r = engine.run();
  EXPECT_EQ(r.supersteps, 5u);
  EXPECT_EQ(r.total_messages, 0u);
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    EXPECT_EQ(engine.values()[s], 5u);
  }
}

TEST(Halting, TerminationNeedsBothSilenceAndUnanimousHalt) {
  // At the end of superstep 0 EVERY vertex has voted to halt, but vertex
  // 0's message is already in flight: the computation must not stop until
  // the message is absorbed.
  const CsrGraph g = make_graph(graph::cycle_graph(2));
  std::atomic<std::uint64_t> activations{0};
  Engine<ActivationCounter, CombinerKind::kMutexPush, false> engine(
      g, ActivationCounter{&activations, 0, 1});
  const RunResult r = engine.run();
  EXPECT_EQ(r.supersteps, 2u)
      << "superstep 1 must still run despite the unanimous halt vote";
  EXPECT_EQ(activations.load(), 2u + 1u);
}

}  // namespace
}  // namespace ipregel
