// Unit tests for the single-message mailboxes (paper sections 6.1-6.3):
// push mailboxes under both lock flavours and the pull outboxes.

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <thread>
#include <vector>

#include "core/mailbox.hpp"
#include "runtime/spin_lock.hpp"

namespace {

using ipregel::PullOutboxes;
using ipregel::PushMailboxes;
using ipregel::runtime::SpinLock;

void combine_min(std::uint32_t& old, const std::uint32_t& incoming) {
  old = std::min(old, incoming);
}

template <typename Lock>
class PushMailboxTest : public ::testing::Test {};

using LockTypes = ::testing::Types<std::mutex, SpinLock>;
TYPED_TEST_SUITE(PushMailboxTest, LockTypes);

TYPED_TEST(PushMailboxTest, FirstDeliveryFillsTheSlot) {
  PushMailboxes<std::uint32_t, TypeParam> boxes(8);
  EXPECT_TRUE(boxes.deliver(0, 3, 42u, combine_min))
      << "first delivery reports an empty mailbox";
  EXPECT_TRUE(boxes.has_message(0, 3));
  std::uint32_t out = 0;
  ASSERT_TRUE(boxes.consume(0, 3, out));
  EXPECT_EQ(out, 42u);
}

TYPED_TEST(PushMailboxTest, SecondDeliveryCombines) {
  PushMailboxes<std::uint32_t, TypeParam> boxes(8);
  EXPECT_TRUE(boxes.deliver(0, 1, 10u, combine_min));
  EXPECT_FALSE(boxes.deliver(0, 1, 5u, combine_min));
  EXPECT_FALSE(boxes.deliver(0, 1, 20u, combine_min));
  std::uint32_t out = 0;
  ASSERT_TRUE(boxes.consume(0, 1, out));
  EXPECT_EQ(out, 5u) << "min combiner keeps the smallest";
}

TYPED_TEST(PushMailboxTest, ConsumeClearsTheSlot) {
  PushMailboxes<std::uint32_t, TypeParam> boxes(4);
  boxes.deliver(1, 2, 7u, combine_min);
  std::uint32_t out = 0;
  EXPECT_TRUE(boxes.consume(1, 2, out));
  EXPECT_FALSE(boxes.consume(1, 2, out)) << "a message is consumed once";
  EXPECT_FALSE(boxes.has_message(1, 2));
}

TYPED_TEST(PushMailboxTest, GenerationsAreIndependent) {
  // The BSP rule: generation g (being consumed) and generation g^1 (being
  // filled) must never alias.
  PushMailboxes<std::uint32_t, TypeParam> boxes(4);
  boxes.deliver(0, 0, 1u, combine_min);
  boxes.deliver(1, 0, 2u, combine_min);
  std::uint32_t out = 0;
  ASSERT_TRUE(boxes.consume(0, 0, out));
  EXPECT_EQ(out, 1u);
  ASSERT_TRUE(boxes.consume(1, 0, out));
  EXPECT_EQ(out, 2u);
}

TYPED_TEST(PushMailboxTest, ResetEmptiesBothGenerations) {
  PushMailboxes<std::uint32_t, TypeParam> boxes(4);
  boxes.deliver(0, 0, 1u, combine_min);
  boxes.deliver(1, 1, 2u, combine_min);
  boxes.reset();
  std::uint32_t out = 0;
  EXPECT_FALSE(boxes.consume(0, 0, out));
  EXPECT_FALSE(boxes.consume(1, 1, out));
}

TYPED_TEST(PushMailboxTest, ConcurrentDeliveriesCombineAll) {
  // The data race the locks exist for: hammer one mailbox from several
  // threads with a sum combiner; nothing may be lost.
  PushMailboxes<std::uint32_t, TypeParam> boxes(1);
  constexpr int kThreads = 4;
  constexpr int kMessages = 25'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&boxes] {
      for (int i = 0; i < kMessages; ++i) {
        boxes.deliver(0, 0, 1u, [](std::uint32_t& old,
                                   const std::uint32_t& incoming) {
          old += incoming;
        });
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::uint32_t out = 0;
  ASSERT_TRUE(boxes.consume(0, 0, out));
  EXPECT_EQ(out, static_cast<std::uint32_t>(kThreads * kMessages));
}

TYPED_TEST(PushMailboxTest, ExactlyOneFirstDeliveryUnderContention) {
  // The selection bypass hinges on deliver() reporting "was empty" exactly
  // once per generation per mailbox.
  PushMailboxes<std::uint32_t, TypeParam> boxes(64);
  constexpr int kThreads = 4;
  std::vector<int> firsts(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t slot = 0; slot < 64; ++slot) {
        if (boxes.deliver(0, slot, 1u, combine_min)) {
          ++firsts[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  int total_firsts = 0;
  for (const int f : firsts) {
    total_firsts += f;
  }
  EXPECT_EQ(total_firsts, 64);
}

TEST(PushMailboxSizes, LockBytesMatchThePaper) {
  EXPECT_EQ((PushMailboxes<std::uint32_t, std::mutex>::lock_bytes_per_vertex()),
            40u);
  EXPECT_EQ((PushMailboxes<std::uint32_t, SpinLock>::lock_bytes_per_vertex()),
            4u);
}

TEST(PullOutboxes, BroadcastThenFetch) {
  PullOutboxes<double> out(8);
  EXPECT_FALSE(out.armed(0, 2));
  out.broadcast(0, 2, 1.5);
  EXPECT_TRUE(out.armed(0, 2));
  double v = 0.0;
  ASSERT_TRUE(out.fetch(0, 2, v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  // fetch is non-destructive: every out-neighbour reads the same value.
  ASSERT_TRUE(out.fetch(0, 2, v));
}

TEST(PullOutboxes, GenerationsAreIndependent) {
  PullOutboxes<double> out(4);
  out.broadcast(0, 1, 1.0);
  out.broadcast(1, 1, 2.0);
  double v = 0.0;
  ASSERT_TRUE(out.fetch(0, 1, v));
  EXPECT_DOUBLE_EQ(v, 1.0);
  ASSERT_TRUE(out.fetch(1, 1, v));
  EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(PullOutboxes, ClearRangeDisarms) {
  PullOutboxes<double> out(10);
  for (std::size_t s = 0; s < 10; ++s) {
    out.broadcast(0, s, 1.0);
  }
  out.clear_range(0, 2, 5);
  EXPECT_TRUE(out.armed(0, 1));
  EXPECT_FALSE(out.armed(0, 2));
  EXPECT_FALSE(out.armed(0, 4));
  EXPECT_TRUE(out.armed(0, 5));
}

TEST(PullOutboxes, ResetDisarmsEverything) {
  PullOutboxes<double> out(4);
  out.broadcast(0, 0, 1.0);
  out.broadcast(1, 3, 2.0);
  out.reset();
  double v = 0.0;
  EXPECT_FALSE(out.fetch(0, 0, v));
  EXPECT_FALSE(out.fetch(1, 3, v));
}

}  // namespace
