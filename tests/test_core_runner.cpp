// Tests for the runtime version dispatcher (run_version) — the harness's
// bridge between the paper's compile-time multi-version design and
// run-anything binaries.

#include <gtest/gtest.h>

#include <stdexcept>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using ipregel::testing::make_graph;

TEST(Runner, PageRankSupportsExactlyThreeVersions) {
  // PageRank vertices do not halt every superstep -> no bypass versions.
  const auto versions = applicable_versions<apps::PageRank>();
  ASSERT_EQ(versions.size(), 3u);
  for (const VersionId v : versions) {
    EXPECT_FALSE(v.selection_bypass);
  }
}

TEST(Runner, HashminSupportsAllSixVersions) {
  EXPECT_EQ(applicable_versions<apps::Hashmin>().size(), 6u);
}

TEST(Runner, WeightedSsspExcludesPullVersions) {
  // Targeted sends -> no broadcast-only guarantee -> no pull combiner.
  const auto versions = applicable_versions<apps::WeightedSssp>();
  ASSERT_EQ(versions.size(), 4u);
  for (const VersionId v : versions) {
    EXPECT_NE(v.combiner, CombinerKind::kPull);
  }
}

TEST(Runner, RejectsBypassForPageRank) {
  const auto g = make_graph(graph::cycle_graph(8));
  EXPECT_THROW((void)run_version(g, apps::PageRank{},
                                 {CombinerKind::kSpinlockPush, true}),
               std::invalid_argument);
}

TEST(Runner, RejectsPullForTargetedSendPrograms) {
  const auto g = make_graph(graph::cycle_graph(8));
  EXPECT_THROW(
      (void)run_version(g, apps::WeightedSssp{}, {CombinerKind::kPull, false}),
      std::invalid_argument);
}

TEST(Runner, ErrorNamesTheVersionAndTheReason) {
  const auto g = make_graph(graph::cycle_graph(8));
  try {
    (void)run_version(g, apps::PageRank{}, {CombinerKind::kPull, true});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("broadcast with selection bypass"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("always_halts=false"), std::string::npos) << what;
  }
}

TEST(Runner, FillsOutValuesWhenRequested) {
  const auto g = make_graph(graph::cycle_graph(8));
  std::vector<graph::vid_t> values;
  (void)run_version(g, apps::Hashmin{}, {CombinerKind::kMutexPush, true}, {},
                    nullptr, &values);
  ASSERT_EQ(values.size(), g.num_slots());
  for (const auto v : values) {
    EXPECT_EQ(v, 0u);
  }
}

TEST(Runner, AllVersionsListMatchesPaperOrder) {
  // kAllVersions drives the Fig. 7 sweep; it must enumerate all six and
  // lead with the push versions like the paper's legend.
  ASSERT_EQ(std::size(kAllVersions), 6u);
  EXPECT_EQ(version_name(kAllVersions[0]), "mutex");
  EXPECT_EQ(version_name(kAllVersions[1]), "mutex with selection bypass");
  EXPECT_EQ(version_name(kAllVersions[4]), "broadcast");
  EXPECT_EQ(version_name(kAllVersions[5]),
            "broadcast with selection bypass");
}

TEST(Runner, VersionNamesRoundTripCombinerNames) {
  EXPECT_EQ(to_string(CombinerKind::kMutexPush), "mutex");
  EXPECT_EQ(to_string(CombinerKind::kSpinlockPush), "spinlock");
  EXPECT_EQ(to_string(CombinerKind::kPull), "broadcast");
}

}  // namespace
}  // namespace ipregel
