// Tests for the dynamic scheduling extension (the paper's future-work
// load-balancing direction) and the pool primitive underneath it.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "runtime/thread_pool.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using ipregel::testing::make_graph;
using runtime::Range;
using runtime::ThreadPool;

TEST(DynamicParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100'003;
  std::vector<std::atomic<int>> seen(kN);
  pool.parallel_for_dynamic(kN, 97, [&](std::size_t, Range r) {
    for (std::size_t i = r.begin; i < r.end; ++i) {
      seen[i].fetch_add(1);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "index " << i;
  }
}

TEST(DynamicParallelFor, ZeroChunkIsCoercedToOne) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for_dynamic(10, 0, [&](std::size_t, Range r) {
    count.fetch_add(static_cast<int>(r.size()));
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(DynamicParallelFor, ZeroElementsIsANoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_dynamic(0, 8, [&](std::size_t, Range) { called = true; });
  EXPECT_FALSE(called);
}

TEST(DynamicParallelFor, LastChunkIsClamped) {
  ThreadPool pool(1);
  std::vector<Range> chunks;
  pool.parallel_for_dynamic(10, 4, [&](std::size_t, Range r) {
    chunks.push_back(r);
  });
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks.back().end, 10u);
  EXPECT_EQ(chunks.back().size(), 2u);
}

TEST(Scheduling, DynamicAndStaticComputeIdenticalResults) {
  const CsrGraph g = make_graph(graph::rmat(9, 6, {.seed = 77}));
  for (const Schedule schedule : {Schedule::kStatic, Schedule::kDynamic}) {
    EngineOptions opts;
    opts.schedule = schedule;
    opts.dynamic_chunk = 64;
    Engine<apps::Hashmin, CombinerKind::kSpinlockPush, true> engine(g, {},
                                                                    opts);
    (void)engine.run();
    Engine<apps::Hashmin, CombinerKind::kSpinlockPush, true> reference(g);
    (void)reference.run();
    for (std::size_t s = 0; s < g.num_slots(); ++s) {
      ASSERT_EQ(engine.values()[s], reference.values()[s])
          << "schedule " << static_cast<int>(schedule);
    }
  }
}

TEST(Scheduling, DynamicWorksWithEveryCombiner) {
  const CsrGraph g = make_graph(graph::grid_2d(10, 10));
  EngineOptions opts;
  opts.schedule = Schedule::kDynamic;
  opts.dynamic_chunk = 16;
  Engine<apps::Sssp, CombinerKind::kMutexPush, true> mutex_engine(
      g, apps::Sssp{.source = 0}, opts);
  Engine<apps::Sssp, CombinerKind::kPull, false> pull_engine(
      g, apps::Sssp{.source = 0}, opts);
  (void)mutex_engine.run();
  (void)pull_engine.run();
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    ASSERT_EQ(mutex_engine.values()[s], pull_engine.values()[s]);
  }
}

TEST(Scheduling, TinyChunksStillCoverTheFrontier) {
  // Chunk size 1 maximises scheduling churn; correctness must hold.
  const CsrGraph g = make_graph(graph::path_graph(200));
  EngineOptions opts;
  opts.schedule = Schedule::kDynamic;
  opts.dynamic_chunk = 1;
  Engine<apps::Sssp, CombinerKind::kSpinlockPush, true> engine(
      g, apps::Sssp{.source = 0}, opts);
  (void)engine.run();
  for (graph::vid_t id = 0; id < 200; ++id) {
    ASSERT_EQ(engine.value_of(id), id);
  }
}

}  // namespace
}  // namespace ipregel
