// End-to-end smoke tests: every framework version, every shipped program,
// small deterministic graphs, validated against the serial references.

#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/hashmin.hpp"
#include "apps/in_degree.hpp"
#include "apps/max_value.hpp"
#include "apps/pagerank.hpp"
#include "apps/serial_reference.hpp"
#include "apps/sssp.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using graph::EdgeList;
using ipregel::testing::expect_all_versions_match;
using ipregel::testing::expect_all_versions_near;
using ipregel::testing::make_graph;

EdgeList small_social() {
  // A small directed graph with a hub, a cycle, and a dangling vertex.
  EdgeList e;
  e.add(0, 1);
  e.add(0, 2);
  e.add(0, 3);
  e.add(1, 2);
  e.add(2, 0);
  e.add(3, 4);
  e.add(4, 5);
  e.add(5, 3);
  e.add(6, 0);  // 6 has no in-edges; nothing points to 7..n
  return e;
}

TEST(EngineSmoke, PageRankMatchesSerialOnSmallGraph) {
  const CsrGraph g = make_graph(small_social());
  const auto expected = apps::serial::pagerank(g, 10);
  expect_all_versions_near(g, apps::PageRank{.rounds = 10}, expected, 1e-12,
                           "pagerank/small");
}

TEST(EngineSmoke, HashminMatchesSerialOnSmallGraph) {
  const CsrGraph g = make_graph(small_social());
  const auto expected = apps::serial::hashmin(g);
  expect_all_versions_match(g, apps::Hashmin{}, expected, "hashmin/small");
}

TEST(EngineSmoke, SsspMatchesSerialOnSmallGraph) {
  const CsrGraph g = make_graph(small_social());
  const auto expected = apps::serial::sssp_unit(g, 0);
  expect_all_versions_match(g, apps::Sssp{.source = 0}, expected,
                            "sssp/small");
}

TEST(EngineSmoke, BfsParentMatchesSerialOnSmallGraph) {
  const CsrGraph g = make_graph(small_social());
  const auto expected = apps::serial::bfs_parent(g, 0);
  expect_all_versions_match(g, apps::BfsParent{.source = 0}, expected,
                            "bfs/small");
}

TEST(EngineSmoke, MaxValueMatchesSerialOnSmallGraph) {
  const CsrGraph g = make_graph(small_social());
  const auto expected = apps::serial::max_value(g, 7);
  expect_all_versions_match(g, apps::MaxValue{.seed = 7}, expected,
                            "maxvalue/small");
}

TEST(EngineSmoke, InDegreeMatchesSerialOnSmallGraph) {
  const CsrGraph g = make_graph(small_social());
  const auto expected = apps::serial::in_degree(g);
  expect_all_versions_match(g, apps::InDegree{}, expected, "indegree/small");
}

TEST(EngineSmoke, WeightedSsspMatchesDijkstra) {
  EdgeList e;
  e.add(0, 1, 4);
  e.add(0, 2, 1);
  e.add(2, 1, 1);
  e.add(1, 3, 3);
  e.add(2, 3, 7);
  e.add(3, 4, 1);
  const CsrGraph g = make_graph(e);
  const auto expected = apps::serial::sssp_weighted(g, 0);
  expect_all_versions_match(g, apps::WeightedSssp{.source = 0}, expected,
                            "weighted-sssp/small");
}

TEST(EngineSmoke, RunIsRepeatable) {
  const CsrGraph g = make_graph(small_social());
  Engine<apps::Hashmin, CombinerKind::kSpinlockPush, true> engine(g);
  const RunResult first = engine.run();
  const auto after_first =
      std::vector<graph::vid_t>(engine.values().begin(),
                                engine.values().end());
  const RunResult second = engine.run();
  EXPECT_EQ(first.supersteps, second.supersteps);
  EXPECT_EQ(first.total_messages, second.total_messages);
  EXPECT_TRUE(std::equal(engine.values().begin(), engine.values().end(),
                         after_first.begin()));
}

}  // namespace
}  // namespace ipregel
