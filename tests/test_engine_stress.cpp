// Heavier randomized cross-validation: moderately sized random graphs,
// every framework version against the serial references, plus a
// cross-framework (iPregel vs Pregel+ baseline) agreement sweep.

#include <gtest/gtest.h>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/serial_reference.hpp"
#include "apps/sssp.hpp"
#include "graph/generators.hpp"
#include "pregelplus/cluster.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using graph::EdgeList;
using ipregel::testing::expect_all_versions_match;
using ipregel::testing::expect_all_versions_near;
using ipregel::testing::make_graph;

TEST(EngineStress, AllVersionsOnAMidSizeScaleFreeGraph) {
  // ~16k vertices, ~130k edges: large enough for real thread interleaving
  // and hub contention on the per-mailbox locks.
  const CsrGraph g = make_graph(graph::rmat(14, 8, {.seed = 2024}));
  expect_all_versions_match(g, apps::Hashmin{}, apps::serial::hashmin(g),
                            "stress/hashmin");
  expect_all_versions_match(g, apps::Sssp{.source = 2},
                            apps::serial::sssp_unit(g, 2), "stress/sssp");
  expect_all_versions_near(g, apps::PageRank{.rounds = 10},
                           apps::serial::pagerank(g, 10), 1e-10,
                           "stress/pagerank");
}

TEST(EngineStress, AllVersionsOnAMidSizeRoadGraph) {
  // High diameter: thousands of supersteps through the bypass frontier.
  const CsrGraph g = make_graph(
      graph::grid_2d(60, 200, {.removal_fraction = 0.05, .seed = 5}));
  expect_all_versions_match(g, apps::Sssp{.source = 0},
                            apps::serial::sssp_unit(g, 0),
                            "stress/road-sssp");
  expect_all_versions_match(g, apps::Hashmin{}, apps::serial::hashmin(g),
                            "stress/road-hashmin");
}

TEST(EngineStress, IPregelAndPregelPlusAgreeEverywhere) {
  // The Fig. 8 comparison is only meaningful if both frameworks compute
  // identical answers on the same inputs.
  const CsrGraph g = make_graph(graph::rmat(12, 6, {.seed = 31}));
  for (const std::size_t nodes : {1u, 3u, 8u}) {
    pregelplus::Cluster<apps::Hashmin> cluster(
        g, {}, {.num_nodes = nodes, .procs_per_node = 2});
    (void)cluster.run();
    const auto cluster_values = cluster.collect_values();
    Engine<apps::Hashmin, CombinerKind::kSpinlockPush, true> engine(g);
    (void)engine.run();
    for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
      ASSERT_EQ(engine.values()[s], cluster_values[s])
          << "nodes=" << nodes << " slot=" << s;
    }
  }
}

TEST(EngineStress, ManyConsecutiveRunsDoNotLeakState) {
  const CsrGraph g = make_graph(graph::rmat(10, 5, {.seed = 8}));
  Engine<apps::Sssp, CombinerKind::kSpinlockPush, true> engine(
      g, apps::Sssp{.source = 2});
  const RunResult first = engine.run();
  for (int i = 0; i < 10; ++i) {
    const RunResult again = engine.run();
    ASSERT_EQ(again.supersteps, first.supersteps) << "iteration " << i;
    ASSERT_EQ(again.total_messages, first.total_messages);
  }
}

TEST(EngineStress, WidePoolOnASmallGraph) {
  // More threads than frontier entries: partitions of size 0/1 everywhere.
  const CsrGraph g = make_graph(graph::path_graph(17));
  Engine<apps::Sssp, CombinerKind::kSpinlockPush, true> engine(
      g, apps::Sssp{.source = 0}, EngineOptions{.threads = 8});
  (void)engine.run();
  for (graph::vid_t id = 0; id < 17; ++id) {
    ASSERT_EQ(engine.value_of(id), id);
  }
}

}  // namespace
}  // namespace ipregel
