// Snapshot files and engine capture/restore: round trips, retention,
// atomic publication, and — most importantly — rejection. A snapshot that
// does not fit the engine (different graph, incompatible version, a mode
// the program cannot recover from) must throw before any engine state is
// touched.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "core/engine.hpp"
#include "core/runner.hpp"
#include "ft/fingerprint.hpp"
#include "ft/snapshot.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using graph::EdgeList;
using ipregel::testing::make_graph;

class TempDir {
 public:
  TempDir() {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("ipregel_") + info->test_suite_name() + "_" +
             info->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] const std::string& str() const noexcept { return dir_; }

 private:
  std::string dir_;
};

ft::EngineSnapshot sample_snapshot(std::uint64_t slots = 4) {
  ft::EngineSnapshot snap;
  snap.meta.mode = ft::CheckpointMode::kHeavyweight;
  snap.meta.combiner = 1;
  snap.meta.selection_bypass = true;
  snap.meta.superstep = 11;
  snap.meta.num_slots = slots;
  snap.meta.num_vertices = slots;
  snap.meta.num_edges = 9;
  snap.meta.graph_fingerprint = 0xABCDEF0123456789ULL;
  snap.meta.value_size = 4;
  snap.meta.message_size = 2;
  snap.values.assign(slots * 4, 0x5A);
  snap.halted.assign(slots, 1);
  snap.inbox.assign(slots * 2, 0x33);
  snap.inbox_flags.assign(slots, 0);
  snap.frontier = {0, 2};
  return snap;
}

TEST(SnapshotFile, RoundTripsAllSections) {
  const TempDir dir;
  const std::string path = ft::snapshot_path(dir.str(), "snapshot", 11);
  const ft::EngineSnapshot original = sample_snapshot();
  ft::write_snapshot(path, original);

  const ft::EngineSnapshot loaded = ft::read_snapshot(path);
  EXPECT_EQ(loaded.meta.mode, original.meta.mode);
  EXPECT_EQ(loaded.meta.combiner, original.meta.combiner);
  EXPECT_EQ(loaded.meta.selection_bypass, original.meta.selection_bypass);
  EXPECT_EQ(loaded.meta.superstep, original.meta.superstep);
  EXPECT_EQ(loaded.meta.graph_fingerprint, original.meta.graph_fingerprint);
  EXPECT_EQ(loaded.values, original.values);
  EXPECT_EQ(loaded.halted, original.halted);
  EXPECT_EQ(loaded.inbox, original.inbox);
  EXPECT_EQ(loaded.inbox_flags, original.inbox_flags);
  EXPECT_EQ(loaded.frontier, original.frontier);

  const ft::SnapshotMeta meta = ft::read_snapshot_meta(path);
  EXPECT_EQ(meta.superstep, 11u);
  EXPECT_EQ(meta.num_edges, 9u);
}

TEST(SnapshotFile, PublicationIsAtomic) {
  const TempDir dir;
  const std::string path = ft::snapshot_path(dir.str(), "snapshot", 3);
  ft::write_snapshot(path, sample_snapshot());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "temporary staging file left behind";
}

TEST(SnapshotFile, CorruptionIsRejected) {
  const TempDir dir;
  const std::string path = ft::snapshot_path(dir.str(), "snapshot", 1);
  ft::write_snapshot(path, sample_snapshot());

  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] ^= 0x08;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW((void)ft::read_snapshot(path), ft::FormatError);
}

TEST(SnapshotFile, InconsistentSectionSizesAreRejected) {
  const TempDir dir;
  const std::string path = ft::snapshot_path(dir.str(), "snapshot", 1);
  ft::EngineSnapshot bad = sample_snapshot();
  bad.values.pop_back();  // no longer num_slots * value_size
  ft::write_snapshot(path, bad);
  EXPECT_THROW((void)ft::read_snapshot(path), ft::FormatError);
}

TEST(SnapshotFile, LatestAndPrune) {
  const TempDir dir;
  for (const std::uint64_t step : {2u, 5u, 9u, 10u}) {
    ft::write_snapshot(ft::snapshot_path(dir.str(), "snapshot", step),
                       sample_snapshot());
  }
  // A different basename and a non-snapshot file must not confuse either
  // helper.
  ft::write_snapshot(ft::snapshot_path(dir.str(), "other", 99),
                     sample_snapshot());
  std::ofstream(dir.str() + "/snapshot.notanumber.ipsnap") << "x";

  const auto latest = ft::latest_snapshot(dir.str(), "snapshot");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, ft::snapshot_path(dir.str(), "snapshot", 10));

  ft::prune_snapshots(dir.str(), "snapshot", 2);
  EXPECT_FALSE(std::filesystem::exists(
      ft::snapshot_path(dir.str(), "snapshot", 2)));
  EXPECT_FALSE(std::filesystem::exists(
      ft::snapshot_path(dir.str(), "snapshot", 5)));
  EXPECT_TRUE(std::filesystem::exists(
      ft::snapshot_path(dir.str(), "snapshot", 9)));
  EXPECT_TRUE(std::filesystem::exists(
      ft::snapshot_path(dir.str(), "snapshot", 10)));
  EXPECT_TRUE(std::filesystem::exists(
      ft::snapshot_path(dir.str(), "other", 99)));

  EXPECT_FALSE(ft::latest_snapshot(dir.str(), "missing").has_value());
}

// ---- engine capture / restore ------------------------------------------

TEST(EngineCheckpoint, HeavyweightRoundTripRestoresValues) {
  const CsrGraph g = make_graph(graph::rmat(7, 4, {.seed = 17}));
  Engine<apps::Hashmin, CombinerKind::kSpinlockPush, true> engine(g);
  (void)engine.run();
  const ft::EngineSnapshot snap =
      engine.capture_state(ft::CheckpointMode::kHeavyweight);
  EXPECT_EQ(snap.meta.num_vertices, g.num_vertices());
  EXPECT_EQ(snap.meta.value_size, sizeof(graph::vid_t));

  Engine<apps::Hashmin, CombinerKind::kSpinlockPush, true> fresh(g);
  fresh.restore_state(snap);
  ASSERT_EQ(fresh.values().size(), engine.values().size());
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    EXPECT_EQ(fresh.values()[s], engine.values()[s]) << "slot " << s;
  }
}

TEST(EngineCheckpoint, RejectsSnapshotFromDifferentGraph) {
  // Same |V| and |E|, different edges: the shape check passes, the
  // fingerprint must catch it.
  const CsrGraph a = make_graph(graph::path_graph(64));
  EdgeList shifted;
  for (graph::vid_t v = 0; v + 1 < 64; ++v) {
    shifted.add(63 - v, 62 - v);
  }
  const CsrGraph b = make_graph(shifted);
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());

  Engine<apps::Hashmin, CombinerKind::kSpinlockPush, false> on_a(a);
  (void)on_a.run();
  const ft::EngineSnapshot snap =
      on_a.capture_state(ft::CheckpointMode::kHeavyweight);

  Engine<apps::Hashmin, CombinerKind::kSpinlockPush, false> on_b(b);
  EXPECT_THROW(on_b.restore_state(snap), ft::SnapshotMismatch);
}

TEST(EngineCheckpoint, HeavyweightRejectsIncompatibleVersion) {
  const CsrGraph g = make_graph(graph::rmat(6, 4, {.seed = 3}));
  Engine<apps::Hashmin, CombinerKind::kSpinlockPush, true> push(g);
  (void)push.run();
  const ft::EngineSnapshot snap =
      push.capture_state(ft::CheckpointMode::kHeavyweight);

  // Push mailboxes cannot restore into a pull engine...
  Engine<apps::Hashmin, CombinerKind::kPull, true> pull(g);
  EXPECT_THROW(pull.restore_state(snap), ft::SnapshotMismatch);
  // ...nor across a selection-bypass mismatch...
  Engine<apps::Hashmin, CombinerKind::kSpinlockPush, false> no_bypass(g);
  EXPECT_THROW(no_bypass.restore_state(snap), ft::SnapshotMismatch);
  // ...but the two push combiners share a mailbox layout.
  Engine<apps::Hashmin, CombinerKind::kMutexPush, true> mutex_push(g);
  EXPECT_NO_THROW(mutex_push.restore_state(snap));
}

TEST(EngineCheckpoint, LightweightCrossesVersionsFreely) {
  const CsrGraph g = make_graph(graph::rmat(6, 4, {.seed = 3}));
  Engine<apps::Hashmin, CombinerKind::kSpinlockPush, true> push(g);
  (void)push.run();
  const ft::EngineSnapshot snap =
      push.capture_state(ft::CheckpointMode::kLightweight);

  Engine<apps::Hashmin, CombinerKind::kPull, false> pull(g);
  EXPECT_NO_THROW(pull.restore_state(snap));
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    EXPECT_EQ(pull.values()[s], push.values()[s]) << "slot " << s;
  }
}

TEST(EngineCheckpoint, LightweightNeedsResendCapableProgram) {
  EdgeList edges;
  edges.add(0, 1, 4);
  edges.add(1, 2, 2);
  const CsrGraph g = make_graph(edges);
  // WeightedSssp has no resend hook: lightweight capture must be refused.
  Engine<apps::WeightedSssp, CombinerKind::kSpinlockPush, true> engine(
      g, apps::WeightedSssp{.source = 0});
  (void)engine.run();
  EXPECT_THROW((void)engine.capture_state(ft::CheckpointMode::kLightweight),
               std::invalid_argument);
  EXPECT_NO_THROW(
      (void)engine.capture_state(ft::CheckpointMode::kHeavyweight));
}

TEST(EngineCheckpoint, LightweightRejectsAggregatorPrograms) {
  const CsrGraph g = make_graph(graph::rmat(6, 4, {.seed = 5}));
  Engine<apps::PageRankConverging, CombinerKind::kSpinlockPush, false>
      engine(g, apps::PageRankConverging{.epsilon = 1e-6});
  (void)engine.run();
  EXPECT_THROW((void)engine.capture_state(ft::CheckpointMode::kLightweight),
               std::invalid_argument);
  // Heavyweight carries the folded aggregate and works.
  const ft::EngineSnapshot snap =
      engine.capture_state(ft::CheckpointMode::kHeavyweight);
  EXPECT_EQ(snap.aggregate.size(), sizeof(double));
}

TEST(EngineCheckpoint, RunnerRejectsResumeOnWrongGraphOrVersion) {
  const TempDir dir;
  const CsrGraph g = make_graph(graph::rmat(7, 4, {.seed = 29}));
  EngineOptions options;
  options.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  options.checkpoint.every = 1;
  options.checkpoint.directory = dir.str();
  const VersionId version{CombinerKind::kSpinlockPush, true};
  (void)run_version(g, apps::Hashmin{}, version, options);
  const auto snap_path = ft::latest_snapshot(dir.str(), "snapshot");
  ASSERT_TRUE(snap_path.has_value());

  // Wrong graph: rejected before any engine is built.
  const CsrGraph other = make_graph(graph::rmat(7, 4, {.seed = 30}));
  EXPECT_THROW((void)run_version(other, apps::Hashmin{}, version,
                                 EngineOptions{}, nullptr, nullptr,
                                 *snap_path),
               ft::SnapshotMismatch);
  // Heavyweight snapshot, incompatible version: rejected.
  EXPECT_THROW((void)run_version(g, apps::Hashmin{},
                                 VersionId{CombinerKind::kPull, true},
                                 EngineOptions{}, nullptr, nullptr,
                                 *snap_path),
               ft::SnapshotMismatch);
}

TEST(GraphFingerprint, SensitiveToContentNotJustShape) {
  const CsrGraph a = make_graph(graph::path_graph(40));
  EdgeList reversed;
  for (graph::vid_t v = 0; v + 1 < 40; ++v) {
    reversed.add(v + 1, v);
  }
  const CsrGraph b = make_graph(reversed);
  EXPECT_NE(ft::graph_fingerprint(a), ft::graph_fingerprint(b));
  EXPECT_EQ(ft::graph_fingerprint(a), ft::graph_fingerprint(a));
}

}  // namespace
}  // namespace ipregel
