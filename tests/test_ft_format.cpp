// The shared binary framing (ft/binary_format.hpp) under attack: a file
// that is corrupted, truncated, or from a different format version must be
// rejected with a clear error — never partially loaded. The graph binary
// cache is retrofitted onto the same framing, so it inherits the same
// guarantees and is tested here too.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ft/binary_format.hpp"
#include "graph/edge_list.hpp"
#include "graph/io.hpp"

namespace ipregel {
namespace {

using ft::BinaryReader;
using ft::BinaryWriter;
using ft::FormatError;

constexpr std::uint64_t kMagic = 0x544D524654534554ULL;  // test magic

std::string write_two_sections() {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out, kMagic, 3);
  const std::vector<std::uint8_t> a{1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> b{9, 8};
  writer.section(10, a.data(), a.size());
  writer.section(20, b.data(), b.size());
  writer.finish();
  return out.str();
}

TEST(BinaryFormat, RoundTripsSectionsInOrder) {
  const std::string bytes = write_two_sections();
  std::istringstream in(bytes, std::ios::binary);
  BinaryReader reader(in, "mem", kMagic, 1, 5);
  EXPECT_EQ(reader.version(), 3u);

  std::uint32_t tag = 0;
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(reader.next_section(tag, payload));
  EXPECT_EQ(tag, 10u);
  EXPECT_EQ(payload, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
  ASSERT_TRUE(reader.next_section(tag, payload));
  EXPECT_EQ(tag, 20u);
  EXPECT_EQ(payload, (std::vector<std::uint8_t>{9, 8}));
  EXPECT_FALSE(reader.next_section(tag, payload));  // trailer
}

TEST(BinaryFormat, RoundTripsEmptySection) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out, kMagic, 1);
  writer.section(7, nullptr, 0);
  writer.finish();

  std::istringstream in(out.str(), std::ios::binary);
  BinaryReader reader(in, "mem", kMagic, 1, 1);
  const std::vector<std::uint8_t> payload = reader.expect_section(7);
  EXPECT_TRUE(payload.empty());
}

TEST(BinaryFormat, RejectsWrongMagic) {
  const std::string bytes = write_two_sections();
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(BinaryReader(in, "mem", kMagic + 1, 1, 5), FormatError);
}

TEST(BinaryFormat, RejectsUnsupportedVersion) {
  const std::string bytes = write_two_sections();  // version 3
  {
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_THROW(BinaryReader(in, "mem", kMagic, 4, 9), FormatError);
  }
  {
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_THROW(BinaryReader(in, "mem", kMagic, 1, 2), FormatError);
  }
}

TEST(BinaryFormat, RejectsCorruptedHeader) {
  std::string bytes = write_two_sections();
  bytes[9] ^= 0x01;  // inside the version field, protected by header CRC
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(BinaryReader(in, "mem", kMagic, 1, 5), FormatError);
}

TEST(BinaryFormat, RejectsCorruptedPayloadByte) {
  // Flip each payload byte of the first section in turn; the section CRC
  // must catch every single one.
  const std::string clean = write_two_sections();
  const std::size_t payload_start = 8 + 4 + 4 + 4 + 8;  // header + tag + len
  for (std::size_t i = 0; i < 5; ++i) {
    std::string bytes = clean;
    bytes[payload_start + i] ^= 0x40;
    std::istringstream in(bytes, std::ios::binary);
    BinaryReader reader(in, "mem", kMagic, 1, 5);
    std::uint32_t tag = 0;
    std::vector<std::uint8_t> payload;
    EXPECT_THROW((void)reader.next_section(tag, payload), FormatError)
        << "flipped payload byte " << i;
  }
}

TEST(BinaryFormat, RejectsTruncationAtEveryLength) {
  // Any prefix of a valid file must fail loudly, wherever the cut lands:
  // inside the header, a section, or exactly at the (missing) trailer.
  const std::string clean = write_two_sections();
  for (std::size_t len = 0; len < clean.size(); ++len) {
    std::istringstream in(clean.substr(0, len), std::ios::binary);
    bool threw = false;
    try {
      BinaryReader reader(in, "mem", kMagic, 1, 5);
      std::uint32_t tag = 0;
      std::vector<std::uint8_t> payload;
      while (reader.next_section(tag, payload)) {
      }
    } catch (const FormatError&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "prefix of " << len << " bytes parsed cleanly";
  }
}

TEST(BinaryFormat, ExpectSectionRejectsWrongTag) {
  const std::string bytes = write_two_sections();
  std::istringstream in(bytes, std::ios::binary);
  BinaryReader reader(in, "mem", kMagic, 1, 5);
  EXPECT_THROW((void)reader.expect_section(20), FormatError);
}

TEST(BinaryFormat, Crc32MatchesKnownVector) {
  // The standard check value: CRC-32("123456789") == 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(ft::crc32(s, 9), 0xCBF43926u);
  // Chaining must equal one-shot computation.
  EXPECT_EQ(ft::crc32(s + 4, 5, ft::crc32(s, 4)), 0xCBF43926u);
}

TEST(FieldCodec, RoundTripsAndRejectsLeftovers) {
  ft::FieldWriter w;
  w.u8(7);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFULL);

  ft::FieldReader r(w.bytes(), "test");
  EXPECT_EQ(r.u8(), 7u);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  r.done();

  ft::FieldReader short_read(w.bytes(), "test");
  (void)short_read.u8();
  EXPECT_THROW(short_read.done(), FormatError);

  const std::vector<std::uint8_t> two{1, 2};
  ft::FieldReader past_end(two, "test");
  EXPECT_THROW((void)past_end.u32(), FormatError);
}

// ---- the retrofitted graph binary cache --------------------------------

class TempPath {
 public:
  TempPath() {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = (std::filesystem::temp_directory_path() /
             (std::string("ipregel_") + info->test_suite_name() + "_" +
              info->name() + ".bin"))
                .string();
  }
  ~TempPath() { std::filesystem::remove(path_); }
  [[nodiscard]] const std::string& str() const noexcept { return path_; }

 private:
  std::string path_;
};

graph::EdgeList weighted_list() {
  graph::EdgeList list;
  list.add(0, 1, 5);
  list.add(1, 2, 7);
  list.add(2, 0, 1);
  return list;
}

TEST(EdgeListBinary, CorruptedCacheIsRejected) {
  const TempPath path;
  graph::save_edge_list_binary(weighted_list(), path.str());

  std::vector<char> bytes;
  {
    std::ifstream in(path.str(), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  // Flip one byte in the middle of the edge payload.
  bytes[bytes.size() / 2] ^= 0x20;
  {
    std::ofstream out(path.str(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW((void)graph::load_edge_list_binary(path.str()), FormatError);
}

TEST(EdgeListBinary, LegacyFormatGetsActionableError) {
  const TempPath path;
  {
    std::ofstream out(path.str(), std::ios::binary);
    const std::uint64_t legacy_magic = 0x4950524547454C31ULL;  // "IPREGEL1"
    const std::uint64_t count = 0;
    const std::uint64_t weighted = 0;
    out.write(reinterpret_cast<const char*>(&legacy_magic),
              sizeof legacy_magic);
    out.write(reinterpret_cast<const char*>(&count), sizeof count);
    out.write(reinterpret_cast<const char*>(&weighted), sizeof weighted);
  }
  try {
    (void)graph::load_edge_list_binary(path.str());
    FAIL() << "legacy cache loaded without error";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("legacy"), std::string::npos);
  }
}

TEST(EdgeListBinary, TruncationAnywhereIsRejected) {
  const TempPath path;
  graph::save_edge_list_binary(weighted_list(), path.str());
  std::vector<char> bytes;
  {
    std::ifstream in(path.str(), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  for (std::size_t len = 0; len < bytes.size(); len += 3) {
    std::ofstream out(path.str(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(len));
    out.close();
    EXPECT_THROW((void)graph::load_edge_list_binary(path.str()),
                 std::runtime_error)
        << "prefix of " << len << " bytes loaded cleanly";
  }
}

}  // namespace
}  // namespace ipregel
