// The tentpole property: kill a run mid-superstep with a deterministic
// injected fault, recover from the last checkpoint, and require the final
// vertex values to be IDENTICAL to an uninterrupted run — for PageRank,
// SSSP, and Hashmin, under every applicable framework version, in both
// heavyweight and lightweight checkpoint modes.
//
// Determinism fine print: min-combined programs (SSSP, Hashmin) are
// combine-order independent, so they are exact at any thread count. The
// pull combiner gathers in fixed in-neighbour order, so PageRank/pull is
// exact at any thread count too. PageRank under a *push* combiner sums
// messages in delivery order, which is only reproducible single-threaded —
// those cases run with threads = 1 (two clean multi-threaded PageRank/push
// runs do not match bit-for-bit either; that is floating-point addition,
// not checkpointing).

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "core/runner.hpp"
#include "ft/fault.hpp"
#include "ft/snapshot.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using ipregel::testing::make_graph;

class TempDir {
 public:
  explicit TempDir(const std::string& label) {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("ipregel_rec_") + info->name() + "_" + label))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] const std::string& str() const noexcept { return dir_; }

 private:
  std::string dir_;
};

/// Crash a run at a seed-derived point, recover from the newest snapshot,
/// and require bit-identical final values vs. the uninterrupted run.
template <typename Program>
void expect_crash_equivalence(const CsrGraph& g, Program program,
                              VersionId version, ft::CheckpointMode mode,
                              std::size_t threads, std::uint64_t fault_seed,
                              const std::string& tag) {
  SCOPED_TRACE(tag + " / " + std::string(version_name(version)) + " / " +
               std::string(to_string(mode)) + " / seed " +
               std::to_string(fault_seed));

  EngineOptions base;
  base.threads = threads;

  std::vector<typename Program::value_type> clean;
  const RunResult clean_result =
      run_version(g, program, version, base, nullptr, &clean);
  ASSERT_GE(clean_result.supersteps, 3u)
      << "workload too short to crash meaningfully";

  const TempDir dir(std::string(to_string(mode)) + "_" +
                    std::to_string(fault_seed) +
                    (version.selection_bypass ? "_b" : "_s") +
                    std::string(to_string(version.combiner)));
  EngineOptions crashing = base;
  crashing.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  crashing.checkpoint.every = 1;
  crashing.checkpoint.mode = mode;
  crashing.checkpoint.directory = dir.str();
  crashing.fault = ft::FaultPlan::from_seed(
      fault_seed, 1, clean_result.supersteps - 1,
      fault_seed == 0 ? 0 : g.num_vertices() / 3);

  bool crashed = false;
  try {
    (void)run_version(g, program, version, crashing);
  } catch (const ft::InjectedFault&) {
    crashed = true;
  }
  if (!crashed) {
    // The crash point asked for more compute calls than that superstep
    // executed (possible for seeds > 0 on sparse frontiers); the run
    // simply finished. Seed 0 always trips before the first vertex.
    ASSERT_GT(crashing.fault.after_compute_calls, 0u)
        << "fault with after_compute_calls = 0 failed to trip";
    return;
  }

  const auto snapshot = ft::latest_snapshot(dir.str(), "snapshot");
  ASSERT_TRUE(snapshot.has_value()) << "crash left no snapshot behind";
  const ft::SnapshotMeta meta = ft::read_snapshot_meta(*snapshot);
  ASSERT_LE(meta.superstep, crashing.fault.superstep);

  std::vector<typename Program::value_type> recovered;
  const RunResult resumed = run_version(g, program, version, base, nullptr,
                                        &recovered, *snapshot);
  EXPECT_EQ(resumed.supersteps, clean_result.supersteps)
      << "resumed run converged after a different number of supersteps";
  ASSERT_EQ(recovered.size(), clean.size());
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(recovered[s], clean[s])
        << "value diverged at slot " << s << " (id " << g.id_of(s)
        << "); crash was in superstep " << crashing.fault.superstep
        << ", recovered from superstep " << meta.superstep;
  }
}

constexpr std::uint64_t kFaultSeeds[] = {0, 11, 42};

TEST(CrashEquivalence, SsspAllVersionsBothModes) {
  const CsrGraph g = make_graph(graph::rmat(8, 5, {.seed = 7}));
  const apps::Sssp program{};  // source vertex 2, as in the paper
  for (const VersionId v : applicable_versions<apps::Sssp>()) {
    for (const ft::CheckpointMode mode : {ft::CheckpointMode::kHeavyweight,
                                          ft::CheckpointMode::kLightweight}) {
      for (const std::uint64_t seed : kFaultSeeds) {
        expect_crash_equivalence(g, program, v, mode, 4, seed, "sssp");
      }
    }
  }
}

TEST(CrashEquivalence, SsspLongWavefrontOnGrid) {
  // A grid drives a long, narrow wavefront: dozens of supersteps, so the
  // crash superstep and the snapshot it resumes from are far apart from
  // the run's start and end.
  const CsrGraph g =
      make_graph(graph::grid_2d(16, 16, {.removal_fraction = 0.0}));
  const apps::Sssp program{.source = 0};
  const VersionId v{CombinerKind::kSpinlockPush, true};
  for (const ft::CheckpointMode mode : {ft::CheckpointMode::kHeavyweight,
                                        ft::CheckpointMode::kLightweight}) {
    for (const std::uint64_t seed : kFaultSeeds) {
      expect_crash_equivalence(g, program, v, mode, 4, seed, "sssp-grid");
    }
  }
}

TEST(CrashEquivalence, HashminAllVersionsBothModes) {
  graph::EdgeList edges = graph::uniform_random(220, 420, 13);
  edges.symmetrize();
  const CsrGraph g = make_graph(edges);
  for (const VersionId v : applicable_versions<apps::Hashmin>()) {
    for (const ft::CheckpointMode mode : {ft::CheckpointMode::kHeavyweight,
                                          ft::CheckpointMode::kLightweight}) {
      for (const std::uint64_t seed : kFaultSeeds) {
        expect_crash_equivalence(g, apps::Hashmin{}, v, mode, 4, seed,
                                 "hashmin");
      }
    }
  }
}

TEST(CrashEquivalence, PageRankAllVersionsBothModes) {
  const CsrGraph g = make_graph(graph::rmat(8, 5, {.seed = 23}));
  const apps::PageRank program{.rounds = 12};
  for (const VersionId v : applicable_versions<apps::PageRank>()) {
    // Push combining sums in delivery order: single-threaded for exact
    // reproducibility. Pull gathers in fixed order: any thread count.
    const std::size_t threads =
        v.combiner == CombinerKind::kPull ? 4 : 1;
    for (const ft::CheckpointMode mode : {ft::CheckpointMode::kHeavyweight,
                                          ft::CheckpointMode::kLightweight}) {
      for (const std::uint64_t seed : kFaultSeeds) {
        expect_crash_equivalence(g, program, v, mode, threads, seed,
                                 "pagerank");
      }
    }
  }
}

TEST(CrashEquivalence, LightweightSnapshotResumesUnderDifferentVersion) {
  // The lightweight extra: crash under spinlock+bypass, recover under the
  // pull combiner. Hashmin is min-combined, so the cross-version resume
  // must still land on the identical fixpoint.
  graph::EdgeList edges = graph::uniform_random(180, 360, 31);
  edges.symmetrize();
  const CsrGraph g = make_graph(edges);

  EngineOptions base;
  base.threads = 4;
  std::vector<graph::vid_t> clean;
  const RunResult clean_result =
      run_version(g, apps::Hashmin{},
                  VersionId{CombinerKind::kSpinlockPush, true}, base,
                  nullptr, &clean);
  ASSERT_GE(clean_result.supersteps, 3u);

  const TempDir dir("xver");
  EngineOptions crashing = base;
  crashing.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  crashing.checkpoint.every = 1;
  crashing.checkpoint.mode = ft::CheckpointMode::kLightweight;
  crashing.checkpoint.directory = dir.str();
  crashing.fault.superstep = clean_result.supersteps / 2;
  crashing.fault.after_compute_calls = 0;
  EXPECT_THROW((void)run_version(g, apps::Hashmin{},
                                 VersionId{CombinerKind::kSpinlockPush, true},
                                 crashing),
               ft::InjectedFault);

  const auto snapshot = ft::latest_snapshot(dir.str(), "snapshot");
  ASSERT_TRUE(snapshot.has_value());
  std::vector<graph::vid_t> recovered;
  (void)run_version(g, apps::Hashmin{}, VersionId{CombinerKind::kPull, true},
                    base, nullptr, &recovered, *snapshot);
  ASSERT_EQ(recovered.size(), clean.size());
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(recovered[s], clean[s]) << "slot " << s;
  }
}

}  // namespace
}  // namespace ipregel
