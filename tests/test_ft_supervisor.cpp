// Supervisor property: a run that faults N times under a deterministic
// per-attempt FaultPlan schedule, retried by ft::supervise from its
// checkpoints, must finish with values bit-identical to an uninterrupted
// run — for PageRank, SSSP, and Hashmin. Plus the retry-policy mechanics:
// attempt budgets, non-retryable kinds, retry-from-scratch without a
// checkpoint directory, and backoff accounting.
//
// Determinism fine print matches tests/test_ft_recovery.cpp: min-combined
// programs (SSSP, Hashmin) and PageRank under the pull combiner are exact
// at any thread count; PageRank under a push combiner runs with
// threads = 1 (floating-point sums in delivery order).

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "core/runner.hpp"
#include "ft/supervisor.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using ipregel::testing::make_graph;

class TempDir {
 public:
  explicit TempDir(const std::string& label) {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("ipregel_sup_") + info->name() + "_" + label))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] const std::string& str() const noexcept { return dir_; }

 private:
  std::string dir_;
};

/// Fails at compute() unconditionally — the non-retryable failure kind.
struct AlwaysThrows {
  using value_type = graph::vid_t;
  using message_type = graph::vid_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;

  [[nodiscard]] graph::vid_t initial_value(graph::vid_t id) const noexcept {
    return id;
  }
  void compute(auto&) const {
    throw std::runtime_error("deterministic failure");
  }
  void resend(auto& ctx) const { ctx.broadcast(ctx.value()); }
  static void combine(graph::vid_t& old,
                      const graph::vid_t& incoming) noexcept {
    old = std::min(old, incoming);
  }
};

/// Three faults at distinct supersteps, each before the first compute call
/// of its superstep — guaranteed to trip as long as the superstep executes
/// at least one vertex.
std::vector<ft::FaultPlan> three_faults(std::size_t s0, std::size_t s1,
                                        std::size_t s2) {
  return {ft::FaultPlan{.superstep = s0, .after_compute_calls = 0},
          ft::FaultPlan{.superstep = s1, .after_compute_calls = 0},
          ft::FaultPlan{.superstep = s2, .after_compute_calls = 0}};
}

/// Clean run vs. supervised run under a 3-fault schedule with per-superstep
/// checkpoints: the supervised run must take exactly 4 attempts (proving
/// all three faults tripped), resume from a snapshot on each retry, and
/// end bit-identical.
template <typename Program>
void expect_supervised_equivalence(const CsrGraph& g, Program program,
                                   VersionId version, ft::CheckpointMode mode,
                                   std::size_t threads,
                                   const std::string& tag) {
  SCOPED_TRACE(tag + " / " + std::string(version_name(version)) + " / " +
               std::string(to_string(mode)));

  EngineOptions base;
  base.threads = threads;

  std::vector<typename Program::value_type> clean;
  const RunResult clean_result =
      run_version(g, program, version, base, nullptr, &clean);
  ASSERT_GE(clean_result.supersteps, 5u)
      << "workload too short for a 3-fault schedule";
  const std::size_t last = clean_result.supersteps - 1;

  const TempDir dir(tag + (version.selection_bypass ? "_b" : "_s") +
                    std::string(to_string(version.combiner)) + "_" +
                    std::string(to_string(mode)));
  EngineOptions supervised = base;
  supervised.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  supervised.checkpoint.every = 1;
  supervised.checkpoint.mode = mode;
  supervised.checkpoint.directory = dir.str();

  ft::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.fault_schedule = three_faults(1, last / 2 + 1, last);

  std::vector<typename Program::value_type> recovered;
  const ft::SupervisedOutcome out = ft::supervise(
      g, program, version, supervised, policy, nullptr, &recovered);

  ASSERT_TRUE(out.ok()) << "supervisor gave up: " << out.error->what();
  EXPECT_EQ(out.attempts, 4u) << "a scheduled fault failed to trip";
  EXPECT_EQ(out.resumed_from_snapshot, 3u)
      << "a retry restarted from scratch despite available snapshots";
  EXPECT_EQ(out.result.supersteps, clean_result.supersteps);

  ASSERT_EQ(recovered.size(), clean.size());
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(recovered[s], clean[s])
        << "value diverged at slot " << s << " (id " << g.id_of(s) << ")";
  }
}

TEST(Supervisor, ThreeFaultHashminBitIdentical) {
  const CsrGraph g = make_graph(graph::grid_2d(12, 12));
  for (const ft::CheckpointMode mode : {ft::CheckpointMode::kHeavyweight,
                                        ft::CheckpointMode::kLightweight}) {
    expect_supervised_equivalence(
        g, apps::Hashmin{}, VersionId{CombinerKind::kSpinlockPush, true},
        mode, 4, "hashmin");
    expect_supervised_equivalence(g, apps::Hashmin{},
                                  VersionId{CombinerKind::kPull, false},
                                  mode, 4, "hashmin");
  }
}

TEST(Supervisor, ThreeFaultSsspBitIdentical) {
  const CsrGraph g =
      make_graph(graph::grid_2d(10, 10, {.max_weight = 9, .seed = 3}));
  for (const ft::CheckpointMode mode : {ft::CheckpointMode::kHeavyweight,
                                        ft::CheckpointMode::kLightweight}) {
    expect_supervised_equivalence(
        g, apps::Sssp{}, VersionId{CombinerKind::kSpinlockPush, true}, mode,
        4, "sssp");
    expect_supervised_equivalence(g, apps::Sssp{},
                                  VersionId{CombinerKind::kMutexPush, false},
                                  mode, 4, "sssp");
  }
}

TEST(Supervisor, ThreeFaultPageRankBitIdentical) {
  const CsrGraph g = make_graph(graph::rmat(8, 6, {.seed = 11}));
  const apps::PageRank program{.rounds = 10};
  // Push combiner: exact only single-threaded (see header comment).
  expect_supervised_equivalence(
      g, program, VersionId{CombinerKind::kSpinlockPush, false},
      ft::CheckpointMode::kHeavyweight, 1, "pagerank_push");
  // Pull gathers in fixed in-neighbour order: exact at any thread count.
  expect_supervised_equivalence(g, program,
                                VersionId{CombinerKind::kPull, false},
                                ft::CheckpointMode::kHeavyweight, 4,
                                "pagerank_pull");
}

TEST(Supervisor, ExhaustedAttemptBudgetReportsLastFault) {
  const CsrGraph g = make_graph(graph::grid_2d(8, 8));
  const TempDir dir("exhausted");
  EngineOptions options;
  options.threads = 2;
  options.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  options.checkpoint.every = 1;
  options.checkpoint.directory = dir.str();

  ft::RetryPolicy policy;
  policy.max_attempts = 2;  // three faults scheduled, budget for two
  policy.fault_schedule = three_faults(1, 2, 3);

  const ft::SupervisedOutcome out = ft::supervise(
      g, apps::Hashmin{}, VersionId{CombinerKind::kSpinlockPush, false},
      options, policy);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_EQ(out.error->kind(), RunErrorKind::kInjectedFault);
  EXPECT_EQ(out.error->superstep(), 2u) << "last failure should be reported";
}

TEST(Supervisor, UserExceptionNotRetriedByDefault) {
  const CsrGraph g = make_graph(graph::grid_2d(6, 6));
  ft::RetryPolicy policy;
  policy.max_attempts = 5;
  const ft::SupervisedOutcome out = ft::supervise(
      g, AlwaysThrows{}, VersionId{CombinerKind::kSpinlockPush, false},
      EngineOptions{.threads = 2}, policy);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.attempts, 1u) << "deterministic failures must not be retried";
  EXPECT_EQ(out.error->kind(), RunErrorKind::kUserException);
}

TEST(Supervisor, RetriesFromScratchWithoutCheckpointDirectory) {
  const CsrGraph g = make_graph(graph::grid_2d(8, 8));
  ft::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.fault_schedule = {
      ft::FaultPlan{.superstep = 2, .after_compute_calls = 0}};

  std::vector<graph::vid_t> recovered;
  const ft::SupervisedOutcome out = ft::supervise(
      g, apps::Hashmin{}, VersionId{CombinerKind::kSpinlockPush, true},
      EngineOptions{.threads = 4}, policy, nullptr, &recovered);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_EQ(out.resumed_from_snapshot, 0u);

  std::vector<graph::vid_t> clean;
  (void)run_version(g, apps::Hashmin{},
                    VersionId{CombinerKind::kSpinlockPush, true},
                    EngineOptions{.threads = 4}, nullptr, &clean);
  EXPECT_EQ(recovered, clean);
}

TEST(Supervisor, CallerFaultPlanHonouredOnFirstAttemptOnly) {
  // An armed options.fault with an empty schedule must fire once, then be
  // disarmed for retries — otherwise the supervisor could never win.
  const CsrGraph g = make_graph(graph::grid_2d(8, 8));
  const TempDir dir("fixed_plan");
  EngineOptions options;
  options.threads = 2;
  options.fault = ft::FaultPlan{.superstep = 1, .after_compute_calls = 0};
  options.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  options.checkpoint.every = 1;
  options.checkpoint.directory = dir.str();

  ft::RetryPolicy policy;
  policy.max_attempts = 3;

  std::vector<graph::vid_t> recovered;
  const ft::SupervisedOutcome out = ft::supervise(
      g, apps::Hashmin{}, VersionId{CombinerKind::kSpinlockPush, false},
      options, policy, nullptr, &recovered);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_EQ(out.resumed_from_snapshot, 1u);

  std::vector<graph::vid_t> clean;
  (void)run_version(g, apps::Hashmin{},
                    VersionId{CombinerKind::kSpinlockPush, false},
                    EngineOptions{.threads = 2}, nullptr, &clean);
  EXPECT_EQ(recovered, clean);
}

TEST(Supervisor, BackoffAccumulatesExponentially) {
  const CsrGraph g = make_graph(graph::grid_2d(6, 6));
  ft::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_initial_seconds = 0.01;
  policy.backoff_multiplier = 2.0;
  policy.fault_schedule = {
      ft::FaultPlan{.superstep = 1, .after_compute_calls = 0},
      ft::FaultPlan{.superstep = 1, .after_compute_calls = 0}};

  const ft::SupervisedOutcome out = ft::supervise(
      g, apps::Hashmin{}, VersionId{CombinerKind::kSpinlockPush, false},
      EngineOptions{.threads = 2}, policy);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.attempts, 3u);
  // 10 ms before the first retry, 20 ms before the second.
  EXPECT_GE(out.backoff_seconds, 0.029);
  EXPECT_LT(out.backoff_seconds, 0.031);
}

}  // namespace
}  // namespace ipregel
