// Unit tests for CsrGraph, including the paper's three addressing modes
// (section 5) and the minimal-internals build options (sections 3.2/6.2).

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "runtime/memory_tracker.hpp"

namespace {

using ipregel::graph::AddressingMode;
using ipregel::graph::CsrBuildOptions;
using ipregel::graph::CsrGraph;
using ipregel::graph::EdgeList;
using ipregel::graph::vid_t;

EdgeList diamond() {
  // 0 -> {1, 2}, 1 -> 3, 2 -> 3, 3 -> 0
  EdgeList e;
  e.add(0, 1);
  e.add(0, 2);
  e.add(1, 3);
  e.add(2, 3);
  e.add(3, 0);
  return e;
}

std::vector<vid_t> sorted(std::span<const vid_t> s) {
  std::vector<vid_t> v(s.begin(), s.end());
  std::sort(v.begin(), v.end());
  return v;
}

TEST(CsrGraph, OutAdjacencyIsExact) {
  const CsrGraph g = CsrGraph::build(diamond());
  ASSERT_EQ(g.num_vertices(), 4u);
  ASSERT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(sorted(g.out_neighbours(0)), (std::vector<vid_t>{1, 2}));
  EXPECT_EQ(sorted(g.out_neighbours(1)), (std::vector<vid_t>{3}));
  EXPECT_EQ(sorted(g.out_neighbours(2)), (std::vector<vid_t>{3}));
  EXPECT_EQ(sorted(g.out_neighbours(3)), (std::vector<vid_t>{0}));
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 5.0 / 4.0);
}

TEST(CsrGraph, InAdjacencyOnRequestOnly) {
  const CsrGraph no_in = CsrGraph::build(diamond());
  EXPECT_FALSE(no_in.has_in_edges());

  const CsrGraph with_in =
      CsrGraph::build(diamond(), {.build_in_edges = true});
  ASSERT_TRUE(with_in.has_in_edges());
  EXPECT_EQ(sorted(with_in.in_neighbours(3)), (std::vector<vid_t>{1, 2}));
  EXPECT_EQ(sorted(with_in.in_neighbours(0)), (std::vector<vid_t>{3}));
  EXPECT_EQ(with_in.in_degree(3), 2u);
}

TEST(CsrGraph, DirectMappingRequiresZeroBase) {
  EdgeList shifted = diamond();
  ipregel::graph::shift_ids(shifted, 5);
  EXPECT_THROW(
      (void)CsrGraph::build(shifted,
                            {.addressing = AddressingMode::kDirect}),
      std::invalid_argument);
}

TEST(CsrGraph, OffsetMappingSubtractsTheBase) {
  EdgeList shifted = diamond();
  ipregel::graph::shift_ids(shifted, 100);
  const CsrGraph g =
      CsrGraph::build(shifted, {.addressing = AddressingMode::kOffset});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_slots(), 4u) << "offset mapping wastes no slots";
  EXPECT_EQ(g.id_offset(), 100u);
  EXPECT_EQ(g.first_slot(), 0u);
  EXPECT_EQ(g.slot_of(103), 3u);
  EXPECT_EQ(g.id_of(3), 103u);
  EXPECT_EQ(sorted(g.out_neighbours(g.slot_of(100))),
            (std::vector<vid_t>{101, 102}));
}

TEST(CsrGraph, DesolateMappingWastesLeadingSlots) {
  // The paper's "desolate memory": slot == id even for a base > 0, buying
  // subtraction-free addressing for a few unused elements.
  EdgeList shifted = diamond();
  ipregel::graph::shift_ids(shifted, 3);
  const CsrGraph g =
      CsrGraph::build(shifted, {.addressing = AddressingMode::kDesolate});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_slots(), 7u) << "3 wasted slots + 4 vertices";
  EXPECT_EQ(g.first_slot(), 3u);
  EXPECT_EQ(g.id_offset(), 0u) << "no subtraction";
  EXPECT_EQ(g.slot_of(5), 5u);
  for (std::size_t s = 0; s < g.first_slot(); ++s) {
    EXPECT_EQ(g.out_degree(s), 0u) << "wasted slots must look empty";
  }
  EXPECT_EQ(sorted(g.out_neighbours(3)), (std::vector<vid_t>{4, 5}));
}

TEST(CsrGraph, AddressingModesAgreeOnAdjacency) {
  EdgeList shifted = diamond();
  ipregel::graph::shift_ids(shifted, 1);
  const CsrGraph offset =
      CsrGraph::build(shifted, {.addressing = AddressingMode::kOffset});
  const CsrGraph desolate =
      CsrGraph::build(shifted, {.addressing = AddressingMode::kDesolate});
  for (vid_t id = 1; id <= 4; ++id) {
    EXPECT_EQ(sorted(offset.out_neighbours(offset.slot_of(id))),
              sorted(desolate.out_neighbours(desolate.slot_of(id))))
        << "id " << id;
  }
}

TEST(CsrGraph, WeightsStayAlignedWithTargets) {
  EdgeList e;
  e.add(0, 1, 10);
  e.add(0, 2, 20);
  e.add(1, 2, 30);
  const CsrGraph g = CsrGraph::build(e);
  ASSERT_TRUE(g.has_weights());
  const auto n = g.out_neighbours(0);
  const auto w = g.out_weights(0);
  ASSERT_EQ(n.size(), 2u);
  for (std::size_t i = 0; i < n.size(); ++i) {
    EXPECT_EQ(w[i], n[i] == 1 ? 10u : 20u);
  }
}

TEST(CsrGraph, WeightsCanBeDropped) {
  EdgeList e;
  e.add(0, 1, 10);
  const CsrGraph g = CsrGraph::build(e, {.keep_weights = false});
  EXPECT_FALSE(g.has_weights());
}

TEST(CsrGraph, MultiEdgesArePreserved) {
  EdgeList e;
  e.add(0, 1);
  e.add(0, 1);
  e.add(1, 0);
  const CsrGraph g = CsrGraph::build(e);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
}

TEST(CsrGraph, SelfLoopsAreOrdinaryEdges) {
  EdgeList e;
  e.add(0, 0);
  e.add(0, 1);
  const CsrGraph g = CsrGraph::build(e);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(sorted(g.out_neighbours(0)), (std::vector<vid_t>{0, 1}));
}

TEST(CsrGraph, EmptyGraphIsWellFormed) {
  const CsrGraph g = CsrGraph::build(EdgeList{});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_slots(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(CsrGraph, IsolatedVerticesExistInTheIdSpace) {
  // Section 3.3: ids must be consecutive; ids with no edges still count.
  EdgeList e;
  e.add(0, 5);  // 1..4 have no edges but are part of the dense space
  const CsrGraph g = CsrGraph::build(e);
  EXPECT_EQ(g.num_vertices(), 6u);
  for (vid_t id = 1; id <= 4; ++id) {
    EXPECT_EQ(g.out_degree(g.slot_of(id)), 0u);
  }
}

TEST(CsrGraph, TopologyBytesAreTracked) {
  auto& tracker = ipregel::runtime::MemoryTracker::instance();
  tracker.reset();
  {
    const CsrGraph g = CsrGraph::build(diamond(), {.build_in_edges = true});
    EXPECT_EQ(tracker.bytes(ipregel::runtime::MemCategory::kGraphTopology),
              g.topology_bytes());
    EXPECT_GT(g.topology_bytes(), 0u);
  }
  EXPECT_EQ(tracker.bytes(ipregel::runtime::MemCategory::kGraphTopology), 0u)
      << "destroying the graph must release its accounting";
}

}  // namespace
