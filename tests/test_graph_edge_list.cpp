// Unit tests for graph::EdgeList, the loader/generator interchange format.

#include <gtest/gtest.h>

#include "graph/edge_list.hpp"

namespace {

using ipregel::graph::Edge;
using ipregel::graph::EdgeList;

TEST(EdgeList, StartsEmpty) {
  EdgeList e;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.size(), 0u);
  EXPECT_FALSE(e.weighted());
}

TEST(EdgeList, AddUnweighted) {
  EdgeList e;
  e.add(1, 2);
  e.add(2, 3);
  EXPECT_EQ(e.size(), 2u);
  EXPECT_FALSE(e.weighted());
  EXPECT_EQ(e.edges()[0], (Edge{1, 2}));
  EXPECT_EQ(e.edges()[1], (Edge{2, 3}));
}

TEST(EdgeList, AddWeighted) {
  EdgeList e;
  e.add(1, 2, 7);
  EXPECT_TRUE(e.weighted());
  EXPECT_EQ(e.weights()[0], 7u);
}

TEST(EdgeList, LateWeightBackfillsUnitWeights) {
  // Mixing unweighted then weighted edges must keep the arrays aligned:
  // earlier edges get weight 1 (the paper's SSSP unit-weight assumption).
  EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 3, 9);
  ASSERT_TRUE(e.weighted());
  ASSERT_EQ(e.weights().size(), e.size());
  EXPECT_EQ(e.weights()[0], 1u);
  EXPECT_EQ(e.weights()[1], 1u);
  EXPECT_EQ(e.weights()[2], 9u);
}

TEST(EdgeList, SymmetrizeDoublesAndMirrors) {
  EdgeList e;
  e.add(0, 1);
  e.add(5, 3);
  e.symmetrize();
  ASSERT_EQ(e.size(), 4u);
  EXPECT_EQ(e.edges()[2], (Edge{1, 0}));
  EXPECT_EQ(e.edges()[3], (Edge{3, 5}));
}

TEST(EdgeList, SymmetrizeCarriesWeights) {
  EdgeList e;
  e.add(0, 1, 4);
  e.add(1, 2, 6);
  e.symmetrize();
  ASSERT_EQ(e.weights().size(), 4u);
  EXPECT_EQ(e.weights()[2], 4u);
  EXPECT_EQ(e.weights()[3], 6u);
}

TEST(EdgeList, IdRangeSpansBothEndpoints) {
  EdgeList e;
  e.add(10, 3);
  e.add(7, 25);
  const auto [min_id, max_id] = e.id_range();
  EXPECT_EQ(min_id, 3u);
  EXPECT_EQ(max_id, 25u);
}

TEST(EdgeList, IdRangeOfEmptyListIsZero) {
  const EdgeList e;
  const auto [min_id, max_id] = e.id_range();
  EXPECT_EQ(min_id, 0u);
  EXPECT_EQ(max_id, 0u);
}

TEST(EdgeList, ConstructFromVectors) {
  std::vector<Edge> edges{{0, 1}, {1, 0}};
  EdgeList e(std::move(edges));
  EXPECT_EQ(e.size(), 2u);
  std::vector<Edge> edges2{{0, 1}};
  std::vector<ipregel::graph::weight_t> w{5};
  EdgeList e2(std::move(edges2), std::move(w));
  EXPECT_TRUE(e2.weighted());
}

}  // namespace
