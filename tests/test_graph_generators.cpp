// Unit and property tests for the synthetic graph generators backing the
// benchmark workloads (DESIGN.md "Substitutions").

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"

namespace {

using namespace ipregel::graph;  // NOLINT(google-build-using-namespace)

TEST(Generators, RmatProducesRequestedCounts) {
  const EdgeList e = rmat(10, 8, {.seed = 1});
  EXPECT_EQ(e.size(), std::size_t{8} << 10);
  for (const Edge& edge : e.edges()) {
    EXPECT_LT(edge.src, 1u << 10);
    EXPECT_LT(edge.dst, 1u << 10);
  }
}

TEST(Generators, RmatIsDeterministicPerSeed) {
  const EdgeList a = rmat(8, 4, {.seed = 7});
  const EdgeList b = rmat(8, 4, {.seed = 7});
  const EdgeList c = rmat(8, 4, {.seed = 8});
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_NE(a.edges(), c.edges());
}

TEST(Generators, RmatIsSkewed) {
  // The whole point of the Wikipedia stand-in: a heavy-tailed out-degree
  // distribution. The maximum degree must dwarf the average.
  const CsrGraph g = CsrGraph::build(rmat(12, 8, {.seed = 3}));
  const GraphStats s = compute_stats(g);
  EXPECT_GT(static_cast<double>(s.max_out_degree),
            10.0 * s.average_out_degree);
}

TEST(Generators, RmatRejectsOversizedScale) {
  EXPECT_THROW((void)rmat(32, 1), std::invalid_argument);
}

TEST(Generators, UniformRandomExactEdgeCountNoSelfLoops) {
  const EdgeList e = uniform_random(1000, 50'000, 5);
  EXPECT_EQ(e.size(), 50'000u);
  for (const Edge& edge : e.edges()) {
    EXPECT_NE(edge.src, edge.dst) << "self-loops are excluded";
    EXPECT_LT(edge.src, 1000u);
    EXPECT_LT(edge.dst, 1000u);
  }
}

TEST(Generators, UniformRandomRejectsDegenerateVertexCount) {
  EXPECT_THROW((void)uniform_random(1, 10, 1), std::invalid_argument);
  EXPECT_NO_THROW((void)uniform_random(1, 0, 1));
}

TEST(Generators, GridIsSymmetricAndNearRegular) {
  const EdgeList e = grid_2d(10, 15);
  // Full lattice: 10*14 horizontal + 9*15 vertical links, both directions.
  EXPECT_EQ(e.size(), 2u * (10 * 14 + 9 * 15));
  const CsrGraph g = CsrGraph::build(e);
  EXPECT_TRUE(is_symmetric(g));
  const GraphStats s = compute_stats(g);
  EXPECT_LE(s.max_out_degree, 4u) << "a lattice vertex has <= 4 neighbours";
  EXPECT_GE(s.average_out_degree, 3.0);
}

TEST(Generators, GridRemovalKeepsSymmetryAndReducesEdges) {
  const EdgeList full = grid_2d(30, 30);
  const EdgeList pruned = grid_2d(30, 30, {.removal_fraction = 0.2, .seed = 9});
  EXPECT_LT(pruned.size(), full.size());
  // Roughly 20% of the undirected links should be gone.
  const double kept = static_cast<double>(pruned.size()) /
                      static_cast<double>(full.size());
  EXPECT_NEAR(kept, 0.8, 0.05);
  EXPECT_TRUE(is_symmetric(CsrGraph::build(pruned)))
      << "links must be removed as undirected pairs";
}

TEST(Generators, GridWeightsStayInRange) {
  const EdgeList e = grid_2d(5, 5, {.max_weight = 10, .seed = 2});
  ASSERT_TRUE(e.weighted());
  for (const auto w : e.weights()) {
    EXPECT_GE(w, 1u);
    EXPECT_LE(w, 10u);
  }
}

TEST(Generators, GridWeightsAreSymmetric) {
  // The reverse direction of a link must carry the same weight, or
  // shortest paths on "undirected" roads would be direction-dependent.
  const EdgeList e = grid_2d(6, 7, {.max_weight = 9, .seed = 4});
  std::map<std::pair<vid_t, vid_t>, weight_t> weight_of;
  for (std::size_t i = 0; i < e.size(); ++i) {
    weight_of[{e.edges()[i].src, e.edges()[i].dst}] = e.weights()[i];
  }
  for (const auto& [key, w] : weight_of) {
    const auto reverse = weight_of.find({key.second, key.first});
    ASSERT_NE(reverse, weight_of.end());
    EXPECT_EQ(reverse->second, w);
  }
}

TEST(Generators, GridEmptyDimensionsYieldEmptyGraph) {
  EXPECT_TRUE(grid_2d(0, 10).empty());
  EXPECT_TRUE(grid_2d(10, 0).empty());
}

TEST(Generators, PathCycleStarCompleteTreeCounts) {
  EXPECT_EQ(path_graph(5).size(), 4u);
  EXPECT_EQ(path_graph(0).size(), 0u);
  EXPECT_EQ(path_graph(1).size(), 0u);
  EXPECT_EQ(cycle_graph(5).size(), 5u);
  EXPECT_EQ(cycle_graph(0).size(), 0u);
  EXPECT_EQ(star_graph(5).size(), 4u);
  EXPECT_EQ(star_graph(5, /*bidirectional=*/true).size(), 8u);
  EXPECT_EQ(complete_graph(4).size(), 12u);  // n*(n-1)
  EXPECT_EQ(binary_tree(3).size(), 2u * 6);  // 7 nodes, 6 links, both dirs
  EXPECT_EQ(binary_tree(3, /*bidirectional=*/false).size(), 6u);
  EXPECT_EQ(binary_tree(0).size(), 0u);
}

TEST(Generators, CycleIsSingleLoop) {
  const EdgeList e = cycle_graph(4);
  const CsrGraph g = CsrGraph::build(e);
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    ASSERT_EQ(g.out_degree(s), 1u);
    EXPECT_EQ(g.out_neighbours(s)[0], (g.id_of(s) + 1) % 4);
  }
}

TEST(Generators, ShiftIdsMovesTheWholeIdSpace) {
  EdgeList e = path_graph(4);
  shift_ids(e, 10);
  const auto [min_id, max_id] = e.id_range();
  EXPECT_EQ(min_id, 10u);
  EXPECT_EQ(max_id, 13u);
}

}  // namespace
