// Unit tests for the graph loaders/writers: KONECT-style edge lists,
// DIMACS '.gr' road graphs, and the binary cache. Malformed input must
// fail loudly with the offending line.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/io.hpp"

namespace {

using namespace ipregel::graph;  // NOLINT(google-build-using-namespace)

/// Writes `content` to a unique temp file and returns the path.
class TempFile {
 public:
  explicit TempFile(const std::string& content) {
    static int counter = 0;
    path_ = ::testing::TempDir() + "ipregel_io_test_" +
            std::to_string(counter++) + ".txt";
    std::ofstream out(path_);
    out << content;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(GraphIo, LoadsPlainEdgeList) {
  const TempFile f("1 2\n2 3\n3 1\n");
  const EdgeList e = load_edge_list_text(f.path());
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e.edges()[0], (Edge{1, 2}));
  EXPECT_FALSE(e.weighted());
}

TEST(GraphIo, SkipsKonectAndHashComments) {
  const TempFile f("% KONECT header\n# SNAP header\n\n1 2\n% mid comment\n2 3\n");
  const EdgeList e = load_edge_list_text(f.path());
  EXPECT_EQ(e.size(), 2u);
}

TEST(GraphIo, ReadsThirdColumnAsWeight) {
  const TempFile f("1 2 5\n2 3 7\n");
  const EdgeList e = load_edge_list_text(f.path());
  ASSERT_TRUE(e.weighted());
  EXPECT_EQ(e.weights()[0], 5u);
  EXPECT_EQ(e.weights()[1], 7u);
}

TEST(GraphIo, WeightReadingCanBeDisabled) {
  const TempFile f("1 2 5\n");
  const EdgeList e =
      load_edge_list_text(f.path(), {.read_weights = false});
  EXPECT_FALSE(e.weighted());
}

TEST(GraphIo, HandlesTabsAndCarriageReturns) {
  const TempFile f("1\t2\r\n3\t4\r\n");
  const EdgeList e = load_edge_list_text(f.path());
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e.edges()[1], (Edge{3, 4}));
}

TEST(GraphIo, RejectsSingleEndpointLineWithLineNumber) {
  const TempFile f("1 2\n3\n");
  try {
    (void)load_edge_list_text(f.path());
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find(":2:"), std::string::npos)
        << "error must name line 2: " << err.what();
  }
}

/// Expects `fn` to throw a std::runtime_error naming `path:line` and
/// mentioning the value range — the overflow-rejection contract.
template <typename Fn>
void expect_overflow_error(Fn&& fn, const std::string& path,
                           std::size_t line_no) {
  try {
    std::forward<Fn>(fn)();
    FAIL() << "expected overflow to be rejected";
  } catch (const std::runtime_error& err) {
    const std::string what = err.what();
    const std::string anchor = path + ":" + std::to_string(line_no) + ":";
    EXPECT_NE(what.find(anchor), std::string::npos)
        << "error must carry '" << anchor << "': " << what;
    EXPECT_NE(what.find("range"), std::string::npos)
        << "error must say the value is out of range: " << what;
  }
}

TEST(GraphIo, RejectsVertexIdOverflowInsteadOfWrapping) {
  // 2^32 would silently wrap to vertex 0 if from_chars' out_of_range were
  // treated like success (or lumped in with "malformed").
  const TempFile f("1 2\n4294967296 1\n");
  expect_overflow_error([&] { (void)load_edge_list_text(f.path()); },
                        f.path(), 2);
}

TEST(GraphIo, RejectsWeightOverflow) {
  const TempFile f("1 2 99999999999999999999\n");
  expect_overflow_error([&] { (void)load_edge_list_text(f.path()); },
                        f.path(), 1);
}

TEST(GraphIo, MaxVertexIdStillLoads) {
  // The boundary itself is valid: rejection must start at 2^32, not at
  // some conservative smaller cut-off.
  const TempFile f("4294967295 0\n");
  const EdgeList e = load_edge_list_text(f.path());
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e.edges()[0].src, 4294967295u);
}

TEST(GraphIo, DimacsRejectsArcEndpointOverflow) {
  const TempFile f("p sp 3 1\na 4294967296 2 5\n");
  expect_overflow_error([&] { (void)load_dimacs_gr(f.path()); }, f.path(),
                        2);
}

TEST(GraphIo, DimacsRejectsHeaderVertexCountBeyondIdSpace) {
  // A 64-bit count survives parsing but cannot be addressed by 32-bit
  // vertex ids; the header must be rejected up front, not discovered as a
  // wrapped id thousands of arcs later.
  const TempFile f("p sp 8589934592 1\na 1 2 5\n");
  try {
    (void)load_dimacs_gr(f.path());
    FAIL() << "expected the header to be rejected";
  } catch (const std::runtime_error& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find(":1:"), std::string::npos) << what;
    EXPECT_NE(what.find("8589934592"), std::string::npos) << what;
  }
}

TEST(GraphIo, RejectsNonNumericTokens) {
  const TempFile f("1 banana\n");
  EXPECT_THROW((void)load_edge_list_text(f.path()), std::runtime_error);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW((void)load_edge_list_text("/nonexistent/graph.txt"),
               std::runtime_error);
}

TEST(GraphIo, LoadsDimacsGr) {
  const TempFile f(
      "c USA-style road file\n"
      "p sp 4 5\n"
      "a 1 2 10\n"
      "a 2 1 10\n"
      "a 2 3 4\n"
      "a 3 4 1\n"
      "a 4 1 2\n");
  const EdgeList e = load_dimacs_gr(f.path());
  ASSERT_EQ(e.size(), 5u);
  ASSERT_TRUE(e.weighted());
  EXPECT_EQ(e.edges()[2], (Edge{2, 3}));
  EXPECT_EQ(e.weights()[2], 4u);
}

TEST(GraphIo, DimacsRejectsArcCountMismatch) {
  const TempFile f("p sp 2 3\na 1 2 1\n");
  EXPECT_THROW((void)load_dimacs_gr(f.path()), std::runtime_error);
}

TEST(GraphIo, DimacsRejectsMissingHeader) {
  const TempFile f("a 1 2 1\n");
  EXPECT_THROW((void)load_dimacs_gr(f.path()), std::runtime_error);
}

TEST(GraphIo, DimacsRejectsUnknownRecord) {
  const TempFile f("p sp 2 1\nz 1 2\na 1 2 1\n");
  EXPECT_THROW((void)load_dimacs_gr(f.path()), std::runtime_error);
}

TEST(GraphIo, TextRoundTripPreservesEdgesAndWeights) {
  EdgeList original;
  original.add(1, 2, 3);
  original.add(4, 5, 6);
  const std::string path = ::testing::TempDir() + "ipregel_roundtrip.txt";
  save_edge_list_text(original, path);
  const EdgeList loaded = load_edge_list_text(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.edges(), original.edges());
  EXPECT_EQ(loaded.weights(), original.weights());
}

TEST(GraphIo, BinaryRoundTripUnweighted) {
  EdgeList original;
  for (vid_t i = 0; i < 1000; ++i) {
    original.add(i, (i * 7 + 1) % 1000);
  }
  const std::string path = ::testing::TempDir() + "ipregel_roundtrip.bin";
  save_edge_list_binary(original, path);
  const EdgeList loaded = load_edge_list_binary(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.edges(), original.edges());
  EXPECT_FALSE(loaded.weighted());
}

TEST(GraphIo, BinaryRoundTripWeighted) {
  EdgeList original;
  original.add(0, 1, 9);
  original.add(1, 2, 8);
  const std::string path = ::testing::TempDir() + "ipregel_roundtrip_w.bin";
  save_edge_list_binary(original, path);
  const EdgeList loaded = load_edge_list_binary(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.weights(), original.weights());
}

TEST(GraphIo, BinaryRejectsWrongMagic) {
  const TempFile f("this is not a binary edge list at all, not even close");
  EXPECT_THROW((void)load_edge_list_binary(f.path()), std::runtime_error);
}

TEST(GraphIo, BinaryRejectsTruncatedFile) {
  EdgeList original;
  original.add(0, 1);
  original.add(1, 2);
  const std::string path = ::testing::TempDir() + "ipregel_trunc.bin";
  save_edge_list_binary(original, path);
  // Chop the last 8 bytes off.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(),
            static_cast<std::streamsize>(bytes.size() - 8));
  out.close();
  EXPECT_THROW((void)load_edge_list_binary(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
