// Tests for the id normaliser that makes arbitrary (sparse) id spaces
// eligible for the paper's consecutive-id requirement (section 3.3).

#include <gtest/gtest.h>

#include "apps/hashmin.hpp"
#include "apps/serial_reference.hpp"
#include "graph/csr.hpp"
#include "graph/normalize.hpp"
#include "test_util.hpp"

namespace {

using namespace ipregel::graph;  // NOLINT(google-build-using-namespace)

TEST(Normalize, AssignsDenseIdsInFirstAppearanceOrder) {
  EdgeList e;
  e.add(1000, 7);
  e.add(7, 500'000);
  e.add(1000, 500'000);
  const IdMapping mapping = normalize_ids(e);
  ASSERT_EQ(mapping.size(), 3u);
  EXPECT_EQ(mapping.to_original[0], 1000u);
  EXPECT_EQ(mapping.to_original[1], 7u);
  EXPECT_EQ(mapping.to_original[2], 500'000u);
  EXPECT_EQ(e.edges()[0], (Edge{0, 1}));
  EXPECT_EQ(e.edges()[1], (Edge{1, 2}));
  EXPECT_EQ(e.edges()[2], (Edge{0, 2}));
}

TEST(Normalize, MappingTablesAreInverses) {
  EdgeList e;
  e.add(99, 42);
  e.add(42, 1'000'000);
  const IdMapping mapping = normalize_ids(e);
  for (vid_t dense = 0; dense < mapping.size(); ++dense) {
    EXPECT_EQ(mapping.to_dense.at(mapping.to_original[dense]), dense);
  }
}

TEST(Normalize, AlreadyDenseIdsAreStable) {
  EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  const auto original = e.edges();
  const IdMapping mapping = normalize_ids(e);
  EXPECT_EQ(e.edges(), original)
      << "first-appearance order over 0,1,2 is the identity";
  EXPECT_EQ(mapping.size(), 3u);
}

TEST(Normalize, EmptyListYieldsEmptyMapping) {
  EdgeList e;
  EXPECT_EQ(normalize_ids(e).size(), 0u);
}

TEST(Normalize, NormalisedGraphRunsUnderDirectMapping) {
  // End-to-end: a wildly sparse id space becomes a runnable direct-mapped
  // graph, and results translate back through the mapping.
  EdgeList e;
  e.add(1'000'000, 5);
  e.add(5, 1'000'000);
  e.add(5, 777'777);
  e.add(777'777, 5);
  const IdMapping mapping = normalize_ids(e);
  const CsrGraph g =
      CsrGraph::build(e, {.addressing = AddressingMode::kDirect});
  ipregel::Engine<ipregel::apps::Hashmin, ipregel::CombinerKind::kSpinlockPush,
                  true>
      engine(g);
  (void)engine.run();
  // All three original vertices are one component; its label is the dense
  // id 0, whose original id is 1,000,000 (first appearance).
  for (vid_t dense = 0; dense < 3; ++dense) {
    EXPECT_EQ(engine.value_of(dense), 0u);
  }
  EXPECT_EQ(mapping.to_original[engine.value_of(0)], 1'000'000u);
}

}  // namespace
