// The restartable R-MAT stream: exactly rmat()'s edges in rmat()'s order,
// replayable pass after pass — the beyond-RAM input path's generator.

#include <gtest/gtest.h>

#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_stream.hpp"
#include "graph/generators.hpp"
#include "io/faulty_vfs.hpp"
#include "store/store_writer.hpp"

namespace ipregel::graph {
namespace {

std::vector<Edge> drain(EdgeSource& source) {
  std::vector<Edge> out;
  Edge e;
  while (source.next(e)) {
    out.push_back(e);
  }
  return out;
}

TEST(RmatStream, MatchesRmatExactly) {
  for (const bool scramble : {true, false}) {
    SCOPED_TRACE(scramble ? "scrambled" : "unscrambled");
    const RmatOptions options{.seed = 42, .scramble_ids = scramble};
    const EdgeList list = rmat(7, 8, options);
    RmatStream stream(7, 8, options);
    ASSERT_EQ(stream.num_edges(), list.size());
    const std::vector<Edge> streamed = drain(stream);
    ASSERT_EQ(streamed.size(), list.size());
    for (std::size_t i = 0; i < list.size(); ++i) {
      ASSERT_EQ(streamed[i].src, list.edges()[i].src) << "edge " << i;
      ASSERT_EQ(streamed[i].dst, list.edges()[i].dst) << "edge " << i;
    }
  }
}

TEST(RmatStream, RestartReplaysTheIdenticalSequence) {
  RmatStream stream(6, 6, {.seed = 9});
  const std::vector<Edge> first = drain(stream);
  ASSERT_EQ(first.size(), stream.num_edges());
  // Exhausted: next() keeps returning false.
  Edge e;
  EXPECT_FALSE(stream.next(e));
  stream.restart();
  const std::vector<Edge> second = drain(stream);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(second[i].src, first[i].src) << "edge " << i;
    ASSERT_EQ(second[i].dst, first[i].dst) << "edge " << i;
  }
  // Restart mid-pass too: consuming a prefix must not perturb the replay.
  stream.restart();
  for (int i = 0; i < 17; ++i) {
    ASSERT_TRUE(stream.next(e));
  }
  stream.restart();
  const std::vector<Edge> third = drain(stream);
  ASSERT_EQ(third.size(), first.size());
  EXPECT_EQ(third.back().src, first.back().src);
  EXPECT_EQ(third.back().dst, first.back().dst);
}

TEST(RmatStream, RejectsOverflowingScale) {
  EXPECT_THROW(RmatStream(32, 1, {}), std::invalid_argument);
}

TEST(EdgeListSource, AdaptsAnEdgeListFaithfully) {
  const EdgeList list = grid_2d(4, 5, {.removal_fraction = 0.2, .seed = 3});
  EdgeListSource source(list);
  ASSERT_EQ(source.num_edges(), list.size());
  const std::vector<Edge> streamed = drain(source);
  ASSERT_EQ(streamed.size(), list.size());
  for (std::size_t i = 0; i < list.size(); ++i) {
    ASSERT_EQ(streamed[i].src, list.edges()[i].src);
    ASSERT_EQ(streamed[i].dst, list.edges()[i].dst);
  }
  source.restart();
  EXPECT_EQ(drain(source).size(), list.size());
}

TEST(RmatStream, StreamedStoreBuildMatchesInRamBuild) {
  // End to end: generator stream -> streaming store build, byte-identical
  // to materialising the edge list and CSR in memory first.
  const unsigned scale = 7;
  const unsigned ef = 4;
  const RmatOptions options{.seed = 13};
  const CsrGraph g = CsrGraph::build(
      rmat(scale, ef, options),
      {.addressing = AddressingMode::kOffset, .build_in_edges = true});
  io::FaultyVfs vfs;
  store::write_store(g, "/ram.pages", &vfs, {.page_bytes = 128});
  RmatStream stream(scale, ef, options);
  store::write_store_streaming(stream, "/gen.pages", &vfs,
                               {.page_bytes = 128,
                                .build_in_edges = true,
                                .edge_ram_budget_bytes = 2048});
  EXPECT_EQ(vfs.read_all("/ram.pages"), vfs.read_all("/gen.pages"));
}

}  // namespace
}  // namespace ipregel::graph
