// Unit tests for GraphStats and the symmetry check.

#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"

namespace {

using namespace ipregel::graph;  // NOLINT(google-build-using-namespace)

TEST(GraphStats, CountsAndDegreesOnKnownGraph) {
  EdgeList e;
  e.add(0, 1);
  e.add(0, 2);
  e.add(0, 3);
  e.add(1, 0);
  // vertex 4 exists only as an isolated member of the id space
  e.add(5, 0);
  const CsrGraph g = CsrGraph::build(e, {.build_in_edges = true});
  const GraphStats s = compute_stats(g);
  EXPECT_EQ(s.num_vertices, 6u);
  EXPECT_EQ(s.num_edges, 5u);
  EXPECT_EQ(s.max_out_degree, 3u);
  EXPECT_EQ(s.max_in_degree, 2u);  // vertex 0 <- {1, 5}
  EXPECT_EQ(s.isolated_vertices, 1u);
  EXPECT_DOUBLE_EQ(s.average_out_degree, 5.0 / 6.0);
}

TEST(GraphStats, HistogramBucketsByLog2Degree) {
  EdgeList e;
  // degrees: v0 = 1, v1 = 2, v2 = 5
  e.add(0, 1);
  e.add(1, 2);
  e.add(1, 0);
  for (vid_t t = 3; t < 8; ++t) {
    e.add(2, t % 3);
  }
  const CsrGraph g = CsrGraph::build(e);
  const GraphStats s = compute_stats(g);
  ASSERT_GE(s.out_degree_histogram.size(), 3u);
  EXPECT_EQ(s.out_degree_histogram[0], 1u);  // degree 1
  EXPECT_EQ(s.out_degree_histogram[1], 1u);  // degrees 2..3
  EXPECT_EQ(s.out_degree_histogram[2], 1u);  // degrees 4..7
}

TEST(GraphStats, SymmetryDetection) {
  EdgeList sym;
  sym.add(0, 1);
  sym.add(1, 0);
  sym.add(1, 2);
  sym.add(2, 1);
  EXPECT_TRUE(is_symmetric(CsrGraph::build(sym)));

  EdgeList asym;
  asym.add(0, 1);
  asym.add(1, 0);
  asym.add(1, 2);  // missing 2 -> 1
  EXPECT_FALSE(is_symmetric(CsrGraph::build(asym)));
}

TEST(GraphStats, SymmetrizedListAlwaysPassesSymmetry) {
  EdgeList e = rmat(8, 4, {.seed = 21});
  e.symmetrize();
  EXPECT_TRUE(is_symmetric(CsrGraph::build(e)));
}

TEST(GraphStats, ToStringMentionsTheEssentials) {
  const CsrGraph g = CsrGraph::build(path_graph(4));
  const std::string s = compute_stats(g).to_string("tiny");
  EXPECT_NE(s.find("tiny"), std::string::npos);
  EXPECT_NE(s.find("|V| = 4"), std::string::npos);
  EXPECT_NE(s.find("|E| = 3"), std::string::npos);
}

TEST(GraphStats, DesolateSlotsAreNotCountedAsVertices) {
  EdgeList e = path_graph(4);
  shift_ids(e, 10);
  const CsrGraph g =
      CsrGraph::build(e, {.addressing = AddressingMode::kDesolate});
  const GraphStats s = compute_stats(g);
  EXPECT_EQ(s.num_vertices, 4u);
  // Only the path's terminal vertex (no out-edges, in-edges not built)
  // counts as isolated; the 10 wasted desolate slots must not.
  EXPECT_EQ(s.isolated_vertices, 1u);
}

}  // namespace
