// Unit tests for the integrity subsystem's building blocks: the seeded
// FlipPlan injector and shadow sampler are deterministic (a failure log's
// seed reproduces the exact corruption), hash_bytes sees single-bit
// changes, and each detector tier catches a targeted flip with a typed,
// localised kIntegrityViolation — checksums name the section and slot
// range, the invariant audit names the law, the shadow tier names the
// slot. Plus verified recovery at the snapshot layer: a snapshot whose
// CRCs are fine but whose *content* predates-corruption is quarantined by
// the value audit instead of being resumed from.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "core/runner.hpp"
#include "ft/snapshot.hpp"
#include "ft/snapshot_dir.hpp"
#include "ft/supervisor.hpp"
#include "graph/generators.hpp"
#include "integrity/checksum.hpp"
#include "integrity/fault.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using ipregel::testing::make_graph;

class TempDir {
 public:
  explicit TempDir(const std::string& label) {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("ipregel_integ_") + info->name() + "_" + label))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] const std::string& str() const noexcept { return dir_; }

 private:
  std::string dir_;
};

// --- injector determinism ------------------------------------------------

TEST(FlipPlan, FromSeedIsDeterministic) {
  const integrity::FlipPlan a = integrity::FlipPlan::from_seed(77, 1, 9);
  const integrity::FlipPlan b = integrity::FlipPlan::from_seed(77, 1, 9);
  EXPECT_EQ(a.superstep, b.superstep);
  EXPECT_EQ(a.target, b.target);
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.bit, b.bit);
  EXPECT_TRUE(a.armed());
  EXPECT_GE(a.superstep, 1u);
  EXPECT_LE(a.superstep, 9u);
  EXPECT_EQ(a.phase, integrity::FlipPhase::kAtRest);
}

TEST(FlipPlan, FromSeedRespectsFrontierGate) {
  // Without allow_frontier no seed may produce a frontier flip.
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const auto plan = integrity::FlipPlan::from_seed(seed, 0, 5, false);
    EXPECT_NE(plan.target, integrity::FlipTarget::kFrontier)
        << "seed " << seed;
  }
}

TEST(FlipPlan, DefaultIsDisarmed) {
  const integrity::FlipPlan plan;
  EXPECT_FALSE(plan.armed());
}

TEST(ShadowSample, DeterministicUniqueInRange) {
  const auto a = integrity::shadow_sample(9, 3, 10, 100, 16);
  const auto b = integrity::shadow_sample(9, 3, 10, 100, 16);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 16u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i], 10u);
    EXPECT_LT(a[i], 110u);
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      EXPECT_NE(a[i], a[j]) << "duplicate slot in sample";
    }
  }
  // Different superstep, different sample (overwhelmingly likely).
  EXPECT_NE(a, integrity::shadow_sample(9, 4, 10, 100, 16));
}

TEST(ShadowSample, ClampsToPopulation) {
  const auto slots = integrity::shadow_sample(1, 0, 0, 4, 16);
  EXPECT_EQ(slots.size(), 4u);
  EXPECT_TRUE(integrity::shadow_sample(1, 0, 0, 0, 16).empty());
  EXPECT_TRUE(integrity::shadow_sample(1, 0, 0, 100, 0).empty());
}

TEST(HashBytes, SeesSingleBitChanges) {
  std::vector<std::uint8_t> buf(4096, 0xA5);
  const std::uint64_t h0 = integrity::hash_bytes(buf.data(), buf.size());
  EXPECT_EQ(h0, integrity::hash_bytes(buf.data(), buf.size()));
  for (const std::size_t byte : {std::size_t{0}, buf.size() / 2,
                                 buf.size() - 1}) {
    buf[byte] ^= 0x01;
    EXPECT_NE(h0, integrity::hash_bytes(buf.data(), buf.size()))
        << "flip at byte " << byte << " went unseen";
    buf[byte] ^= 0x01;
  }
  // Chaining: a different seed yields a different digest stream.
  EXPECT_NE(integrity::hash_bytes(buf.data(), buf.size(), 1),
            integrity::hash_bytes(buf.data(), buf.size(), 2));
}

// --- targeted single-tier detections ------------------------------------

/// Runs Hashmin with only the checksum tier armed and `flip` injected,
/// returning the typed outcome.
RunOutcome run_with_checksums(const CsrGraph& g,
                              const integrity::FlipPlan& flip,
                              VersionId version) {
  EngineOptions options;
  options.threads = 2;
  options.integrity.checksums = true;
  options.flip = flip;
  return run_version_checked(g, apps::Hashmin{}, version, options);
}

TEST(ChecksumTier, LocalisesValueFlipToSectionAndRange) {
  const CsrGraph g = make_graph(graph::grid_2d(8, 8));
  integrity::FlipPlan flip;
  flip.superstep = 2;
  flip.target = integrity::FlipTarget::kValues;
  flip.phase = integrity::FlipPhase::kAtRest;
  flip.index = 5;
  flip.bit = 3;
  const RunOutcome out = run_with_checksums(
      g, flip, VersionId{CombinerKind::kSpinlockPush, false});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error->kind(), RunErrorKind::kIntegrityViolation);
  EXPECT_EQ(out.error->superstep(), 2u);
  const std::string what = out.error->what();
  EXPECT_NE(what.find("section 'values'"), std::string::npos) << what;
  EXPECT_NE(what.find("slots ["), std::string::npos) << what;
}

TEST(ChecksumTier, DetectsHaltedAndFlagFlips) {
  const CsrGraph g = make_graph(graph::grid_2d(8, 8));
  for (const auto target : {integrity::FlipTarget::kHalted,
                            integrity::FlipTarget::kMessageFlags}) {
    integrity::FlipPlan flip;
    flip.superstep = 2;
    flip.target = target;
    flip.phase = integrity::FlipPhase::kAtRest;
    flip.index = 11;
    const RunOutcome out = run_with_checksums(
        g, flip, VersionId{CombinerKind::kMutexPush, false});
    ASSERT_FALSE(out.ok()) << to_string(target);
    EXPECT_EQ(out.error->kind(), RunErrorKind::kIntegrityViolation)
        << to_string(target);
  }
}

TEST(ChecksumTier, FrontierFlipDetectedUnderBypass) {
  const CsrGraph g = make_graph(graph::grid_2d(8, 8));
  integrity::FlipPlan flip;
  flip.superstep = 2;
  flip.target = integrity::FlipTarget::kFrontier;
  flip.phase = integrity::FlipPhase::kAtRest;
  flip.index = 0;
  flip.bit = 1;
  const RunOutcome out = run_with_checksums(
      g, flip, VersionId{CombinerKind::kSpinlockPush, true});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error->kind(), RunErrorKind::kIntegrityViolation);
  const std::string what = out.error->what();
  EXPECT_NE(what.find("frontier"), std::string::npos) << what;
}

TEST(ChecksumTier, DeadMailboxSlotFlipIsMaskedByConstruction) {
  // Flipping message *bytes* in a slot whose has-message flag is clear
  // must NOT trip the digest (the engine never reads those bytes) — the
  // run completes with the exact clean fixpoint. The directed path gives
  // a slot that is dead by construction: vertex 0 has no in-edges, so its
  // inbox flag is never set in any generation.
  const CsrGraph g = make_graph(graph::path_graph(64));
  std::vector<graph::vid_t> clean;
  (void)run_version(g, apps::Hashmin{},
                    VersionId{CombinerKind::kSpinlockPush, true},
                    EngineOptions{.threads = 2}, nullptr, &clean);

  integrity::FlipPlan flip;
  flip.superstep = 3;
  flip.target = integrity::FlipTarget::kMessages;
  flip.phase = integrity::FlipPhase::kAtRest;
  flip.index = 0;  // vertex 0: no in-edges, inbox permanently dead
  flip.bit = 7;
  EngineOptions options;
  options.threads = 2;
  options.integrity.checksums = true;
  options.flip = flip;
  std::vector<graph::vid_t> flipped;
  const RunOutcome out = run_version_checked(
      g, apps::Hashmin{}, VersionId{CombinerKind::kSpinlockPush, true},
      options, nullptr, &flipped);
  ASSERT_TRUE(out.ok())
      << "a dead-slot message flip must be masked, got: "
      << out.error->what();
  EXPECT_EQ(flipped, clean);
}

TEST(InvariantTier, PageRankMassViolationDetected) {
  const CsrGraph g = make_graph(graph::rmat(7, 6, {.seed = 5}));
  integrity::FlipPlan flip;
  flip.superstep = 3;
  flip.target = integrity::FlipTarget::kValues;
  flip.phase = integrity::FlipPhase::kPostCompute;
  flip.op = integrity::FlipOp::kSet;
  flip.index = 9;
  flip.bit = 62;  // exponent high bit: rank explodes, mass audit trips
  EngineOptions options;
  options.threads = 1;
  options.integrity.invariants = true;
  options.flip = flip;
  const RunOutcome out = run_version_checked(
      g, apps::PageRank{.rounds = 10},
      VersionId{CombinerKind::kSpinlockPush, false}, options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error->kind(), RunErrorKind::kIntegrityViolation);
  EXPECT_EQ(out.error->superstep(), 3u);
  const std::string what = out.error->what();
  EXPECT_NE(what.find("invariant audit"), std::string::npos) << what;
}

TEST(InvariantTier, SsspMonotonicityViolationDetected) {
  const CsrGraph g = make_graph(graph::grid_2d(10, 10));
  integrity::FlipPlan flip;
  flip.superstep = 4;
  flip.target = integrity::FlipTarget::kValues;
  flip.phase = integrity::FlipPhase::kPostCompute;
  flip.op = integrity::FlipOp::kSet;
  flip.index = 2;
  flip.bit = 30;  // finite distance jumps past |V|: per-vertex audit trips
  EngineOptions options;
  options.threads = 2;
  options.integrity.invariants = true;
  options.flip = flip;
  const RunOutcome out = run_version_checked(
      g, apps::Sssp{}, VersionId{CombinerKind::kSpinlockPush, true},
      options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error->kind(), RunErrorKind::kIntegrityViolation);
  EXPECT_EQ(out.error->superstep(), 4u);
}

TEST(InvariantTier, CleanRunRaisesNoViolation) {
  const CsrGraph g = make_graph(graph::rmat(7, 6, {.seed = 5}));
  EngineOptions options;
  options.threads = 2;
  options.integrity.invariants = true;
  for (const VersionId v : applicable_versions<apps::PageRank>()) {
    const RunOutcome out = run_version_checked(
        g, apps::PageRank{.rounds = 10}, v, options);
    EXPECT_TRUE(out.ok()) << version_name(v) << ": false positive: "
                          << out.error->what();
  }
}

TEST(ShadowTier, PostComputeValueFlipOnSampledSlotDetected) {
  const CsrGraph g = make_graph(graph::grid_2d(8, 8));
  const std::uint64_t shadow_seed = 1234;
  const std::size_t superstep = 2;
  const auto sampled = integrity::shadow_sample(
      shadow_seed, superstep, g.first_slot(),
      g.num_slots() - g.first_slot(), 8);
  ASSERT_FALSE(sampled.empty());

  integrity::FlipPlan flip;
  flip.superstep = superstep;
  flip.target = integrity::FlipTarget::kValues;
  flip.phase = integrity::FlipPhase::kPostCompute;
  flip.index = sampled.front() - g.first_slot();
  flip.bit = 1;
  EngineOptions options;
  options.threads = 2;
  options.integrity.shadow = true;
  options.integrity.shadow_samples = 8;
  options.integrity.shadow_seed = shadow_seed;
  options.flip = flip;
  const RunOutcome out = run_version_checked(
      g, apps::Hashmin{}, VersionId{CombinerKind::kMutexPush, false},
      options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error->kind(), RunErrorKind::kIntegrityViolation);
  EXPECT_EQ(out.error->superstep(), superstep);
  const std::string what = out.error->what();
  EXPECT_NE(what.find("shadow recompute"), std::string::npos) << what;
}

TEST(ShadowTier, CleanRunRaisesNoViolation) {
  const CsrGraph g = make_graph(graph::grid_2d(8, 8));
  EngineOptions options;
  options.threads = 2;
  options.integrity.shadow = true;
  options.integrity.shadow_samples = 16;
  for (const VersionId v : applicable_versions<apps::Hashmin>()) {
    const RunOutcome out =
        run_version_checked(g, apps::Hashmin{}, v, options);
    EXPECT_TRUE(out.ok()) << version_name(v) << ": false positive: "
                          << out.error->what();
  }
}

// --- verified recovery: content-corrupt snapshots ------------------------

TEST(VerifiedRecovery, CorruptButCrcValidSnapshotIsQuarantined) {
  // Hashmin invariant: label <= id. Take a real snapshot, bump one label
  // ABOVE its vertex id, and re-write the file (fresh CRCs — the file is
  // structurally immaculate; the corruption predates the checkpoint).
  // Supervised recovery with the invariant tier on must refuse it, fall
  // back to the older good snapshot, and still finish bit-identical.
  const CsrGraph g = make_graph(graph::grid_2d(10, 10));
  const VersionId version{CombinerKind::kSpinlockPush, false};
  const TempDir dir("crc_valid");

  std::vector<graph::vid_t> clean;
  EngineOptions base;
  base.threads = 2;
  (void)run_version(g, apps::Hashmin{}, version, base, nullptr, &clean);

  EngineOptions ckpt = base;
  ckpt.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  ckpt.checkpoint.every = 1;
  ckpt.checkpoint.mode = ft::CheckpointMode::kHeavyweight;
  ckpt.checkpoint.directory = dir.str();
  ckpt.checkpoint.keep = 0;  // retain every snapshot for this test
  (void)run_version(g, apps::Hashmin{}, version, ckpt);

  const auto snaps = ft::list_snapshots(dir.str(), "snapshot");
  ASSERT_GE(snaps.size(), 2u) << "need an older snapshot to fall back to";
  const std::string& newest = snaps.back().second;
  ft::EngineSnapshot snap = ft::read_snapshot(newest);
  ASSERT_EQ(snap.meta.value_size, sizeof(graph::vid_t));
  // Slot 0 holds label 0 (its own id is the component minimum): raise it.
  snap.values[1] = 0x7F;  // label becomes huge — audit_value: label > id
  ft::write_snapshot(newest, snap);
  // The doctored file still parses: structural validation alone is happy.
  EXPECT_NO_THROW((void)ft::read_snapshot(newest));

  EngineOptions resume = ckpt;
  resume.integrity.invariants = true;
  ft::RetryPolicy policy;
  policy.max_attempts = 2;
  std::vector<graph::vid_t> recovered;
  const ft::SupervisedOutcome out = ft::supervise(
      g, apps::Hashmin{}, version, resume, policy, nullptr, &recovered);
  ASSERT_TRUE(out.ok()) << out.error->what();
  EXPECT_GE(out.snapshots_quarantined, 1u)
      << "the content-corrupt snapshot must be quarantined, not resumed";
  EXPECT_EQ(out.resumed_from_snapshot, 1u)
      << "recovery should fall back to the older good snapshot";
  EXPECT_EQ(recovered, clean);

  // The quarantined file is renamed, not deleted: post-mortem evidence.
  bool found_quarantined = false;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir.str())) {
    if (entry.path().string().ends_with(".quarantined")) {
      found_quarantined = true;
    }
  }
  EXPECT_TRUE(found_quarantined);
}

TEST(VerifiedRecovery, WithoutValueAuditTierSnapshotIsAccepted) {
  // Same doctored snapshot, but the invariant tier off: recovery has no
  // semantic validator, resumes from the corrupt-but-parseable newest
  // snapshot, and the corruption propagates into the result. This is the
  // baseline the verified path exists to beat — asserted here so the test
  // suite documents the difference instead of implying CRCs are enough.
  const CsrGraph g = make_graph(graph::grid_2d(10, 10));
  const VersionId version{CombinerKind::kSpinlockPush, false};
  const TempDir dir("unverified");

  std::vector<graph::vid_t> clean;
  EngineOptions ckpt;
  ckpt.threads = 2;
  ckpt.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  ckpt.checkpoint.every = 1;
  ckpt.checkpoint.mode = ft::CheckpointMode::kHeavyweight;
  ckpt.checkpoint.directory = dir.str();
  ckpt.checkpoint.keep = 0;
  (void)run_version(g, apps::Hashmin{}, version, ckpt, nullptr, &clean);

  const auto snaps = ft::list_snapshots(dir.str(), "snapshot");
  ASSERT_GE(snaps.size(), 2u);
  const std::string& newest = snaps.back().second;
  ft::EngineSnapshot snap = ft::read_snapshot(newest);
  snap.values[1] = 0x7F;
  ft::write_snapshot(newest, snap);

  ft::RetryPolicy policy;
  policy.max_attempts = 1;
  std::vector<graph::vid_t> recovered;
  const ft::SupervisedOutcome out = ft::supervise(
      g, apps::Hashmin{}, version, ckpt, policy, nullptr, &recovered);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.snapshots_quarantined, 0u);
  EXPECT_EQ(out.resumed_from_snapshot, 1u);
  EXPECT_NE(recovered, clean)
      << "without the value audit the corruption should have propagated "
         "(if this starts passing, the doctored slot stopped mattering "
         "and the test needs a different corruption site)";
}

}  // namespace
}  // namespace ipregel
