// The integrity matrix — the headline silent-data-corruption property:
//
//   For a sweep of seeded bit flips across {PageRank, SSSP, Hashmin} ×
//   every applicable framework version × the detector tier aimed at that
//   flip class, EVERY flip is either
//     (a) detected: the run fails typed with kIntegrityViolation, the
//         supervisor restores the newest pre-corruption snapshot, and the
//         recovered run finishes bit-identical to an uninterrupted one, or
//     (b) provably masked: the run completes and its final values are
//         bit-identical anyway (the flip landed where the engine never
//         reads — a dead mailbox slot, a frontier on a version that has
//         none, a superstep the run never reached, a no-op SET).
//   Nothing in between: no silent wrong answer escapes.
//
// Flip classes per tier:
//   tier 1 (invariants)  — post-compute SET of a value's high bit: either
//                          breaks the program's conservation law (detected)
//                          or was already set (no-op, masked).
//   tier 2 (checksums)   — seeded at-rest XOR over all state sections.
//   tier 3 (shadow)      — post-compute XOR on a slot the shadow sampler
//                          is guaranteed to replay: always detected.
//
// Every failure reproduces from the logged seed: set
// IPREGEL_INTEGRITY_SEED to replay a sweep, IPREGEL_INTEGRITY_SOAK=1 to
// enlarge it (the weekly CI soak job does).
//
// Determinism fine print (matches tests/test_ft_supervisor.cpp): Hashmin
// and SSSP are min-combined and exact at any thread count; PageRank is
// exact under pull at any thread count but only single-threaded under the
// push combiners — thread counts below respect that so "bit-identical" is
// a meaningful oracle.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "core/runner.hpp"
#include "ft/supervisor.hpp"
#include "graph/generators.hpp"
#include "integrity/fault.hpp"
#include "runtime/rng.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using ipregel::testing::make_graph;

std::uint64_t sweep_seed() {
  static const std::uint64_t seed = [] {
    std::uint64_t s = 20260806;
    if (const char* env = std::getenv("IPREGEL_INTEGRITY_SEED")) {
      s = static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
    }
    // Printed so the ctest log of any failure carries the replay recipe:
    // this one seed derives every graph, flip site, and shadow sample.
    std::cout << "integrity sweep seed: " << s
              << " (set IPREGEL_INTEGRITY_SEED to replay)\n";
    return s;
  }();
  return seed;
}

/// Seed for the randomised graph generators, derived from the sweep seed
/// so the whole matrix — workload included — replays from one integer.
std::uint64_t graph_seed() {
  return runtime::mix64(sweep_seed() ^ 0x6EA9);
}

bool soak_mode() {
  const char* env = std::getenv("IPREGEL_INTEGRITY_SOAK");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

class TempDir {
 public:
  explicit TempDir(const std::string& label) {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("ipregel_matrix_") + info->name() + "_" + label))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] const std::string& str() const noexcept { return dir_; }

 private:
  std::string dir_;
};

/// Exact thread count for a (program, version): PageRank under push
/// combiners is only bit-reproducible single-threaded.
template <typename Program>
std::size_t exact_threads(VersionId version) {
  if constexpr (std::is_same_v<Program, apps::PageRank>) {
    return version.combiner == CombinerKind::kPull ? 2 : 1;
  }
  (void)version;
  return 2;
}

enum class Expect : std::uint8_t {
  kDetectOrMasked,  ///< either branch of the headline property
  kMustDetect,      ///< flip constructed so masking is impossible
};

/// One cell of the matrix: clean run vs. supervised run under `flip` with
/// the given detector tiers. Asserts the headline property.
template <typename Program>
void run_cell(const CsrGraph& g, Program program, VersionId version,
              const integrity::IntegrityOptions& tiers,
              const integrity::FlipPlan& flip, Expect expect,
              const std::vector<typename Program::value_type>& clean,
              std::size_t clean_supersteps, const std::string& tag) {
  SCOPED_TRACE(tag + " / " + std::string(version_name(version)) +
               " / flip{superstep=" + std::to_string(flip.superstep) +
               ", target=" + std::string(to_string(flip.target)) +
               ", phase=" + std::string(to_string(flip.phase)) +
               ", index=" + std::to_string(flip.index) +
               ", bit=" + std::to_string(flip.bit) + "}");

  const TempDir dir(tag);
  EngineOptions options;
  options.threads = exact_threads<Program>(version);
  options.integrity = tiers;
  options.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  options.checkpoint.every = 1;
  options.checkpoint.mode = ft::CheckpointMode::kHeavyweight;
  options.checkpoint.directory = dir.str();

  ft::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.flip_schedule = {flip};

  std::vector<typename Program::value_type> recovered;
  const ft::SupervisedOutcome out = ft::supervise(
      g, program, version, options, policy, nullptr, &recovered);

  ASSERT_TRUE(out.ok()) << "supervisor could not recover: "
                        << out.error->what();
  if (out.integrity_violations > 0) {
    // Detected: one failed attempt, one snapshot-resumed recovery.
    EXPECT_EQ(out.attempts, 2u);
    EXPECT_EQ(out.resumed_from_snapshot, 1u)
        << "recovery restarted from scratch despite checkpoints";
  } else {
    // Masked: the run must not have noticed anything...
    EXPECT_EQ(out.attempts, 1u);
    EXPECT_EQ(expect, Expect::kDetectOrMasked)
        << "this flip was constructed to be undeniably detectable";
  }
  // ...and in BOTH branches the final values must be bit-identical to the
  // uninterrupted run: detected ⇒ recovery healed it; undetected ⇒ the
  // flip provably never influenced the computation.
  EXPECT_EQ(out.result.supersteps, clean_supersteps);
  ASSERT_EQ(recovered.size(), clean.size());
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(recovered[s], clean[s])
        << "SILENT CORRUPTION ESCAPED at slot " << s << " (id "
        << g.id_of(s) << ")";
  }
}

/// Clean reference run for one (program, version).
template <typename Program>
RunResult clean_run(const CsrGraph& g, Program program, VersionId version,
                    std::vector<typename Program::value_type>& out) {
  EngineOptions options;
  options.threads = exact_threads<Program>(version);
  return run_version(g, program, version, options, nullptr, &out);
}

// --- tier 2: at-rest checksum sweep --------------------------------------

/// Seeded at-rest XOR flips over every state section, every applicable
/// version. Detect-or-masked: a flip may land in a dead mailbox slot or
/// target the frontier of a version that has none.
template <typename Program>
void checksum_sweep(const CsrGraph& g, Program program,
                    const std::string& tag) {
  const std::uint64_t seed = sweep_seed();
  const std::size_t flips_per_version = soak_mode() ? 24 : 3;
  integrity::IntegrityOptions tiers;
  tiers.checksums = true;
  std::size_t case_index = 0;
  for (const VersionId version : applicable_versions<Program>()) {
    std::vector<typename Program::value_type> clean;
    const RunResult ref = clean_run(g, program, version, clean);
    ASSERT_GE(ref.supersteps, 3u) << "workload too short to corrupt";
    for (std::size_t i = 0; i < flips_per_version; ++i, ++case_index) {
      const integrity::FlipPlan flip = integrity::FlipPlan::from_seed(
          runtime::mix64(seed) ^ runtime::mix64(case_index), 1,
          ref.supersteps - 1, version.selection_bypass);
      run_cell(g, program, version, tiers, flip, Expect::kDetectOrMasked,
               clean, ref.supersteps,
               tag + "_t2_" + std::to_string(case_index));
    }
  }
}

TEST(IntegrityMatrix, ChecksumTierHashmin) {
  checksum_sweep(make_graph(graph::grid_2d(10, 10)), apps::Hashmin{},
                 "hashmin");
}

TEST(IntegrityMatrix, ChecksumTierSssp) {
  checksum_sweep(make_graph(graph::grid_2d(10, 10)), apps::Sssp{}, "sssp");
}

TEST(IntegrityMatrix, ChecksumTierPageRank) {
  checksum_sweep(make_graph(graph::rmat(7, 6, {.seed = graph_seed()})),
                 apps::PageRank{.rounds = 8}, "pagerank");
}

// --- tier 1: invariant-audit sweep ---------------------------------------

/// Post-compute SET of a high value bit at seeded (superstep, slot) sites.
/// `high_bit` is chosen per program so a fired flip either trips the
/// declared invariant or was a no-op — never a quiet sub-tolerance nudge.
template <typename Program>
void invariant_sweep(const CsrGraph& g, Program program,
                     std::uint32_t high_bit, Expect expect,
                     const std::string& tag) {
  const std::uint64_t seed = sweep_seed();
  const std::size_t flips_per_version = soak_mode() ? 12 : 3;
  integrity::IntegrityOptions tiers;
  tiers.invariants = true;
  std::size_t case_index = 0;
  for (const VersionId version : applicable_versions<Program>()) {
    std::vector<typename Program::value_type> clean;
    const RunResult ref = clean_run(g, program, version, clean);
    ASSERT_GE(ref.supersteps, 3u);
    runtime::SplitMix64 rng(runtime::mix64(seed) ^
                            runtime::mix64(0x7131 + case_index));
    for (std::size_t i = 0; i < flips_per_version; ++i, ++case_index) {
      integrity::FlipPlan flip;
      flip.superstep = 1 + rng.next() % (ref.supersteps - 1);
      flip.target = integrity::FlipTarget::kValues;
      flip.phase = integrity::FlipPhase::kPostCompute;
      flip.op = integrity::FlipOp::kSet;
      flip.index = rng.next();
      flip.bit = high_bit;
      run_cell(g, program, version, tiers, flip, expect, clean,
               ref.supersteps, tag + "_t1_" + std::to_string(case_index));
    }
  }
}

TEST(IntegrityMatrix, InvariantTierHashmin) {
  // Labels are vertex ids (< 2^30 here): SET bit 30 always lifts the label
  // above its id — masking is impossible.
  invariant_sweep(make_graph(graph::grid_2d(10, 10)), apps::Hashmin{}, 30,
                  Expect::kMustDetect, "hashmin");
}

TEST(IntegrityMatrix, InvariantTierSssp) {
  // A finite distance jumps past |V| (detected); a kInfinity slot already
  // has bit 30 set (no-op, masked).
  invariant_sweep(make_graph(graph::grid_2d(10, 10)), apps::Sssp{}, 30,
                  Expect::kDetectOrMasked, "sssp");
}

TEST(IntegrityMatrix, InvariantTierPageRank) {
  // Ranks live in (0, 1): their exponent's top bit is always clear, so
  // SET bit 62 always explodes the rank past the total mass — masking is
  // impossible.
  invariant_sweep(make_graph(graph::rmat(7, 6, {.seed = graph_seed()})),
                  apps::PageRank{.rounds = 8}, 62, Expect::kMustDetect,
                  "pagerank");
}

// --- tier 3: shadow-recompute sweep --------------------------------------

/// Post-compute XOR aimed at a slot the shadow sampler replays in that
/// superstep: the stored value can no longer match the replay, so every
/// fired flip is detected.
template <typename Program>
void shadow_sweep(const CsrGraph& g, Program program,
                  const std::string& tag) {
  const std::uint64_t seed = sweep_seed();
  const std::size_t flips_per_version = soak_mode() ? 8 : 2;
  integrity::IntegrityOptions tiers;
  tiers.shadow = true;
  tiers.shadow_samples = 8;
  tiers.shadow_seed = runtime::mix64(seed ^ 0x5AD0);
  const std::size_t first = g.first_slot();
  const std::size_t n = g.num_slots() - first;
  std::size_t case_index = 0;
  for (const VersionId version : applicable_versions<Program>()) {
    std::vector<typename Program::value_type> clean;
    const RunResult ref = clean_run(g, program, version, clean);
    ASSERT_GE(ref.supersteps, 3u);
    runtime::SplitMix64 rng(runtime::mix64(seed) ^
                            runtime::mix64(0x5AD1 + case_index));
    for (std::size_t i = 0; i < flips_per_version; ++i, ++case_index) {
      const std::size_t superstep = 1 + rng.next() % (ref.supersteps - 1);
      const auto sampled = integrity::shadow_sample(
          tiers.shadow_seed, superstep, first, n, tiers.shadow_samples);
      ASSERT_FALSE(sampled.empty());
      integrity::FlipPlan flip;
      flip.superstep = superstep;
      flip.target = integrity::FlipTarget::kValues;
      flip.phase = integrity::FlipPhase::kPostCompute;
      flip.op = integrity::FlipOp::kXor;
      flip.index = sampled[rng.next() % sampled.size()] - first;
      flip.bit = static_cast<std::uint32_t>(
          rng.next() % (sizeof(typename Program::value_type) * 8));
      run_cell(g, program, version, tiers, flip, Expect::kMustDetect,
               clean, ref.supersteps, tag + "_t3_" + std::to_string(case_index));
    }
  }
}

TEST(IntegrityMatrix, ShadowTierHashmin) {
  shadow_sweep(make_graph(graph::grid_2d(10, 10)), apps::Hashmin{},
               "hashmin");
}

TEST(IntegrityMatrix, ShadowTierSssp) {
  shadow_sweep(make_graph(graph::grid_2d(10, 10)), apps::Sssp{}, "sssp");
}

// --- zero-injection false-positive soak ----------------------------------

/// All three tiers armed at once, NO flip injected: every program × every
/// version must complete first-try with values bit-identical to a detector-
/// free run. A detector that cries wolf would turn healthy production runs
/// into spurious retries — this is the matrix's specificity half.
template <typename Program>
void false_positive_soak(const CsrGraph& g, Program program,
                         const std::string& tag) {
  integrity::IntegrityOptions tiers;
  tiers.invariants = true;
  tiers.checksums = true;
  tiers.shadow = true;
  tiers.shadow_samples = soak_mode() ? 32 : 8;
  tiers.shadow_seed = runtime::mix64(sweep_seed() ^ 0xC1EA);
  for (const VersionId version : applicable_versions<Program>()) {
    SCOPED_TRACE(tag + " / " + std::string(version_name(version)));
    std::vector<typename Program::value_type> clean;
    const RunResult ref = clean_run(g, program, version, clean);

    const TempDir dir(tag + "_fp");
    EngineOptions options;
    options.threads = exact_threads<Program>(version);
    options.integrity = tiers;
    options.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
    options.checkpoint.every = 1;
    options.checkpoint.directory = dir.str();
    std::vector<typename Program::value_type> audited;
    const ft::SupervisedOutcome out = ft::supervise(
        g, program, version, options, ft::RetryPolicy{}, nullptr, &audited);
    ASSERT_TRUE(out.ok()) << "FALSE POSITIVE: " << out.error->what();
    EXPECT_EQ(out.attempts, 1u);
    EXPECT_EQ(out.integrity_violations, 0u);
    EXPECT_EQ(out.result.supersteps, ref.supersteps);
    EXPECT_EQ(audited, clean)
        << "detectors must observe, never perturb";
  }
}

TEST(IntegrityMatrix, NoInjectionNoFalsePositiveHashmin) {
  false_positive_soak(make_graph(graph::grid_2d(10, 10)), apps::Hashmin{},
                      "hashmin");
}

TEST(IntegrityMatrix, NoInjectionNoFalsePositiveSssp) {
  false_positive_soak(make_graph(graph::grid_2d(10, 10)), apps::Sssp{},
                      "sssp");
}

TEST(IntegrityMatrix, NoInjectionNoFalsePositivePageRank) {
  false_positive_soak(make_graph(graph::rmat(7, 6, {.seed = graph_seed()})),
                      apps::PageRank{.rounds = 8}, "pagerank");
}

// --- checksum cadence ----------------------------------------------------

TEST(IntegrityMatrix, SparseChecksumCadenceCoversOnlyItsBarriers) {
  // checksum_every = 4 stores digests only at supersteps divisible by 4
  // and verifies each at the very next at-rest window — so the cadence
  // knob trades COVERAGE for throughput, not detection latency: an
  // at-rest flip in a covered superstep (8) is still caught, while one in
  // an uncovered superstep (6) has no baseline to be compared against and
  // escapes. Both halves are pinned so the knob's real contract is a test
  // failure away from being silently changed.
  const CsrGraph g = make_graph(graph::grid_2d(10, 10));
  const VersionId version{CombinerKind::kSpinlockPush, false};
  std::vector<graph::vid_t> clean;
  const RunResult ref = clean_run(g, apps::Hashmin{}, version, clean);
  ASSERT_GE(ref.supersteps, 10u);

  integrity::IntegrityOptions tiers;
  tiers.checksums = true;
  tiers.checksum_every = 4;
  integrity::FlipPlan flip;
  flip.target = integrity::FlipTarget::kValues;
  flip.phase = integrity::FlipPhase::kAtRest;
  flip.index = 0;  // vertex 0: its Hashmin label converges to 0 immediately
  flip.bit = 5;

  // Covered superstep: detected and recovered.
  flip.superstep = 8;
  run_cell(g, apps::Hashmin{}, version, tiers, flip, Expect::kMustDetect,
           clean, ref.supersteps, "cadence_covered");

  // Uncovered superstep: the flip lands between baselines and escapes —
  // the honest price of the sparse cadence. (The flipped label 32 > 0
  // sticks: Hashmin only ever lowers labels, and vertex 0's neighbours
  // have long halted.)
  flip.superstep = 6;
  const TempDir dir("cadence_uncovered");
  EngineOptions options;
  options.threads = 2;
  options.integrity = tiers;
  options.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  options.checkpoint.every = 1;
  options.checkpoint.directory = dir.str();
  ft::RetryPolicy policy;
  policy.flip_schedule = {flip};
  std::vector<graph::vid_t> escaped;
  const ft::SupervisedOutcome out = ft::supervise(
      g, apps::Hashmin{}, version, options, policy, nullptr, &escaped);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_EQ(out.integrity_violations, 0u);
  EXPECT_NE(escaped, clean)
      << "an uncovered-superstep flip escaping is this knob's documented "
         "trade-off; if it is now detected, the cadence semantics changed "
         "and this test (and DESIGN.md section 11) must be updated";
}

}  // namespace
}  // namespace ipregel
