// The headline durability property: simulate a power loss at EVERY
// mutating-syscall boundary of the checkpoint write path — open, buffered
// write, fsync, rename, parent-directory fsync, retention unlink — reboot
// the simulated disk, recover through ft::supervise, and require the
// final vertex values to be bit-identical to an uninterrupted run. For
// PageRank, SSSP, and Hashmin, in both heavyweight and lightweight
// checkpoint modes; plus the same sweep (power cut and torn write) over
// the binary edge-list cache, and the ENOSPC/EIO sweep showing a poisoned
// checkpoint skips instead of failing a healthy run.
//
// The boundary enumeration is a probe run: the same workload against an
// unarmed FaultyVfs yields the deterministic count N of mutating
// operations (all issued from the serial barrier section, so the schedule
// is reproducible); the matrix then arms "power cut at op k" for every
// k in 1..N. Determinism fine print matches test_ft_recovery.cpp:
// min-combined programs and PageRank/pull are exact at any thread count.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "core/runner.hpp"
#include "ft/supervisor.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "io/faulty_vfs.hpp"
#include "io/vfs.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using io::FaultyVfs;
using ipregel::testing::make_graph;

constexpr const char* kCkptDir = "/ckpt";

template <typename Program>
EngineOptions checkpointing_options(std::size_t threads,
                                    ft::CheckpointMode mode, io::Vfs* vfs) {
  EngineOptions options;
  options.threads = threads;
  options.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  options.checkpoint.every = 1;  // adaptive pacing is timing-dependent;
                                 // every-superstep keeps the op schedule
                                 // deterministic
  options.checkpoint.mode = mode;
  options.checkpoint.directory = kCkptDir;
  options.checkpoint.vfs = vfs;
  return options;
}

/// Power-cut matrix for one (program, version, mode) cell.
template <typename Program>
void run_crash_matrix(const CsrGraph& g, Program program, VersionId version,
                      ft::CheckpointMode mode, std::size_t threads,
                      const std::string& tag) {
  SCOPED_TRACE(tag + " / " + std::string(version_name(version)) + " / " +
               std::string(to_string(mode)));

  EngineOptions base;
  base.threads = threads;
  std::vector<typename Program::value_type> clean;
  const RunResult clean_result =
      run_version(g, program, version, base, nullptr, &clean);
  ASSERT_GE(clean_result.supersteps, 3u)
      << "workload too short for a meaningful matrix";

  // Probe: same run against an unarmed FaultyVfs enumerates the mutating
  // ops, and doubles as "checkpointing does not change the answer".
  FaultyVfs probe;
  std::vector<typename Program::value_type> probed;
  (void)run_version(g, program, version,
                    checkpointing_options<Program>(threads, mode, &probe),
                    nullptr, &probed);
  ASSERT_EQ(probed, clean);
  const std::uint64_t total_ops = probe.mutating_ops();
  ASSERT_GE(total_ops, 5u) << "expected at least one full publish cycle";

  for (std::uint64_t at = 1; at <= total_ops; ++at) {
    SCOPED_TRACE("power cut at mutating op " + std::to_string(at) + " of " +
                 std::to_string(total_ops));
    FaultyVfs vfs;
    vfs.set_plan({FaultyVfs::FaultKind::kPowerCut, at});
    bool cut = false;
    try {
      (void)run_version(g, program, version,
                        checkpointing_options<Program>(threads, mode, &vfs));
    } catch (const io::PowerLoss&) {
      cut = true;
    }
    ASSERT_TRUE(cut) << "armed plan failed to trip";

    vfs.reboot();
    std::vector<typename Program::value_type> recovered;
    const ft::SupervisedOutcome outcome = ft::supervise(
        g, program, version,
        checkpointing_options<Program>(threads, mode, &vfs),
        ft::RetryPolicy{}, nullptr, &recovered);
    ASSERT_TRUE(outcome.ok())
        << "recovery failed: " << outcome.error->what();
    EXPECT_EQ(outcome.attempts, 1u);
    ASSERT_EQ(recovered.size(), clean.size());
    for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
      ASSERT_EQ(recovered[s], clean[s])
          << "recovered value diverged at slot " << s << " (id "
          << g.id_of(s) << ")";
    }
  }
}

TEST(CrashMatrix, PageRankPullBothModes) {
  const CsrGraph g = make_graph(graph::rmat(6, 5, {.seed = 7}));
  const apps::PageRank program{.rounds = 6};
  const VersionId version{CombinerKind::kPull, false};
  run_crash_matrix(g, program, version, ft::CheckpointMode::kHeavyweight, 4,
                   "pagerank");
  run_crash_matrix(g, program, version, ft::CheckpointMode::kLightweight, 4,
                   "pagerank");
}

TEST(CrashMatrix, SsspSpinlockBypassBothModes) {
  const CsrGraph g = make_graph(graph::rmat(6, 5, {.seed = 7}));
  const apps::Sssp program{};
  const VersionId version{CombinerKind::kSpinlockPush, true};
  run_crash_matrix(g, program, version, ft::CheckpointMode::kHeavyweight, 4,
                   "sssp");
  run_crash_matrix(g, program, version, ft::CheckpointMode::kLightweight, 4,
                   "sssp");
}

TEST(CrashMatrix, HashminBothModes) {
  graph::EdgeList edges = graph::uniform_random(120, 240, 13);
  edges.symmetrize();
  const CsrGraph g = make_graph(edges);
  const apps::Hashmin program{};
  run_crash_matrix(g, program, VersionId{CombinerKind::kMutexPush, false},
                   ft::CheckpointMode::kHeavyweight, 4, "hashmin");
  run_crash_matrix(g, program, VersionId{CombinerKind::kPull, false},
                   ft::CheckpointMode::kLightweight, 4, "hashmin");
}

// ENOSPC/EIO sweep: a transient disk error during checkpointing must cost
// one checkpoint, never the run. Every op boundary is poisoned once; the
// run must stay healthy, produce the clean values, and account the skip.
TEST(CrashMatrix, DiskErrorsSkipTheCheckpointNotTheRun) {
  graph::EdgeList edges = graph::uniform_random(120, 240, 13);
  edges.symmetrize();
  const CsrGraph g = make_graph(edges);
  const apps::Hashmin program{};
  const VersionId version{CombinerKind::kSpinlockPush, false};

  EngineOptions base;
  base.threads = 4;
  std::vector<graph::vid_t> clean;
  (void)run_version(g, program, version, base, nullptr, &clean);

  FaultyVfs probe;
  (void)run_version(g, program, version,
                    checkpointing_options<apps::Hashmin>(
                        4, ft::CheckpointMode::kHeavyweight, &probe));
  const std::uint64_t total_ops = probe.mutating_ops();
  ASSERT_GE(total_ops, 5u);

  for (const FaultyVfs::FaultKind kind :
       {FaultyVfs::FaultKind::kEnospc, FaultyVfs::FaultKind::kEio,
        FaultyVfs::FaultKind::kShortWrite}) {
    std::size_t skipped_somewhere = 0;
    for (std::uint64_t at = 1; at <= total_ops; ++at) {
      SCOPED_TRACE(std::string(io::to_string(kind)) + " at op " +
                   std::to_string(at));
      FaultyVfs vfs;
      vfs.set_plan({kind, at});
      std::vector<graph::vid_t> values;
      const RunOutcome outcome = run_version_checked(
          g, program, version,
          checkpointing_options<apps::Hashmin>(
              4, ft::CheckpointMode::kHeavyweight, &vfs),
          nullptr, &values);
      ASSERT_TRUE(outcome.ok())
          << "a poisoned checkpoint failed a healthy run: "
          << outcome.error->what();
      // The faulted op either hit the checkpoint write path (skip
      // accounted) or the best-effort retention unlink (swallowed there);
      // either way the run's answer is untouched.
      EXPECT_LE(outcome.result.checkpoints_skipped, 1u);
      skipped_somewhere += outcome.result.checkpoints_skipped;
      EXPECT_EQ(values, clean);
    }
    EXPECT_GE(skipped_somewhere, 1u)
        << "the sweep never exercised the skip path for "
        << io::to_string(kind);
  }
}

// The binary edge-list cache publishes through the same AtomicFile
// discipline: after a power cut or torn write at any boundary, the cache
// is either absent or loads bit-identically — never torn — and a re-save
// over the debris succeeds.
TEST(CrashMatrix, EdgeCacheSurvivesPowerCutAndTornWrite) {
  graph::EdgeList list = graph::grid_2d(
      8, 8, {.removal_fraction = 0.1, .max_weight = 9, .seed = 3});
  const std::string path = "/cache/graph.bin";

  const auto expect_same = [&list](const graph::EdgeList& got) {
    ASSERT_EQ(got.size(), list.size());
    ASSERT_EQ(got.weighted(), list.weighted());
    for (std::size_t i = 0; i < list.size(); ++i) {
      ASSERT_EQ(got.edges()[i].src, list.edges()[i].src) << "edge " << i;
      ASSERT_EQ(got.edges()[i].dst, list.edges()[i].dst) << "edge " << i;
      ASSERT_EQ(got.weights()[i], list.weights()[i]) << "edge " << i;
    }
  };

  FaultyVfs probe;
  graph::save_edge_list_binary(list, path, &probe);
  const std::uint64_t total_ops = probe.mutating_ops();
  ASSERT_GE(total_ops, 5u);  // open, write, fsync, rename, fsync_dir
  expect_same(graph::load_edge_list_binary(path, &probe));

  for (const FaultyVfs::FaultKind kind :
       {FaultyVfs::FaultKind::kPowerCut, FaultyVfs::FaultKind::kTornWrite}) {
    for (std::uint64_t at = 1; at <= total_ops; ++at) {
      SCOPED_TRACE(std::string(io::to_string(kind)) + " at op " +
                   std::to_string(at));
      FaultyVfs vfs;
      vfs.set_plan({kind, at});
      EXPECT_THROW(graph::save_edge_list_binary(list, path, &vfs),
                   io::PowerLoss);
      vfs.reboot();
      if (vfs.exists(path)) {
        // Whatever survived under the final name must be the whole cache.
        expect_same(graph::load_edge_list_binary(path, &vfs));
      }
      // Recovery is always a clean re-save, even over torn debris.
      graph::save_edge_list_binary(list, path, &vfs);
      expect_same(graph::load_edge_list_binary(path, &vfs));
      vfs.reboot();  // ...and that publish is durable.
      expect_same(graph::load_edge_list_binary(path, &vfs));
    }
  }
}

}  // namespace
}  // namespace ipregel
