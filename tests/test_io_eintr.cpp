// SIGCHLD-storm tests for the EINTR discipline in RealVfs, AtomicFile and
// ThreadPool. The sharded runtime (src/shard) supervises child processes,
// so SIGCHLD can land on ANY thread mid-syscall; a handler installed
// without SA_RESTART turns each delivery into an EINTR. Every blocking
// call in the I/O stack must retry (except close(), where Linux releases
// the descriptor anyway) — an unretried EINTR would surface as a spurious
// IoError in the middle of a checkpoint.

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "io/stream.hpp"
#include "io/vfs.hpp"
#include "runtime/thread_pool.hpp"

namespace ipregel::io {
namespace {

// Lock-free atomics are async-signal-safe, and unlike sig_atomic_t they
// stay well-defined when the kernel delivers SIGCHLD on a DIFFERENT
// thread than the one reading the counter (the fork-storm test below).
std::atomic<int> g_signals{0};

extern "C" void count_sigchld(int) {
  g_signals.fetch_add(1, std::memory_order_relaxed);
}

/// Installs a no-SA_RESTART SIGCHLD handler and hammers the constructing
/// thread with pthread_kill(SIGCHLD) from a sibling thread until
/// destroyed. Restores the previous disposition on exit.
class SigchldStorm {
 public:
  SigchldStorm() : target_(::pthread_self()) {
    g_signals.store(0, std::memory_order_relaxed);
    struct sigaction sa = {};
    sa.sa_handler = count_sigchld;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // deliberately NOT SA_RESTART
    ::sigaction(SIGCHLD, &sa, &old_);
    thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_acquire)) {
        ::pthread_kill(target_, SIGCHLD);
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }
  ~SigchldStorm() {
    stop_.store(true, std::memory_order_release);
    thread_.join();
    ::sigaction(SIGCHLD, &old_, nullptr);
  }
  [[nodiscard]] static int delivered() {
    return g_signals.load(std::memory_order_relaxed);
  }

 private:
  pthread_t target_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  struct sigaction old_ = {};
};

class TempDir {
 public:
  TempDir() {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = std::filesystem::temp_directory_path() /
            (std::string("ipregel_") + info->test_suite_name() + "_" +
             info->name());
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

[[nodiscard]] std::vector<char> pattern_bytes(std::size_t n) {
  std::vector<char> buf(n);
  for (std::size_t i = 0; i < n; ++i) {
    buf[i] = static_cast<char>((i * 131 + 7) & 0xFF);
  }
  return buf;
}

TEST(IoEintr, RealVfsReadWriteFsyncSurviveTheStorm) {
  TempDir dir;
  const std::string path = dir.str() + "/payload.bin";
  const auto want = pattern_bytes(4u << 20);
  constexpr std::size_t kChunk = 64u << 10;
  SigchldStorm storm;
  {
    auto f = real_vfs().open(path, Vfs::OpenMode::kTruncate);
    for (std::size_t off = 0; off < want.size(); off += kChunk) {
      f->write(want.data() + off, kChunk);
    }
    f->fsync();
    f->close();
  }
  std::vector<char> got(want.size());
  {
    auto f = real_vfs().open(path, Vfs::OpenMode::kRead);
    std::size_t off = 0;
    while (off < got.size()) {
      const std::size_t n = f->read(got.data() + off, kChunk);
      ASSERT_GT(n, 0u) << "short file at offset " << off;
      off += n;
    }
    // Zero bytes back at EOF, not an error.
    char extra = 0;
    EXPECT_EQ(f->read(&extra, 1), 0u);
    f->close();
  }
  EXPECT_EQ(std::memcmp(got.data(), want.data(), want.size()), 0);
  // The storm must actually have been a storm, or the test proves nothing.
  EXPECT_GT(SigchldStorm::delivered(), 0);
}

TEST(IoEintr, AtomicFileCommitsDurablyUnderTheStorm) {
  TempDir dir;
  const std::string final_path = dir.str() + "/published.bin";
  const auto want = pattern_bytes(1u << 20);
  SigchldStorm storm;
  for (int round = 0; round < 4; ++round) {
    AtomicFile file(real_vfs(), final_path);
    file.stream().write(want.data(),
                        static_cast<std::streamsize>(want.size()));
    file.commit();  // flush + fsync(tmp) + rename + fsync(dir), all stormed
  }
  std::vector<char> got(want.size());
  auto f = real_vfs().open(final_path, Vfs::OpenMode::kRead);
  std::size_t off = 0;
  while (off < got.size()) {
    const std::size_t n = f->read(got.data() + off, got.size() - off);
    ASSERT_GT(n, 0u);
    off += n;
  }
  f->close();
  EXPECT_EQ(std::memcmp(got.data(), want.data(), want.size()), 0);
  EXPECT_FALSE(real_vfs().exists(final_path + ".tmp"));
  EXPECT_GT(SigchldStorm::delivered(), 0);
}

TEST(IoEintr, DirectoryListingSurvivesTheStorm) {
  TempDir dir;
  for (int i = 0; i < 64; ++i) {
    auto f = real_vfs().open(dir.str() + "/f" + std::to_string(i),
                             Vfs::OpenMode::kTruncate);
    f->write("x", 1);
    f->close();
  }
  SigchldStorm storm;
  for (int round = 0; round < 50; ++round) {
    EXPECT_EQ(real_vfs().list(dir.str()).size(), 64u);
  }
}

TEST(IoEintr, RealSigchldFromAForkExitStormIsHarmless) {
  // Not synthesized signals this time: actual children exiting while the
  // main thread runs the write/fsync/read cycle — the exact shape the
  // shard coordinator's SIGCHLD traffic takes.
  struct sigaction sa = {};
  sa.sa_handler = count_sigchld;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  struct sigaction old = {};
  ::sigaction(SIGCHLD, &sa, &old);
  g_signals.store(0, std::memory_order_relaxed);

  std::atomic<bool> stop{false};
  std::vector<pid_t> kids;
  std::thread forker([&] {
    while (!stop.load(std::memory_order_acquire) && kids.size() < 300) {
      const pid_t pid = ::fork();
      if (pid == 0) {
        ::_exit(0);
      }
      if (pid > 0) {
        kids.push_back(pid);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  TempDir dir;
  const std::string path = dir.str() + "/snap.bin";
  const auto want = pattern_bytes(2u << 20);
  for (int round = 0; round < 6; ++round) {
    AtomicFile file(real_vfs(), path);
    file.stream().write(want.data(),
                        static_cast<std::streamsize>(want.size()));
    file.commit();
    auto f = real_vfs().open(path, Vfs::OpenMode::kRead);
    std::vector<char> got(want.size());
    std::size_t off = 0;
    while (off < got.size()) {
      const std::size_t n = f->read(got.data() + off, got.size() - off);
      ASSERT_GT(n, 0u);
      off += n;
    }
    f->close();
    ASSERT_EQ(std::memcmp(got.data(), want.data(), want.size()), 0);
  }

  stop.store(true, std::memory_order_release);
  forker.join();
  for (const pid_t pid : kids) {
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
  }
  ::sigaction(SIGCHLD, &old, nullptr);
  EXPECT_GT(kids.size(), 0u);
}

TEST(IoEintr, ThreadPoolRegionsCompleteUnderTheStorm) {
  // The pool's futex waits (std::atomic::wait) and the region protocol
  // must be oblivious to signal interruptions on any member thread.
  runtime::ThreadPool pool(4);
  constexpr std::size_t kItems = 1u << 16;
  SigchldStorm storm;
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.run([&](std::size_t tid) {
      std::uint64_t local = 0;
      for (std::size_t i = tid; i < kItems; i += 4) {
        local += i;
      }
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(),
              static_cast<std::uint64_t>(kItems) * (kItems - 1) / 2);
  }
  EXPECT_GT(SigchldStorm::delivered(), 0);
}

}  // namespace
}  // namespace ipregel::io
