// SnapshotDirectory: the recovery-side fallback ladder. Retention GC,
// quarantine of CRC-corrupt snapshots, fallback ordering when the newest
// 1..K-1 candidates are invalid, and the end-to-end property that
// ft::supervise degrades past a corrupt latest snapshot to the previous
// good one instead of failing the resume.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "core/runner.hpp"
#include "ft/snapshot.hpp"
#include "ft/snapshot_dir.hpp"
#include "ft/supervisor.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using ipregel::testing::make_graph;

class TempDir {
 public:
  explicit TempDir(const std::string& label = "d") {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("ipregel_snapdir_") + info->name() + "_" + label))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] const std::string& str() const noexcept { return dir_; }

 private:
  std::string dir_;
};

/// A small but fully valid lightweight snapshot for superstep `s`.
ft::EngineSnapshot make_snap(std::uint64_t s) {
  ft::EngineSnapshot snap;
  snap.meta.mode = ft::CheckpointMode::kLightweight;
  snap.meta.superstep = s;
  snap.meta.num_slots = 4;
  snap.meta.num_vertices = 4;
  snap.meta.num_edges = 6;
  snap.meta.graph_fingerprint = 0xF00D;
  snap.meta.value_size = 4;
  snap.meta.message_size = 4;
  snap.values.assign(16, static_cast<std::uint8_t>(s));
  snap.halted.assign(4, 0);
  return snap;
}

void write_snaps(const std::string& dir, std::uint64_t first,
                 std::uint64_t last) {
  for (std::uint64_t s = first; s <= last; ++s) {
    ft::write_snapshot(ft::snapshot_path(dir, "snapshot", s), make_snap(s));
  }
}

/// Flips one byte in the middle of the file — lands inside a section
/// payload, so the section CRC catches it.
void corrupt(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(data.size(), 2u);
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0xFF);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

TEST(ParseSnapshotFilename, AcceptsOnlyFinishedSnapshots) {
  EXPECT_EQ(ft::parse_snapshot_filename("snapshot.12.ipsnap", "snapshot"),
            std::uint64_t{12});
  EXPECT_EQ(ft::parse_snapshot_filename("cp.0.ipsnap", "cp"),
            std::uint64_t{0});
  // In-flight, quarantined, foreign, and malformed names are invisible.
  EXPECT_FALSE(
      ft::parse_snapshot_filename("snapshot.12.ipsnap.tmp", "snapshot"));
  EXPECT_FALSE(ft::parse_snapshot_filename("snapshot.12.ipsnap.quarantined",
                                           "snapshot"));
  EXPECT_FALSE(ft::parse_snapshot_filename("other.12.ipsnap", "snapshot"));
  EXPECT_FALSE(ft::parse_snapshot_filename("snapshot..ipsnap", "snapshot"));
  EXPECT_FALSE(ft::parse_snapshot_filename("snapshot.1x.ipsnap", "snapshot"));
}

TEST(SnapshotDirectoryTest, MissingDirectoryIsEmpty) {
  ft::SnapshotDirectory snapshots("/nonexistent/ipregel/ckpt");
  EXPECT_TRUE(snapshots.list().empty());
  EXPECT_FALSE(snapshots.newest_valid().has_value());
  EXPECT_EQ(snapshots.quarantined(), 0u);
}

TEST(SnapshotDirectoryTest, RetentionKeepsNewestK) {
  TempDir dir;
  write_snaps(dir.str(), 1, 5);
  ft::SnapshotDirectory snapshots(dir.str(), "snapshot", nullptr,
                                  /*keep=*/2);
  ASSERT_EQ(snapshots.list().size(), 5u);
  snapshots.prune();
  const auto entries = snapshots.list();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].superstep, 4u);
  EXPECT_EQ(entries[1].superstep, 5u);
}

TEST(SnapshotDirectoryTest, NewestValidPicksHighestSuperstep) {
  TempDir dir;
  write_snaps(dir.str(), 1, 3);
  ft::SnapshotDirectory snapshots(dir.str());
  const auto newest = snapshots.newest_valid();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->superstep, 3u);
  EXPECT_EQ(newest->path, ft::snapshot_path(dir.str(), "snapshot", 3));
  EXPECT_EQ(snapshots.quarantined(), 0u);
}

TEST(SnapshotDirectoryTest, QuarantinesCorruptNewestAndFallsBack) {
  TempDir dir;
  write_snaps(dir.str(), 1, 3);
  const std::string newest_path = ft::snapshot_path(dir.str(), "snapshot", 3);
  corrupt(newest_path);

  ft::SnapshotDirectory snapshots(dir.str());
  const auto newest = snapshots.newest_valid();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->superstep, 2u);
  EXPECT_EQ(snapshots.quarantined(), 1u);
  // The corrupt file moved aside — still on disk for post-mortem, but no
  // longer a candidate.
  EXPECT_FALSE(std::filesystem::exists(newest_path));
  EXPECT_TRUE(std::filesystem::exists(newest_path + ".quarantined"));
  for (const auto& entry : snapshots.list()) {
    EXPECT_NE(entry.superstep, 3u);
  }
}

TEST(SnapshotDirectoryTest, FallsBackPastMultipleCorruptCandidates) {
  TempDir dir;
  write_snaps(dir.str(), 1, 4);
  corrupt(ft::snapshot_path(dir.str(), "snapshot", 4));
  corrupt(ft::snapshot_path(dir.str(), "snapshot", 3));
  corrupt(ft::snapshot_path(dir.str(), "snapshot", 2));

  ft::SnapshotDirectory snapshots(dir.str());
  const auto newest = snapshots.newest_valid();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->superstep, 1u);
  EXPECT_EQ(snapshots.quarantined(), 3u);
}

TEST(SnapshotDirectoryTest, AllCorruptMeansNoCandidate) {
  TempDir dir;
  write_snaps(dir.str(), 1, 2);
  corrupt(ft::snapshot_path(dir.str(), "snapshot", 1));
  corrupt(ft::snapshot_path(dir.str(), "snapshot", 2));
  ft::SnapshotDirectory snapshots(dir.str());
  EXPECT_FALSE(snapshots.newest_valid().has_value());
  EXPECT_EQ(snapshots.quarantined(), 2u);
}

TEST(SnapshotDirectoryTest, TruncatedSnapshotIsQuarantinedToo) {
  TempDir dir;
  write_snaps(dir.str(), 1, 2);
  const std::string newest_path = ft::snapshot_path(dir.str(), "snapshot", 2);
  // Chop the trailer off — the torn-tail shape a non-atomic writer
  // would have left behind.
  const auto size = std::filesystem::file_size(newest_path);
  std::filesystem::resize_file(newest_path, size / 2);

  ft::SnapshotDirectory snapshots(dir.str());
  const auto newest = snapshots.newest_valid();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->superstep, 1u);
  EXPECT_EQ(snapshots.quarantined(), 1u);
}

// End to end: a supervised run whose latest snapshot rotted on disk
// resumes from the previous good one and still produces the clean run's
// values. Hashmin is min-combined, so the equality is exact at any thread
// count.
TEST(SnapshotDirectoryTest, SuperviseFallsBackPastCorruptLatest) {
  graph::EdgeList edges = graph::uniform_random(150, 300, 13);
  edges.symmetrize();
  const CsrGraph g = make_graph(edges);
  const apps::Hashmin program{};
  const VersionId version{CombinerKind::kSpinlockPush, false};

  EngineOptions base;
  base.threads = 4;
  std::vector<graph::vid_t> clean;
  const RunResult clean_result =
      run_version(g, program, version, base, nullptr, &clean);
  ASSERT_GE(clean_result.supersteps, 3u);

  // Produce a trail of real snapshots, then rot the newest.
  TempDir dir;
  EngineOptions checkpointing = base;
  checkpointing.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  checkpointing.checkpoint.every = 1;
  checkpointing.checkpoint.mode = ft::CheckpointMode::kHeavyweight;
  checkpointing.checkpoint.directory = dir.str();
  (void)run_version(g, program, version, checkpointing);
  ft::SnapshotDirectory trail(dir.str());
  const auto entries = trail.list();
  ASSERT_GE(entries.size(), 2u) << "need at least two snapshots to degrade";
  corrupt(entries.back().path);

  std::vector<graph::vid_t> recovered;
  const ft::SupervisedOutcome outcome =
      ft::supervise(g, program, version, checkpointing, ft::RetryPolicy{},
                    nullptr, &recovered);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(outcome.resumed_from_snapshot, 1u);
  EXPECT_EQ(outcome.snapshots_quarantined, 1u);
  ASSERT_EQ(recovered.size(), clean.size());
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(recovered[s], clean[s]) << "value diverged at slot " << s;
  }
}

// --- retention racing quarantine -----------------------------------------
//
// prune() counts only snapshots that VALIDATE toward the retention window.
// The scenario that motivates this: the newest snapshot is corrupt (torn
// write, rotted at rest) and keep is small — a name-based prune would let
// the corrupt file squat on a retention slot and delete the newest GOOD
// snapshot, leaving recovery with nothing.

TEST(SnapshotDirectoryTest, PruneQuarantinesCorruptAndKeepsValidated) {
  TempDir dir;
  write_snaps(dir.str(), 1, 5);
  corrupt(ft::snapshot_path(dir.str(), "snapshot", 5));
  corrupt(ft::snapshot_path(dir.str(), "snapshot", 4));

  ft::SnapshotDirectory snapshots(dir.str(), "snapshot", nullptr,
                                  /*keep=*/2);
  snapshots.prune();
  EXPECT_EQ(snapshots.quarantined(), 2u);
  const auto entries = snapshots.list();
  // 5 and 4 quarantined, 3 and 2 retained (the newest two that VALIDATE),
  // 1 pruned.
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].superstep, 2u);
  EXPECT_EQ(entries[1].superstep, 3u);
}

TEST(SnapshotDirectoryTest, PruneKeepOneNeverDeletesNewestValid) {
  // The keep == 1 worst case: with the newest snapshot corrupt, retention
  // must land on the newest VALID snapshot, not on the corpse.
  TempDir dir;
  write_snaps(dir.str(), 1, 3);
  corrupt(ft::snapshot_path(dir.str(), "snapshot", 3));

  ft::SnapshotDirectory snapshots(dir.str(), "snapshot", nullptr,
                                  /*keep=*/1);
  snapshots.prune();
  EXPECT_EQ(snapshots.quarantined(), 1u);
  const auto entries = snapshots.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].superstep, 2u);
  const auto newest = snapshots.newest_valid();
  ASSERT_TRUE(newest.has_value())
      << "prune deleted the only good snapshot";
  EXPECT_EQ(newest->superstep, 2u);
}

TEST(SnapshotDirectoryTest, PruneHonoursSemanticValidator) {
  // A snapshot can be structurally immaculate yet semantically rotten
  // (corruption that predates the write). A semantic validator passed to
  // prune() must disqualify it from retention exactly like CRC damage.
  TempDir dir;
  write_snaps(dir.str(), 1, 4);
  const ft::SnapshotDirectory::Validator reject_newest =
      [](const ft::EngineSnapshot& snap) -> const char* {
    // make_snap fills values with the superstep number: "content says 4"
    // plays the part of a value-audit failure.
    return (!snap.values.empty() && snap.values[0] == 4)
               ? "content failed the value audit"
               : nullptr;
  };

  ft::SnapshotDirectory snapshots(dir.str(), "snapshot", nullptr,
                                  /*keep=*/1);
  snapshots.prune(reject_newest);
  EXPECT_EQ(snapshots.quarantined(), 1u);
  const auto entries = snapshots.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].superstep, 3u);
  EXPECT_TRUE(std::filesystem::exists(
      ft::snapshot_path(dir.str(), "snapshot", 4) + ".quarantined"));
}

TEST(SnapshotDirectoryTest, PruneKeepZeroTouchesNothing) {
  TempDir dir;
  write_snaps(dir.str(), 1, 3);
  corrupt(ft::snapshot_path(dir.str(), "snapshot", 3));
  ft::SnapshotDirectory snapshots(dir.str(), "snapshot", nullptr,
                                  /*keep=*/0);
  snapshots.prune();
  // keep == 0 disables retention GC entirely: nothing deleted, nothing
  // examined, nothing quarantined.
  EXPECT_EQ(snapshots.quarantined(), 0u);
  EXPECT_EQ(snapshots.list().size(), 3u);
}

}  // namespace
}  // namespace ipregel
