// The durable-storage seam itself: typed IoError context, RealVfs
// round-trips, AtomicFile's publish discipline, and the FaultyVfs
// durability model (live vs synced state, fault plans, power cuts) that
// the crash-consistency matrix builds on. If these invariants drift, the
// matrix tests lose their meaning — a "passing" recovery against a disk
// that silently syncs everything proves nothing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <string>
#include <vector>

#include "io/faulty_vfs.hpp"
#include "io/stream.hpp"
#include "io/vfs.hpp"

namespace ipregel::io {
namespace {

class TempDir {
 public:
  TempDir() {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("ipregel_vfs_") + info->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] const std::string& str() const noexcept { return dir_; }

 private:
  std::string dir_;
};

std::vector<std::uint8_t> bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

void write_file(Vfs& vfs, const std::string& path, const std::string& data,
                Vfs::OpenMode mode = Vfs::OpenMode::kTruncate) {
  const auto file = vfs.open(path, mode);
  file->write(data.data(), data.size());
  file->close();
}

TEST(ParentDir, StringMath) {
  EXPECT_EQ(parent_dir("a/b/c"), "a/b");
  EXPECT_EQ(parent_dir("dir/file.bin"), "dir");
  EXPECT_EQ(parent_dir("file.bin"), ".");
  EXPECT_EQ(parent_dir("/file.bin"), "/");
  EXPECT_EQ(parent_dir("/a/b"), "/a");
}

TEST(IoErrorTest, CarriesOpPathAndErrno) {
  TempDir dir;
  const std::string missing = dir.str() + "/nope.bin";
  try {
    (void)real_vfs().open(missing, Vfs::OpenMode::kRead);
    FAIL() << "open of a missing file did not throw";
  } catch (const IoError& e) {
    EXPECT_EQ(e.op(), IoOp::kOpen);
    EXPECT_EQ(e.path(), missing);
    EXPECT_EQ(e.errno_value(), ENOENT);
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos)
        << "what() should name the path: " << e.what();
  }
  // IoError stays a std::runtime_error so pre-Vfs call sites that catch
  // the base class keep working.
  EXPECT_THROW((void)real_vfs().open(missing, Vfs::OpenMode::kRead),
               std::runtime_error);
}

TEST(RealVfsTest, RoundTrip) {
  TempDir dir;
  Vfs& vfs = real_vfs();
  const std::string path = dir.str() + "/data.bin";

  EXPECT_FALSE(vfs.exists(path));
  write_file(vfs, path, "hello");
  EXPECT_TRUE(vfs.exists(path));
  EXPECT_EQ(vfs.read_all(path), bytes("hello"));

  const std::vector<std::string> names = vfs.list(dir.str());
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "data.bin");

  const std::string moved = dir.str() + "/moved.bin";
  vfs.rename(path, moved);
  EXPECT_FALSE(vfs.exists(path));
  EXPECT_EQ(vfs.read_all(moved), bytes("hello"));
  vfs.fsync_dir(dir.str());

  vfs.unlink(moved);
  EXPECT_FALSE(vfs.exists(moved));
  EXPECT_THROW(vfs.unlink(moved), IoError);
}

TEST(RealVfsTest, AppendAndSeek) {
  TempDir dir;
  Vfs& vfs = real_vfs();
  const std::string path = dir.str() + "/log.csv";
  write_file(vfs, path, "ab");
  write_file(vfs, path, "cd", Vfs::OpenMode::kAppend);
  EXPECT_EQ(vfs.read_all(path), bytes("abcd"));

  const auto file = vfs.open(path, Vfs::OpenMode::kRead);
  char buf[4] = {};
  ASSERT_EQ(file->read(buf, 2), 2u);
  file->seek(0);
  ASSERT_EQ(file->read(buf, 4), 4u);
  EXPECT_EQ(std::string(buf, 4), "abcd");
}

TEST(RealVfsTest, MkdirIsIdempotent) {
  TempDir dir;
  const std::string sub = dir.str() + "/results";
  real_vfs().mkdir(sub);
  real_vfs().mkdir(sub);  // EEXIST is not an error
  write_file(real_vfs(), sub + "/x.csv", "1");
  EXPECT_TRUE(real_vfs().exists(sub + "/x.csv"));
}

TEST(AtomicFileTest, PublishesOnlyOnCommit) {
  TempDir dir;
  Vfs& vfs = real_vfs();
  const std::string final_path = dir.str() + "/out.bin";
  {
    AtomicFile file(vfs, final_path);
    file.stream() << "payload";
    EXPECT_FALSE(vfs.exists(final_path)) << "visible before commit";
    EXPECT_TRUE(vfs.exists(final_path + ".tmp"));
    file.commit();
  }
  EXPECT_TRUE(vfs.exists(final_path));
  EXPECT_FALSE(vfs.exists(final_path + ".tmp"));
  EXPECT_EQ(vfs.read_all(final_path), bytes("payload"));
}

TEST(AtomicFileTest, AbandonUnlinksTempAndKeepsPrevious) {
  TempDir dir;
  Vfs& vfs = real_vfs();
  const std::string final_path = dir.str() + "/out.bin";
  write_file(vfs, final_path, "old");
  {
    AtomicFile file(vfs, final_path);
    file.stream() << "new-but-abandoned";
  }
  EXPECT_FALSE(vfs.exists(final_path + ".tmp"));
  EXPECT_EQ(vfs.read_all(final_path), bytes("old"));
}

// ---------------------------------------------------------------------------
// FaultyVfs durability model: what survives reboot() is exactly what the
// strict-POSIX rules say should.

TEST(FaultyVfsTest, UnsyncedContentDiesAtReboot) {
  FaultyVfs vfs;
  write_file(vfs, "/d/f", "lost");
  vfs.reboot();
  EXPECT_FALSE(vfs.exists("/d/f")) << "entry was never directory-synced";
}

TEST(FaultyVfsTest, FileFsyncAloneDoesNotMakeTheEntryDurable) {
  FaultyVfs vfs;
  const auto file = vfs.open("/d/f", Vfs::OpenMode::kTruncate);
  file->write("data", 4);
  file->fsync();  // content synced, directory entry not
  file->close();
  vfs.reboot();
  EXPECT_FALSE(vfs.exists("/d/f"))
      << "strict POSIX: a created entry needs fsync_dir on the parent";
}

TEST(FaultyVfsTest, FsyncPlusDirFsyncSurvivesReboot) {
  FaultyVfs vfs;
  {
    const auto file = vfs.open("/d/f", Vfs::OpenMode::kTruncate);
    file->write("a", 1);
    file->fsync();
    file->close();
  }
  vfs.fsync_dir("/d");
  // Content written after the last fsync is volatile again.
  {
    const auto file = vfs.open("/d/f", Vfs::OpenMode::kAppend);
    file->write("b", 1);
    file->close();
  }
  vfs.reboot();
  ASSERT_TRUE(vfs.exists("/d/f"));
  EXPECT_EQ(vfs.read_all("/d/f"), bytes("a"));
}

TEST(FaultyVfsTest, UnlinkNeedsDirFsyncToStick) {
  FaultyVfs vfs;
  write_file(vfs, "/d/f", "x");
  {
    const auto file = vfs.open("/d/f", Vfs::OpenMode::kRead);
    (void)file;
  }
  vfs.sync_all();
  vfs.unlink("/d/f");
  vfs.reboot();
  EXPECT_TRUE(vfs.exists("/d/f")) << "unsynced unlink resurrects at reboot";
  vfs.unlink("/d/f");
  vfs.fsync_dir("/d");
  vfs.reboot();
  EXPECT_FALSE(vfs.exists("/d/f"));
}

TEST(FaultyVfsTest, AtomicPublishIsDurable) {
  FaultyVfs vfs;
  {
    AtomicFile file(vfs, "/d/out.bin");
    file.stream() << "published";
    file.commit();
  }
  vfs.reboot();
  ASSERT_TRUE(vfs.exists("/d/out.bin"));
  EXPECT_FALSE(vfs.exists("/d/out.bin.tmp"));
  EXPECT_EQ(vfs.read_all("/d/out.bin"), bytes("published"));
}

TEST(FaultyVfsTest, EioIsOneShot) {
  FaultyVfs vfs;
  vfs.set_plan({FaultyVfs::FaultKind::kEio, 2});  // op 1 = open, op 2 = write
  const auto file = vfs.open("/f", Vfs::OpenMode::kTruncate);
  try {
    file->write("xx", 2);
    FAIL() << "armed write did not fault";
  } catch (const IoError& e) {
    EXPECT_EQ(e.op(), IoOp::kWrite);
    EXPECT_EQ(e.errno_value(), EIO);
  }
  file->write("ok", 2);  // plan disarmed: the retry succeeds
  EXPECT_EQ(vfs.read_all("/f"), bytes("ok"));
}

TEST(FaultyVfsTest, EnospcCarriesItsErrno) {
  FaultyVfs vfs;
  vfs.set_plan({FaultyVfs::FaultKind::kEnospc, 2});
  const auto file = vfs.open("/f", Vfs::OpenMode::kTruncate);
  try {
    file->write("xx", 2);
    FAIL() << "armed write did not fault";
  } catch (const IoError& e) {
    EXPECT_EQ(e.errno_value(), ENOSPC);
  }
}

TEST(FaultyVfsTest, ShortWriteAppliesHalfThenFails) {
  FaultyVfs vfs;
  vfs.set_plan({FaultyVfs::FaultKind::kShortWrite, 2});
  const auto file = vfs.open("/f", Vfs::OpenMode::kTruncate);
  EXPECT_THROW(file->write("12345678", 8), IoError);
  EXPECT_EQ(vfs.read_all("/f"), bytes("1234"));
  EXPECT_FALSE(vfs.power_is_cut());
}

TEST(FaultyVfsTest, TornWriteMakesHalfDurableAndCutsPower) {
  FaultyVfs vfs;
  vfs.set_plan({FaultyVfs::FaultKind::kTornWrite, 2});
  const auto file = vfs.open("/f", Vfs::OpenMode::kTruncate);
  EXPECT_THROW(file->write("12345678", 8), PowerLoss);
  EXPECT_TRUE(vfs.power_is_cut());
  EXPECT_THROW((void)vfs.exists("/f"), PowerLoss);
  vfs.reboot();
  // The torn half reached the platter even though nothing was fsync'd —
  // that reordering is exactly what the publish discipline must survive.
  ASSERT_TRUE(vfs.exists("/f"));
  EXPECT_EQ(vfs.read_all("/f"), bytes("1234"));
}

TEST(FaultyVfsTest, PowerCutFreezesEverythingUntilReboot) {
  FaultyVfs vfs;
  write_file(vfs, "/f", "durable");
  {
    const auto file = vfs.open("/f", Vfs::OpenMode::kRead);
    (void)file;
  }
  vfs.sync_all();
  vfs.set_plan({FaultyVfs::FaultKind::kPowerCut, 2});
  const auto file = vfs.open("/f", Vfs::OpenMode::kTruncate);  // op 1
  EXPECT_THROW(file->write("x", 1), PowerLoss);                // op 2: cut
  EXPECT_THROW(write_file(vfs, "/g", "y"), PowerLoss);
  EXPECT_THROW(vfs.rename("/f", "/h"), PowerLoss);
  vfs.reboot();
  EXPECT_FALSE(vfs.power_is_cut());
  // The cut op did not execute: the truncate's clear was live-only and the
  // synced content is back.
  EXPECT_EQ(vfs.read_all("/f"), bytes("durable"));
}

TEST(FaultyVfsTest, CountsMutatingOpsDeterministically) {
  FaultyVfs vfs;
  EXPECT_EQ(vfs.mutating_ops(), 0u);
  {
    const auto file = vfs.open("/d/f", Vfs::OpenMode::kTruncate);  // 1
    file->write("x", 1);                                           // 2
    file->fsync();                                                 // 3
    file->close();
  }
  vfs.rename("/d/f", "/d/g");  // 4
  vfs.fsync_dir("/d");         // 5
  vfs.unlink("/d/g");          // 6
  vfs.mkdir("/d/sub");         // 7
  EXPECT_EQ(vfs.mutating_ops(), 7u);

  // Reads never count: a recovery pass must not shift the op numbering of
  // the next crash point.
  write_file(vfs, "/d/h", "zz");
  const std::uint64_t before = vfs.mutating_ops();
  (void)vfs.read_all("/d/h");
  (void)vfs.exists("/d/h");
  (void)vfs.list("/d");
  EXPECT_EQ(vfs.mutating_ops(), before);

  vfs.set_plan({FaultyVfs::FaultKind::kNone, 0});
  EXPECT_EQ(vfs.mutating_ops(), 0u) << "set_plan resets the counter";
}

TEST(FaultyVfsTest, ListReturnsDirectChildrenOnly) {
  FaultyVfs vfs;
  write_file(vfs, "/d/a", "1");
  write_file(vfs, "/d/b", "2");
  write_file(vfs, "/d/sub/c", "3");
  write_file(vfs, "/other/x", "4");
  std::vector<std::string> names = vfs.list("/d");
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace ipregel::io
