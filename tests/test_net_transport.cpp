// Unit tests of the network layer under the sharded runtime's TCP
// transport: nonblocking sockets and listeners, the deterministic
// FaultySocket injector, the FrameStream state machine (partial writes,
// partial reads, death-as-a-state), the Channel's EINTR discipline, and
// a two-transport loopback pair exercising handshake, reconnect-with-
// resync, and the threaded soak the TSan CI step leans on.

#include <gtest/gtest.h>
#include <sys/time.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <optional>
#include <thread>
#include <vector>

#include "net/faulty_socket.hpp"
#include "net/socket.hpp"
#include "net/stream.hpp"
#include "net/wire.hpp"
#include "shard/channel.hpp"
#include "shard/tcp_transport.hpp"

namespace ipregel::net {
namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Establishes one loopback TCP connection and returns (accepted,
/// connected). Fails the test on timeout.
[[nodiscard]] std::pair<Socket, Socket> make_pair() {
  Listener listener = Listener::loopback();
  Socket client = connect_loopback(listener.port());
  const auto start = Clock::now();
  std::optional<Socket> accepted;
  bool client_up = false;
  while ((!accepted.has_value() || !client_up) && seconds_since(start) < 5.0) {
    if (!accepted.has_value()) {
      accepted = listener.accept();
    }
    if (!client_up) {
      const auto state = connect_probe(client);
      EXPECT_NE(state, ConnectState::kFailed) << "loopback connect refused";
      if (state == ConnectState::kFailed) {
        break;
      }
      client_up = state == ConnectState::kUp;
    }
  }
  EXPECT_TRUE(accepted.has_value());
  EXPECT_TRUE(client_up);
  return {std::move(*accepted), std::move(client)};
}

/// Drains `n` bytes from `sock` with a deadline, tolerating kWouldBlock.
[[nodiscard]] std::vector<std::uint8_t> recv_exactly(Socket& sock,
                                                     std::size_t n) {
  std::vector<std::uint8_t> out(n);
  std::size_t have = 0;
  const auto start = Clock::now();
  while (have < n && seconds_since(start) < 5.0) {
    std::size_t done = 0;
    const auto status = sock.recv_some(out.data() + have, n - have, done);
    if (status == IoStatus::kClosed) {
      break;
    }
    have += done;
  }
  out.resize(have);
  return out;
}

// ---------------------------------------------------------------------
// Socket / Listener basics.

TEST(NetSocket, LoopbackRoundTrip) {
  auto [server, client] = make_pair();
  const char msg[] = "frame bytes";
  std::size_t done = 0;
  ASSERT_EQ(client.send_some(msg, sizeof msg, done), IoStatus::kOk);
  ASSERT_EQ(done, sizeof msg);
  const auto got = recv_exactly(server, sizeof msg);
  ASSERT_EQ(got.size(), sizeof msg);
  EXPECT_EQ(std::memcmp(got.data(), msg, sizeof msg), 0);
}

TEST(NetSocket, CleanEofReportsClosed) {
  auto [server, client] = make_pair();
  client.close();
  std::uint8_t buf[8];
  std::size_t done = 0;
  const auto start = Clock::now();
  IoStatus status = IoStatus::kWouldBlock;
  while (status == IoStatus::kWouldBlock && seconds_since(start) < 5.0) {
    status = server.recv_some(buf, sizeof buf, done);
  }
  EXPECT_EQ(status, IoStatus::kClosed);
}

TEST(NetSocket, HardResetReportsClosedToPeer) {
  auto [server, client] = make_pair();
  client.hard_reset();
  std::uint8_t buf[8];
  std::size_t done = 0;
  const auto start = Clock::now();
  IoStatus status = IoStatus::kWouldBlock;
  while (status == IoStatus::kWouldBlock && seconds_since(start) < 5.0) {
    status = server.recv_some(buf, sizeof buf, done);
  }
  // ECONNRESET surfaces as kClosed — peer death is a status, never a
  // throw.
  EXPECT_EQ(status, IoStatus::kClosed);
}

TEST(NetSocket, ConnectToDeadPortFails) {
  std::uint16_t port = 0;
  {
    Listener ephemeral = Listener::loopback();
    port = ephemeral.port();
  }  // closed: nothing listens on `port` now
  Socket sock = connect_loopback(port);
  const auto start = Clock::now();
  ConnectState state = ConnectState::kPending;
  while (state == ConnectState::kPending && seconds_since(start) < 5.0) {
    state = connect_probe(sock);
  }
  EXPECT_EQ(state, ConnectState::kFailed);
  EXPECT_FALSE(sock.valid());
}

// ---------------------------------------------------------------------
// FaultySocket: deterministic counted-op injection.

TEST(NetFaulty, PlannedShortWriteTripsAtTheExactOp) {
  auto [server, client] = make_pair();
  SocketFaultPlan plan;
  plan.faults.push_back(
      {SocketFault::Kind::kShortWrite, /*at_op=*/1, /*arg=*/3});
  FaultySocket faulty(std::move(client), plan);

  const std::uint8_t payload[16] = {1, 2, 3, 4, 5, 6, 7, 8,
                                    9, 10, 11, 12, 13, 14, 15, 16};
  std::size_t done = 0;
  faulty.begin_send_op();  // op 0: untouched
  ASSERT_EQ(faulty.send_some(payload, sizeof payload, done), IoStatus::kOk);
  EXPECT_EQ(done, sizeof payload);

  faulty.begin_send_op();  // op 1: capped at 3 bytes, once
  ASSERT_EQ(faulty.send_some(payload, sizeof payload, done), IoStatus::kOk);
  EXPECT_EQ(done, 3u);
  ASSERT_EQ(faulty.send_some(payload + 3, sizeof payload - 3, done),
            IoStatus::kOk);
  EXPECT_EQ(done, sizeof payload - 3);
}

TEST(NetFaulty, MuteBlocksBothDirectionsUntilLifted) {
  auto [server, client] = make_pair();
  FaultySocket faulty(std::move(client));
  faulty.inject(SocketFault::Kind::kMute);
  ASSERT_TRUE(faulty.muted());

  std::uint8_t buf[4] = {1, 2, 3, 4};
  std::size_t done = 0;
  EXPECT_EQ(faulty.send_some(buf, sizeof buf, done), IoStatus::kWouldBlock);
  EXPECT_EQ(faulty.recv_some(buf, sizeof buf, done), IoStatus::kWouldBlock);

  faulty.unmute();
  EXPECT_EQ(faulty.send_some(buf, sizeof buf, done), IoStatus::kOk);
  EXPECT_EQ(done, sizeof buf);
}

TEST(NetFaulty, ResetMidWriteTearsTheFrame) {
  auto [server, client] = make_pair();
  FaultySocket faulty(std::move(client));
  faulty.inject(SocketFault::Kind::kResetMidWrite, /*arg=*/4);

  const std::uint8_t payload[16] = {};
  std::size_t done = 0;
  (void)faulty.send_some(payload, sizeof payload, done);
  EXPECT_FALSE(faulty.valid());  // connection was reset under the write

  // The peer received at most the torn prefix, then ECONNRESET.
  const auto got = recv_exactly(server, sizeof payload);
  EXPECT_LT(got.size(), sizeof payload);
}

TEST(NetFaulty, CloseBeforeWriteDropsTheConnection) {
  auto [server, client] = make_pair();
  FaultySocket faulty(std::move(client));
  faulty.inject(SocketFault::Kind::kCloseBeforeWrite);

  const std::uint8_t payload[8] = {};
  std::size_t done = 0;
  const auto status = faulty.send_some(payload, sizeof payload, done);
  EXPECT_NE(status, IoStatus::kOk);
  EXPECT_EQ(recv_exactly(server, 1).size(), 0u);  // clean EOF, zero bytes
}

// ---------------------------------------------------------------------
// FrameStream: reassembly under partial I/O, death semantics.

TEST(NetStream, FramesSurviveShortWritesAndShortReads) {
  auto [server, client] = make_pair();
  SocketFaultPlan write_plan;
  // Every frame send is capped to 5-byte pieces for the first 4 ops.
  for (std::uint64_t op = 0; op < 4; ++op) {
    write_plan.faults.push_back({SocketFault::Kind::kShortWrite, op, 5});
  }
  SocketFaultPlan read_plan;
  for (std::uint64_t op = 0; op < 4; ++op) {
    read_plan.faults.push_back({SocketFault::Kind::kShortRead, op, 3});
  }
  FrameStream writer(FaultySocket(std::move(client), write_plan), 1u << 20);
  FrameStream reader(FaultySocket(std::move(server), read_plan), 1u << 20);

  std::vector<std::vector<std::uint8_t>> payloads;
  for (std::uint8_t i = 0; i < 4; ++i) {
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(40 + i * 17));
    for (std::size_t j = 0; j < payload.size(); ++j) {
      payload[j] = static_cast<std::uint8_t>(i * 31 + j);
    }
    payloads.push_back(payload);
    writer.socket().begin_send_op();
    writer.queue(encode_frame(FrameKind::kData, i, i, payload));
  }

  std::size_t got = 0;
  const auto start = Clock::now();
  while (got < payloads.size() && seconds_since(start) < 5.0) {
    ASSERT_TRUE(writer.pump_writes());
    reader.socket().begin_recv_op();
    if (auto frame = reader.poll_frame()) {
      EXPECT_EQ(frame->payload, payloads[got]);
      EXPECT_EQ(frame->header.superstep, got);
      ++got;
    }
  }
  EXPECT_EQ(got, payloads.size());
  EXPECT_TRUE(writer.write_idle());
}

TEST(NetStream, GarbageBytesPoisonTheStream) {
  auto [server, client] = make_pair();
  FrameStream reader(FaultySocket(std::move(server)), 1u << 20);

  // A foreign client (or a desynchronized peer) writes a "header" whose
  // kind is garbage: the reader must throw a typed WireError AND mark
  // itself dead BEFORE the throw — a byte stream cannot resynchronize.
  std::uint8_t garbage[sizeof(WireHeader)];
  std::memset(garbage, 0xEE, sizeof garbage);
  std::size_t done = 0;
  ASSERT_EQ(client.send_some(garbage, sizeof garbage, done), IoStatus::kOk);
  ASSERT_EQ(done, sizeof garbage);

  const auto start = Clock::now();
  bool threw = false;
  while (!threw && seconds_since(start) < 5.0) {
    try {
      if (reader.poll_frame().has_value()) {
        FAIL() << "garbage parsed as a frame";
      }
    } catch (const WireError&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
  EXPECT_TRUE(reader.dead());
  // A dead stream stays dead and quiet: no crash, no frame, no retry.
  EXPECT_FALSE(reader.poll_frame().has_value());
}

TEST(NetStream, PeerEofFlipsDeadWithoutThrowing) {
  auto [server, client] = make_pair();
  FrameStream reader(FaultySocket(std::move(server)), 1u << 20);
  client.close();
  const auto start = Clock::now();
  while (!reader.dead() && seconds_since(start) < 5.0) {
    EXPECT_FALSE(reader.poll_frame().has_value());
  }
  EXPECT_TRUE(reader.dead());
}

// ---------------------------------------------------------------------
// Channel EINTR discipline (the control-plane satellite): a SIGALRM
// storm must neither abort a bounded recv nor extend it.

namespace {
void noop_handler(int) {}
}  // namespace

TEST(ShardChannel, BoundedRecvSurvivesAnInterruptStorm) {
  auto [coord, worker] = shard::Channel::make_pair();

  struct sigaction sa{};
  sa.sa_handler = noop_handler;  // no SA_RESTART: recv really sees EINTR
  sigemptyset(&sa.sa_mask);
  struct sigaction old{};
  ASSERT_EQ(sigaction(SIGALRM, &sa, &old), 0);
  itimerval storm{};
  storm.it_interval.tv_usec = 5000;  // every 5 ms
  storm.it_value.tv_usec = 5000;
  ASSERT_EQ(setitimer(ITIMER_REAL, &storm, nullptr), 0);

  const auto start = Clock::now();
  const auto got = coord.recv(150);
  const double elapsed = seconds_since(start);

  itimerval off{};
  setitimer(ITIMER_REAL, &off, nullptr);
  sigaction(SIGALRM, &old, nullptr);

  EXPECT_FALSE(got.has_value());  // timeout, not an error
  // The absolute-deadline retry can neither cut the wait short (storms
  // used to return early pre-fix) nor stretch it unboundedly.
  EXPECT_GE(elapsed, 0.10);
  EXPECT_LT(elapsed, 2.0);
}

TEST(ShardChannel, DeadPeerIsAStatusNotAnException) {
  auto [coord, worker] = shard::Channel::make_pair();
  worker.close();
  shard::CtrlMsg msg;
  EXPECT_FALSE(coord.send(msg));
  EXPECT_FALSE(coord.recv(0).has_value());
}

// ---------------------------------------------------------------------
// TcpTransport pair in standalone data-plane mode (ctrl_port == 0): the
// handshake, publish/collect, and reconnect-with-resync, single-threaded
// by alternate pumping.

[[nodiscard]] std::vector<std::uint8_t> tagged_payload(std::size_t src,
                                                       std::uint64_t step) {
  std::vector<std::uint8_t> payload(64);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(src * 131 + step * 7 + i);
  }
  return payload;
}

class TcpPair : public ::testing::Test {
 protected:
  void SetUp() override {
    listeners_.push_back(Listener::loopback());
    listeners_.push_back(Listener::loopback());
    ports_ = {listeners_[0].port(), listeners_[1].port()};
  }

  [[nodiscard]] std::unique_ptr<shard::TcpTransport> transport(
      std::size_t me, std::size_t generation = 0) {
    return std::make_unique<shard::TcpTransport>(
        listeners_[me], /*ctrl_port=*/0, ports_, me, /*shards=*/2, generation,
        shard::NetOptions{}, std::vector<shard::NetFault>{});
  }

  /// Publishes one frame from `from_t` (shard `from`) to `to_t`, pumping
  /// both transports until it is accepted and collected; returns the
  /// received frame.
  [[nodiscard]] Frame exchange(shard::TcpTransport& from_t,
                               shard::TcpTransport& to_t, std::size_t from,
                               std::uint64_t step) {
    const auto payload = tagged_payload(from, step);
    const auto start = Clock::now();
    bool published = false;
    while (seconds_since(start) < 10.0) {
      if (!published) {
        published = from_t.try_publish(1 - from, step, payload);
      } else {
        (void)from_t.try_collect(1 - from);  // keep the sender pumping
      }
      if (auto frame = to_t.try_collect(from)) {
        EXPECT_TRUE(published);
        return *frame;
      }
    }
    ADD_FAILURE() << "frame never arrived";
    return {};
  }

  std::vector<Listener> listeners_;
  std::vector<std::uint16_t> ports_;
};

TEST_F(TcpPair, HandshakeThenBidirectionalFrames) {
  auto t0 = transport(0);
  auto t1 = transport(1);
  const Frame up = exchange(*t1, *t0, 1, 3);
  EXPECT_EQ(up.header.src, 1);
  EXPECT_EQ(up.header.superstep, 3u);
  EXPECT_EQ(up.payload, tagged_payload(1, 3));
  const Frame down = exchange(*t0, *t1, 0, 4);
  EXPECT_EQ(down.header.src, 0);
  EXPECT_EQ(down.payload, tagged_payload(0, 4));
  // Both sides report the initial establishment as a resync of the peer.
  EXPECT_EQ(t0->take_resync_peers(), std::vector<std::size_t>{1});
  EXPECT_EQ(t1->take_resync_peers(), std::vector<std::size_t>{0});
  EXPECT_TRUE(t0->take_resync_peers().empty());  // consumed
}

TEST_F(TcpPair, PeerDeathThenReconnectReportsResync) {
  auto t0 = transport(0);
  auto t1 = transport(1);
  (void)exchange(*t1, *t0, 1, 0);
  (void)t0->take_resync_peers();

  // "SIGKILL" the initiator: its sockets close with the process. The
  // respawn (generation 1) dials the same port — the listener fd lives
  // in the parent — and both sides must flag the peer for resync.
  t1.reset();
  t1 = transport(1, /*generation=*/1);
  const Frame frame = exchange(*t1, *t0, 1, 9);
  EXPECT_EQ(frame.payload, tagged_payload(1, 9));

  const auto resynced = t0->take_resync_peers();
  ASSERT_EQ(resynced.size(), 1u);
  EXPECT_EQ(resynced[0], 1u);
  EXPECT_EQ(t1->take_resync_peers(), std::vector<std::size_t>{0});

  // And traffic keeps flowing on the rebuilt link, both directions.
  const Frame down = exchange(*t0, *t1, 0, 10);
  EXPECT_EQ(down.payload, tagged_payload(0, 10));
}

TEST_F(TcpPair, ThreadedSoak) {
  // The TSan CI step's target: two transports on two threads hammer the
  // loopback pair concurrently. Each thread owns its transport outright
  // (one worker process == one transport — the seam's threading model);
  // the only shared state is the kernel socket pair.
  static constexpr std::uint64_t kFrames = 200;
  auto t0 = transport(0);
  auto t1 = transport(1);

  auto drive = [](shard::TcpTransport& mine, std::size_t me) {
    std::uint64_t sent = 0;
    std::uint64_t seen = 0;
    const auto start = Clock::now();
    while ((sent < kFrames || seen < kFrames) &&
           seconds_since(start) < 30.0) {
      if (sent < kFrames &&
          mine.try_publish(1 - me, sent, tagged_payload(me, sent))) {
        ++sent;
      }
      if (const auto frame = mine.try_collect(1 - me)) {
        EXPECT_EQ(frame->header.src, 1 - me);
        EXPECT_EQ(frame->payload,
                  tagged_payload(1 - me, frame->header.superstep));
        ++seen;
      }
    }
    EXPECT_EQ(sent, kFrames);
    EXPECT_EQ(seen, kFrames);
  };

  std::thread peer([&] { drive(*t1, 1); });
  drive(*t0, 0);
  peer.join();
}

}  // namespace
}  // namespace ipregel::net
