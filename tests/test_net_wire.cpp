// The frame wire protocol, tested once for both transports: the shm
// rings and the TCP streams share the same CRC32-sealed envelope
// (shard::FrameHeader IS net::WireHeader), so one round-trip property
// test and one corruption sweep cover the framing of the whole data
// plane. Every corruption mode must be rejected with a TYPED WireError —
// never a crash, never a silent accept.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "net/wire.hpp"
#include "runtime/rng.hpp"
#include "shard/ring.hpp"

namespace ipregel::net {
namespace {

[[nodiscard]] std::vector<std::uint8_t> random_payload(runtime::SplitMix64& rng,
                                                       std::size_t len) {
  std::vector<std::uint8_t> out(len);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next() & 0xFF);
  return out;
}

constexpr std::size_t kMax = 1u << 20;

// ---------------------------------------------------------------------
// Round-trip property: encode → decode is the identity for every frame
// kind, seeded random payloads of varied sizes (including empty — the
// cursor-advance frame of an idle superstep).

TEST(NetWire, EncodeDecodeRoundTripProperty) {
  runtime::SplitMix64 rng(0xF4A3E5EEDULL);
  constexpr FrameKind kKinds[] = {FrameKind::kData, FrameKind::kCtrl,
                                  FrameKind::kHello, FrameKind::kValues};
  constexpr std::size_t kSizes[] = {0, 1, 7, 24, 255, 4096, 65537};
  for (const auto kind : kKinds) {
    for (const std::size_t size : kSizes) {
      const auto payload = random_payload(rng, size);
      const std::uint16_t src = static_cast<std::uint16_t>(rng.next() % 64);
      const std::uint64_t superstep = rng.next() % 1000;
      const auto bytes = encode_frame(kind, src, superstep, payload);
      ASSERT_EQ(bytes.size(), sizeof(WireHeader) + size);

      const Frame frame = decode_frame(bytes, kMax);
      EXPECT_EQ(frame.header.kind, static_cast<std::uint16_t>(kind));
      EXPECT_EQ(frame.header.src, src);
      EXPECT_EQ(frame.header.superstep, superstep);
      EXPECT_EQ(frame.header.payload_len, size);
      EXPECT_EQ(frame.payload, payload);
    }
  }
}

TEST(NetWire, SealThenCheckAgree) {
  runtime::SplitMix64 rng(77);
  for (int i = 0; i < 100; ++i) {
    const auto payload = random_payload(rng, rng.next() % 512);
    WireHeader h;
    h.kind = static_cast<std::uint16_t>(FrameKind::kData);
    h.src = 3;
    h.superstep = static_cast<std::uint64_t>(i);
    seal_header(h, payload);
    EXPECT_NO_THROW(check_frame(h, payload, kMax));
    EXPECT_EQ(h.crc, frame_crc(h, payload));
  }
}

// ---------------------------------------------------------------------
// Corruption sweep. Each mode maps to exactly one WireErrorKind.

[[nodiscard]] std::vector<std::uint8_t> good_frame() {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  return encode_frame(FrameKind::kData, 1, 42, payload);
}

void expect_reject(const std::vector<std::uint8_t>& bytes,
                   WireErrorKind want) {
  try {
    const Frame frame = decode_frame(bytes, kMax);
    FAIL() << "corrupt frame accepted (kind=" << frame.header.kind << ")";
  } catch (const WireError& err) {
    EXPECT_EQ(err.kind(), want) << to_string(err.kind());
  }
}

TEST(NetWire, TruncatedHeaderRejected) {
  const auto bytes = good_frame();
  for (std::size_t keep = 0; keep < sizeof(WireHeader); ++keep) {
    expect_reject(
        {bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(keep)},
        WireErrorKind::kTruncatedHeader);
  }
}

TEST(NetWire, TruncatedPayloadRejected) {
  const auto bytes = good_frame();
  for (std::size_t cut = 1; cut < bytes.size() - sizeof(WireHeader); ++cut) {
    expect_reject(
        {bytes.begin(), bytes.end() - static_cast<std::ptrdiff_t>(cut)},
        WireErrorKind::kTruncatedPayload);
  }
}

TEST(NetWire, EveryFlippedPayloadBitTripsTheCrc) {
  const auto pristine = good_frame();
  for (std::size_t byte = sizeof(WireHeader); byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bytes = pristine;
      bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
      expect_reject(bytes, WireErrorKind::kBadCrc);
    }
  }
}

TEST(NetWire, FlippedCrcFieldBitsRejected) {
  const auto pristine = good_frame();
  const std::size_t crc_off = offsetof(WireHeader, crc);
  for (int bit = 0; bit < 32; ++bit) {
    auto bytes = pristine;
    bytes[crc_off + static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    expect_reject(bytes, WireErrorKind::kBadCrc);
  }
}

TEST(NetWire, CorruptedHeaderFieldsTripTheCrcToo) {
  // The CRC seals the header fields as well: flipping src or superstep
  // (without touching payload or crc) must also be caught.
  const auto pristine = good_frame();
  for (const std::size_t off : {offsetof(WireHeader, src),
                                offsetof(WireHeader, superstep)}) {
    auto bytes = pristine;
    bytes[off] ^= 0x01;
    expect_reject(bytes, WireErrorKind::kBadCrc);
  }
}

TEST(NetWire, OversizedPayloadLenRejectedBeforeAllocation) {
  auto bytes = good_frame();
  WireHeader h{};
  std::memcpy(&h, bytes.data(), sizeof h);
  h.payload_len = 0x40000000u;  // 1 GiB claim on a 9-byte frame
  std::memcpy(bytes.data(), &h, sizeof h);
  expect_reject(bytes, WireErrorKind::kOversizedPayload);

  // check_header alone (the pre-payload gate of the streaming reader)
  // must reject it too — the reader never allocates the claimed buffer.
  EXPECT_THROW(check_header(h, kMax), WireError);
}

TEST(NetWire, UnknownKindRejected) {
  auto bytes = good_frame();
  WireHeader h{};
  std::memcpy(&h, bytes.data(), sizeof h);
  for (const std::uint16_t bad : {std::uint16_t{0}, std::uint16_t{5},
                                  std::uint16_t{0xFFFF}}) {
    h.kind = bad;
    seal_header(h, {bytes.data() + sizeof h, bytes.size() - sizeof h});
    std::memcpy(bytes.data(), &h, sizeof h);
    expect_reject(bytes, WireErrorKind::kBadKind);
  }
}

// ---------------------------------------------------------------------
// Hello handshake validation.

TEST(NetWire, HelloRoundTrip) {
  const auto frame_bytes = encode_hello(HelloRole::kCtrl, 3, 7);
  const Frame frame = decode_frame(frame_bytes, kMax);
  EXPECT_EQ(frame.header.kind, static_cast<std::uint16_t>(FrameKind::kHello));
  const WireHello hello = decode_hello(frame.payload);
  EXPECT_EQ(hello.magic, kHelloMagic);
  EXPECT_EQ(hello.version, kWireVersion);
  EXPECT_EQ(hello.role, static_cast<std::uint16_t>(HelloRole::kCtrl));
  EXPECT_EQ(hello.shard, 3);
  EXPECT_EQ(hello.generation, 7u);
}

TEST(NetWire, ForeignMagicRejected) {
  WireHello hello;
  hello.magic = 0x50545448;  // "HTTP" — a foreign client dialed our port
  std::vector<std::uint8_t> payload(sizeof hello);
  std::memcpy(payload.data(), &hello, sizeof hello);
  try {
    (void)decode_hello(payload);
    FAIL() << "foreign magic accepted";
  } catch (const WireError& err) {
    EXPECT_EQ(err.kind(), WireErrorKind::kBadMagic);
  }
}

TEST(NetWire, FutureVersionRejected) {
  WireHello hello;
  hello.version = kWireVersion + 1;
  std::vector<std::uint8_t> payload(sizeof hello);
  std::memcpy(payload.data(), &hello, sizeof hello);
  try {
    (void)decode_hello(payload);
    FAIL() << "future version accepted";
  } catch (const WireError& err) {
    EXPECT_EQ(err.kind(), WireErrorKind::kBadVersion);
  }
}

TEST(NetWire, ShortHelloRejected) {
  // Shorter than even the v1 prefix: rejected before any field decodes.
  try {
    (void)decode_hello(std::vector<std::uint8_t>(kWireHelloV1Bytes - 1));
    FAIL() << "sub-v1 hello accepted";
  } catch (const WireError& err) {
    EXPECT_EQ(err.kind(), WireErrorKind::kTruncatedPayload);
  }
  // A well-formed v2 hello missing its final byte: the v1 prefix decodes
  // fine, but the declared version promises the epoch/pid fields, so the
  // truncation must still surface typed.
  WireHello hello;
  std::vector<std::uint8_t> payload(sizeof hello - 1);
  std::memcpy(payload.data(), &hello, sizeof hello - 1);
  try {
    (void)decode_hello(payload);
    FAIL() << "truncated v2 hello accepted";
  } catch (const WireError& err) {
    EXPECT_EQ(err.kind(), WireErrorKind::kTruncatedPayload);
  }
}

// ---------------------------------------------------------------------
// The same envelope through the OTHER transport: a shm ring push, then
// bytes corrupted in the shared mapping, must surface the same typed
// rejection on pop. This is the "shared between ring and TCP framing"
// half of the sweep.

TEST(NetWire, RingPopDetectsCorruptedSharedMemory) {
  using shard::ShmArena;
  using shard::SpscRing;
  constexpr std::size_t kCap = 1u << 12;
  ShmArena arena(SpscRing::bytes_required(kCap));
  SpscRing ring;
  ring.attach(arena.base(), kCap, /*initialize=*/true);

  const std::vector<std::uint8_t> payload = {9, 8, 7, 6, 5};
  ASSERT_TRUE(ring.try_push(0, 3, payload));

  // The frame starts at data offset 0 of a fresh ring; flip one payload
  // bit directly in the mapping (a "torn page" / stray write).
  const std::size_t data_off = SpscRing::bytes_required(0);
  arena.at(data_off + sizeof(WireHeader) + 2)[0] ^= 0x10;

  try {
    (void)ring.try_pop();
    FAIL() << "corrupt ring frame consumed";
  } catch (const WireError& err) {
    EXPECT_EQ(err.kind(), WireErrorKind::kBadCrc);
  }
}

TEST(NetWire, RingPopSurvivesCleanFrames) {
  using shard::ShmArena;
  using shard::SpscRing;
  constexpr std::size_t kCap = 1u << 12;
  ShmArena arena(SpscRing::bytes_required(kCap));
  SpscRing ring;
  ring.attach(arena.base(), kCap, /*initialize=*/true);

  runtime::SplitMix64 rng(11);
  for (int i = 0; i < 50; ++i) {
    const auto payload = random_payload(rng, rng.next() % 200);
    ASSERT_TRUE(ring.try_push(1, static_cast<std::uint64_t>(i), payload));
    const auto frame = ring.try_pop();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->payload, payload);
    EXPECT_EQ(frame->header.superstep, static_cast<std::uint64_t>(i));
  }
}

}  // namespace
}  // namespace ipregel::net
