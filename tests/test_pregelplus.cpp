// The Pregel+ baseline must compute the same results as iPregel and the
// serial references, at every cluster size, or the Fig. 8 comparison is
// meaningless.

#include <gtest/gtest.h>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/serial_reference.hpp"
#include "apps/sssp.hpp"
#include "graph/generators.hpp"
#include "pregelplus/cluster.hpp"
#include "test_util.hpp"

namespace {

using ipregel::graph::CsrGraph;
using ipregel::graph::EdgeList;
using ipregel::testing::make_graph;

CsrGraph test_graph() {
  EdgeList e = ipregel::graph::rmat(8, 4, {.seed = 3});
  return make_graph(e);
}

TEST(PregelPlus, SsspMatchesSerialAcrossClusterSizes) {
  // A grid is connected, so the wavefront is guaranteed to spread.
  const CsrGraph g = make_graph(ipregel::graph::grid_2d(12, 17));
  const auto expected = ipregel::apps::serial::sssp_unit(g, 2);
  for (std::size_t nodes : {1u, 2u, 5u}) {
    pregelplus::Cluster<ipregel::apps::Sssp> cluster(
        g, {.source = 2}, {.num_nodes = nodes, .procs_per_node = 2});
    const auto result = cluster.run();
    EXPECT_GT(result.supersteps, 1u);
    const auto values = cluster.collect_values();
    ASSERT_EQ(values.size(), expected.size());
    for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
      ASSERT_EQ(values[s], expected[s]) << "nodes=" << nodes << " slot=" << s;
    }
  }
}

TEST(PregelPlus, HashminMatchesSerial) {
  const CsrGraph g = test_graph();
  const auto expected = ipregel::apps::serial::hashmin(g);
  pregelplus::Cluster<ipregel::apps::Hashmin> cluster(
      g, {}, {.num_nodes = 3, .procs_per_node = 2});
  cluster.run();
  const auto values = cluster.collect_values();
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(values[s], expected[s]) << "slot=" << s;
  }
}

TEST(PregelPlus, PageRankMatchesSerial) {
  const CsrGraph g = test_graph();
  const auto expected = ipregel::apps::serial::pagerank(g, 10);
  pregelplus::Cluster<ipregel::apps::PageRank> cluster(
      g, {.rounds = 10}, {.num_nodes = 2, .procs_per_node = 2});
  cluster.run();
  const auto values = cluster.collect_values();
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_NEAR(values[s], expected[s], 1e-12) << "slot=" << s;
  }
}

TEST(PregelPlus, CrossNodeTrafficOnlyWithMultipleNodes) {
  const CsrGraph g = test_graph();
  pregelplus::Cluster<ipregel::apps::Hashmin> single(
      g, {}, {.num_nodes = 1, .procs_per_node = 2});
  const auto r1 = single.run();
  EXPECT_EQ(r1.cross_node_bytes, 0u);
  EXPECT_DOUBLE_EQ(r1.comm_seconds, 0.0);

  pregelplus::Cluster<ipregel::apps::Hashmin> multi(
      g, {}, {.num_nodes = 4, .procs_per_node = 2});
  const auto r4 = multi.run();
  EXPECT_GT(r4.cross_node_bytes, 0u);
  EXPECT_GT(r4.comm_seconds, 0.0);
  EXPECT_EQ(r1.supersteps, r4.supersteps);
}

TEST(PregelPlus, OutOfMemoryDetection) {
  const CsrGraph g = test_graph();
  pregelplus::Cluster<ipregel::apps::PageRank> cluster(
      g, {.rounds = 5},
      {.num_nodes = 1, .procs_per_node = 2, .node_memory_bytes = 1024});
  const auto result = cluster.run();
  EXPECT_TRUE(result.out_of_memory);
  EXPECT_EQ(result.oom_superstep, 0u);
}

}  // namespace
