// Cross-framework validation of EVERY shipped vertex program on the
// Pregel+ baseline: the same program sources must produce serial-reference
// results under hash partitioning, wrapped messages, and sender-side
// combining — including targeted sends (WeightedSssp) and struct-valued
// vertices (KCore), which exercise baseline paths the headline apps miss.

#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/in_degree.hpp"
#include "apps/kcore.hpp"
#include "apps/max_value.hpp"
#include "apps/serial_reference.hpp"
#include "apps/sssp.hpp"
#include "graph/generators.hpp"
#include "pregelplus/cluster.hpp"
#include "test_util.hpp"

namespace {

using ipregel::graph::CsrGraph;
using ipregel::graph::EdgeList;
using ipregel::testing::make_graph;

constexpr pregelplus::ClusterConfig kSmallCluster{.num_nodes = 3,
                                                  .procs_per_node = 2};

TEST(PregelPlusApps, WeightedSsspUsesTargetedSends) {
  const CsrGraph g = make_graph(
      ipregel::graph::grid_2d(10, 12, {.max_weight = 9, .seed = 21}));
  pregelplus::Cluster<ipregel::apps::WeightedSssp> cluster(
      g, {.source = 0}, kSmallCluster);
  (void)cluster.run();
  const auto expected = ipregel::apps::serial::sssp_weighted(g, 0);
  const auto values = cluster.collect_values();
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(values[s], expected[s]) << "slot " << s;
  }
}

TEST(PregelPlusApps, BfsParentMatchesSerial) {
  const CsrGraph g = make_graph(ipregel::graph::binary_tree(6));
  pregelplus::Cluster<ipregel::apps::BfsParent> cluster(g, {.source = 0},
                                                        kSmallCluster);
  (void)cluster.run();
  const auto expected = ipregel::apps::serial::bfs_parent(g, 0);
  const auto values = cluster.collect_values();
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(values[s], expected[s]) << "slot " << s;
  }
}

TEST(PregelPlusApps, MaxValueMatchesSerial) {
  const CsrGraph g = make_graph(ipregel::graph::rmat(8, 5, {.seed = 41}));
  pregelplus::Cluster<ipregel::apps::MaxValue> cluster(g, {.seed = 13},
                                                       kSmallCluster);
  (void)cluster.run();
  const auto expected = ipregel::apps::serial::max_value(g, 13);
  const auto values = cluster.collect_values();
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(values[s], expected[s]) << "slot " << s;
  }
}

TEST(PregelPlusApps, InDegreeMatchesSerial) {
  const CsrGraph g = make_graph(ipregel::graph::rmat(8, 4, {.seed = 42}));
  pregelplus::Cluster<ipregel::apps::InDegree> cluster(g, {}, kSmallCluster);
  const auto result = cluster.run();
  EXPECT_EQ(result.supersteps, 2u);
  const auto expected = ipregel::apps::serial::in_degree(g);
  const auto values = cluster.collect_values();
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(values[s], expected[s]) << "slot " << s;
  }
}

TEST(PregelPlusApps, KCoreStructValuesSurviveTheWire) {
  // KCore's message is a plain integer but its *value* is a struct; the
  // baseline must partition, compute and gather it like any other value.
  EdgeList e = ipregel::graph::uniform_random(120, 400, 7);
  e.symmetrize();
  const CsrGraph g = make_graph(e);
  pregelplus::Cluster<ipregel::apps::KCore> cluster(g, {.k = 3},
                                                    kSmallCluster);
  (void)cluster.run();
  const auto expected = ipregel::apps::serial::k_core(g, 3);
  const auto values = cluster.collect_values();
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(!values[s].removed, expected[s]) << "slot " << s;
  }
}

TEST(PregelPlusApps, OddWorkerCountsPartitionCleanly) {
  // Worker counts that do not divide the vertex count or the id space.
  const CsrGraph g = make_graph(ipregel::graph::path_graph(101));
  for (const std::size_t procs : {1u, 3u, 7u}) {
    pregelplus::Cluster<ipregel::apps::Sssp> cluster(
        g, {.source = 0}, {.num_nodes = 1, .procs_per_node = procs});
    (void)cluster.run();
    const auto values = cluster.collect_values();
    for (ipregel::graph::vid_t id = 0; id < 101; ++id) {
      ASSERT_EQ(values[g.slot_of(id)], id) << "procs=" << procs;
    }
  }
}

}  // namespace
