// Unit tests for the Pregel+ baseline's building blocks: hash
// partitioning, wrapped-message serialisation, hashmap delivery, and the
// memory/network accounting the Fig. 8 simulation relies on.

#include <gtest/gtest.h>

#include <set>

#include "apps/hashmin.hpp"
#include "apps/sssp.hpp"
#include "graph/generators.hpp"
#include "pregelplus/cluster.hpp"
#include "pregelplus/worker.hpp"
#include "test_util.hpp"

namespace {

using ipregel::graph::CsrGraph;
using ipregel::graph::EdgeList;
using ipregel::graph::vid_t;
using ipregel::testing::make_graph;

TEST(PregelPlusWorker, HashPartitionCoversEveryVertexOnce) {
  const CsrGraph g = make_graph(ipregel::graph::rmat(7, 4, {.seed = 2}));
  constexpr std::size_t kWorkers = 5;
  const ipregel::apps::Hashmin program;
  std::set<vid_t> seen;
  std::size_t total = 0;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    pregelplus::Worker<ipregel::apps::Hashmin> worker(w, kWorkers, program,
                                                      g);
    for (const vid_t id : worker.local_ids()) {
      EXPECT_EQ(id % kWorkers, w) << "vertex on the wrong worker";
      EXPECT_TRUE(seen.insert(id).second) << "vertex owned twice";
    }
    total += worker.num_local_vertices();
  }
  EXPECT_EQ(total, g.num_vertices());
}

TEST(PregelPlusWorker, WireBytesCountIdPlusPayload) {
  // The paper's "messages are wrapped with the vertex identifier of the
  // recipient" overhead: 4 id bytes on top of every payload.
  EXPECT_EQ((pregelplus::Worker<ipregel::apps::Hashmin>::
                 kWireBytesPerMessage),
            sizeof(vid_t) + sizeof(vid_t));
  EXPECT_EQ((pregelplus::Worker<ipregel::apps::Sssp>::kWireBytesPerMessage),
            sizeof(vid_t) + sizeof(std::uint32_t));
}

TEST(PregelPlusWorker, SerializeDeliverRoundTrip) {
  // One worker cluster: superstep 0 of Hashmin broadcasts every id; the
  // buffer for worker 0 must contain one combined message per recipient.
  EdgeList e;
  e.add(0, 1);
  e.add(1, 0);
  e.add(0, 2);
  const CsrGraph g = make_graph(e);
  const ipregel::apps::Hashmin program;
  pregelplus::Worker<ipregel::apps::Hashmin> worker(0, 1, program, g);
  const auto stats = worker.compute_phase(0);
  EXPECT_EQ(stats.executed, 3u);
  EXPECT_EQ(stats.sent, 3u);
  const auto buffer = worker.serialize_for(0);
  EXPECT_EQ(buffer.size(),
            3 * pregelplus::Worker<ipregel::apps::Hashmin>::
                    kWireBytesPerMessage);
  worker.deliver(buffer);
  // Second serialisation is empty: the maps were drained.
  EXPECT_TRUE(worker.serialize_for(0).empty());
}

TEST(PregelPlusWorker, StoreBytesGrowWithThePartition) {
  const CsrGraph small = make_graph(ipregel::graph::path_graph(10));
  const CsrGraph large = make_graph(ipregel::graph::path_graph(1000));
  const ipregel::apps::Hashmin program;
  const pregelplus::MemoryModel model;
  pregelplus::Worker<ipregel::apps::Hashmin> ws(0, 1, program, small);
  pregelplus::Worker<ipregel::apps::Hashmin> wl(0, 1, program, large);
  EXPECT_GT(wl.store_bytes(model), 50 * ws.store_bytes(model));
}

TEST(PregelPlusCluster, WorkerCountIsNodesTimesProcs) {
  pregelplus::ClusterConfig cfg{.num_nodes = 3, .procs_per_node = 2};
  EXPECT_EQ(cfg.num_workers(), 6u);
}

TEST(PregelPlusCluster, SimulatedTimeDecomposesIntoComputePlusComm) {
  const CsrGraph g = make_graph(ipregel::graph::rmat(8, 4, {.seed = 6}));
  pregelplus::Cluster<ipregel::apps::Hashmin> cluster(
      g, {}, {.num_nodes = 2, .procs_per_node = 2});
  const auto r = cluster.run();
  EXPECT_NEAR(r.simulated_seconds, r.compute_seconds + r.comm_seconds,
              1e-9);
  EXPECT_GT(r.compute_seconds, 0.0);
}

TEST(PregelPlusCluster, PerSuperstepBreakdownSumsToTotal) {
  const CsrGraph g = make_graph(ipregel::graph::path_graph(30));
  pregelplus::Cluster<ipregel::apps::Sssp> cluster(
      g, {.source = 0}, {.num_nodes = 2, .procs_per_node = 1});
  const auto r = cluster.run(static_cast<std::size_t>(-1), true);
  ASSERT_EQ(r.per_superstep_seconds.size(), r.supersteps);
  double sum = 0.0;
  for (const double s : r.per_superstep_seconds) {
    sum += s;
  }
  EXPECT_NEAR(sum, r.simulated_seconds, 1e-9);
}

TEST(PregelPlusCluster, SuperstepCapIsHonoured) {
  const CsrGraph g = make_graph(ipregel::graph::path_graph(100));
  pregelplus::Cluster<ipregel::apps::Sssp> cluster(
      g, {.source = 0}, {.num_nodes = 1, .procs_per_node = 2});
  const auto r = cluster.run(5);
  EXPECT_EQ(r.supersteps, 5u);
}

TEST(PregelPlusCluster, MoreNodesMoreCrossTraffic) {
  const CsrGraph g = make_graph(ipregel::graph::rmat(8, 6, {.seed = 10}));
  std::uint64_t previous = 0;
  for (const std::size_t nodes : {2u, 4u, 8u}) {
    pregelplus::Cluster<ipregel::apps::Hashmin> cluster(
        g, {}, {.num_nodes = nodes, .procs_per_node = 2});
    const auto r = cluster.run();
    EXPECT_GT(r.cross_node_bytes, previous)
        << "a finer partition must push more bytes across node boundaries";
    previous = r.cross_node_bytes;
  }
}

TEST(PregelPlusCluster, MessagesMatchIPregelCounts) {
  // Combining is sender-side in Pregel+ and receiver-side in iPregel, but
  // the number of *logical* sends is an application property.
  const CsrGraph g = make_graph(ipregel::graph::rmat(8, 4, {.seed = 12}));
  pregelplus::Cluster<ipregel::apps::Hashmin> cluster(
      g, {}, {.num_nodes = 2, .procs_per_node = 2});
  const auto sim = cluster.run();
  const auto local =
      ipregel::run_version(g, ipregel::apps::Hashmin{},
                           {ipregel::CombinerKind::kSpinlockPush, false});
  EXPECT_EQ(sim.total_messages, local.total_messages);
  EXPECT_EQ(sim.supersteps, local.supersteps);
}

TEST(PregelPlusCluster, EnvironmentOverheadIsChargedPerProcess) {
  const CsrGraph g = make_graph(ipregel::graph::path_graph(10));
  pregelplus::Cluster<ipregel::apps::Hashmin> with_env(
      g, {},
      {.num_nodes = 1, .procs_per_node = 2, .process_env_bytes = 1 << 20});
  pregelplus::Cluster<ipregel::apps::Hashmin> without_env(
      g, {}, {.num_nodes = 1, .procs_per_node = 2, .process_env_bytes = 0});
  const auto a = with_env.run();
  const auto b = without_env.run();
  EXPECT_EQ(a.peak_node_memory_bytes - b.peak_node_memory_bytes,
            2u * (1 << 20))
      << "two processes per node -> twice the redundant environment";
}

}  // namespace
