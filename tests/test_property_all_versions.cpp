// Property sweep: for a matrix of graph families x seeds x addressing
// modes, every framework version of every shipped program must compute the
// same result as the serial reference. This is the paper's central
// software claim — "write their code once, and see it adapted to any
// module version" — tested as a property.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "apps/bfs.hpp"
#include "apps/hashmin.hpp"
#include "apps/in_degree.hpp"
#include "apps/max_value.hpp"
#include "apps/pagerank.hpp"
#include "apps/serial_reference.hpp"
#include "apps/sssp.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::AddressingMode;
using graph::CsrGraph;
using graph::EdgeList;
using ipregel::testing::expect_all_versions_match;
using ipregel::testing::expect_all_versions_near;

struct GraphCase {
  std::string name;
  EdgeList edges;
};

GraphCase make_case(int family, std::uint64_t seed) {
  switch (family) {
    case 0:
      return {"rmat", graph::rmat(8, 5, {.seed = seed})};
    case 1:
      return {"uniform", graph::uniform_random(300, 900, seed)};
    case 2:
      return {"grid", graph::grid_2d(12, 14,
                                     {.removal_fraction = 0.1, .seed = seed})};
    case 3: {
      EdgeList e = graph::uniform_random(150, 220, seed);
      e.symmetrize();
      return {"sym-uniform", std::move(e)};
    }
    default:
      return {"tree", graph::binary_tree(6)};
  }
}

class AllVersionsProperty
    : public ::testing::TestWithParam<
          std::tuple<int, std::uint64_t, AddressingMode>> {
 protected:
  [[nodiscard]] std::string tag() const {
    const auto [family, seed, mode] = GetParam();
    return make_case(family, seed).name + "/seed" + std::to_string(seed) +
           "/mode" + std::to_string(static_cast<int>(mode));
  }

  [[nodiscard]] CsrGraph build() const {
    auto [family, seed, mode] = GetParam();
    GraphCase c = make_case(family, seed);
    // Anchor vertex 0 so direct mapping's id-starts-at-0 precondition holds
    // for every family (random generators may leave vertex 0 edgeless).
    c.edges.add(0, 1);
    c.edges.add(1, 0);
    if (mode != AddressingMode::kDirect) {
      // Exercise non-zero id bases for offset/desolate addressing.
      graph::shift_ids(c.edges, 17);
    }
    return CsrGraph::build(c.edges, {.addressing = mode,
                                     .build_in_edges = true,
                                     .keep_weights = true});
  }
};

TEST_P(AllVersionsProperty, Hashmin) {
  const CsrGraph g = build();
  expect_all_versions_match(g, apps::Hashmin{}, apps::serial::hashmin(g),
                            "hashmin/" + tag());
}

TEST_P(AllVersionsProperty, Sssp) {
  const CsrGraph g = build();
  const graph::vid_t source = g.id_of(g.first_slot());
  expect_all_versions_match(g, apps::Sssp{.source = source},
                            apps::serial::sssp_unit(g, source),
                            "sssp/" + tag());
}

TEST_P(AllVersionsProperty, BfsParent) {
  const CsrGraph g = build();
  const graph::vid_t source = g.id_of(g.first_slot());
  expect_all_versions_match(g, apps::BfsParent{.source = source},
                            apps::serial::bfs_parent(g, source),
                            "bfs/" + tag());
}

TEST_P(AllVersionsProperty, MaxValue) {
  const CsrGraph g = build();
  expect_all_versions_match(g, apps::MaxValue{.seed = 5},
                            apps::serial::max_value(g, 5),
                            "maxvalue/" + tag());
}

TEST_P(AllVersionsProperty, InDegree) {
  const CsrGraph g = build();
  expect_all_versions_match(g, apps::InDegree{}, apps::serial::in_degree(g),
                            "indegree/" + tag());
}

TEST_P(AllVersionsProperty, PageRank) {
  const CsrGraph g = build();
  expect_all_versions_near(g, apps::PageRank{.rounds = 8},
                           apps::serial::pagerank(g, 8), 1e-11,
                           "pagerank/" + tag());
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesSeedsAddressing, AllVersionsProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(1ull, 7ull),
                       ::testing::Values(AddressingMode::kDirect,
                                         AddressingMode::kOffset,
                                         AddressingMode::kDesolate)));

}  // namespace
}  // namespace ipregel
