// Property tests on algorithmic invariants — facts that must hold for any
// correct execution regardless of scheduling, combiner, or thread count.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using graph::EdgeList;
using graph::vid_t;
using ipregel::testing::make_graph;

class SeededGraph : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  [[nodiscard]] CsrGraph random_graph() const {
    EdgeList e = graph::uniform_random(400, 1600, GetParam());
    return make_graph(e);
  }
};

TEST_P(SeededGraph, SsspSatisfiesTheTriangleInequality) {
  // For every edge (u, v): dist(v) <= dist(u) + 1, and every finite
  // distance is witnessed by some in-edge achieving equality.
  const CsrGraph g = random_graph();
  Engine<apps::Sssp, CombinerKind::kSpinlockPush, true> engine(
      g, apps::Sssp{.source = 0});
  (void)engine.run();
  const auto dist = engine.values();
  for (std::size_t u = g.first_slot(); u < g.num_slots(); ++u) {
    if (dist[u] == apps::Sssp::kInfinity) {
      continue;
    }
    for (const vid_t v : g.out_neighbours(u)) {
      ASSERT_LE(dist[g.slot_of(v)], dist[u] + 1)
          << "edge (" << g.id_of(u) << ", " << v << ")";
    }
  }
  for (std::size_t v = g.first_slot(); v < g.num_slots(); ++v) {
    if (dist[v] == apps::Sssp::kInfinity || dist[v] == 0) {
      continue;
    }
    bool witnessed = false;
    for (const vid_t u : g.in_neighbours(v)) {
      if (dist[g.slot_of(u)] + 1 == dist[v]) {
        witnessed = true;
        break;
      }
    }
    ASSERT_TRUE(witnessed) << "dist of " << g.id_of(v)
                           << " has no witnessing predecessor";
  }
}

TEST_P(SeededGraph, HashminLabelsAreComponentMinimaAndClosed) {
  // Every label must (a) not exceed the vertex's own id, (b) be the label
  // of some vertex in the graph, (c) be stable: no edge can improve it.
  const CsrGraph g = random_graph();
  Engine<apps::Hashmin, CombinerKind::kSpinlockPush, true> engine(g);
  (void)engine.run();
  const auto label = engine.values();
  for (std::size_t u = g.first_slot(); u < g.num_slots(); ++u) {
    ASSERT_LE(label[u], g.id_of(u));
    for (const vid_t v : g.out_neighbours(u)) {
      ASSERT_LE(label[g.slot_of(v)], label[u])
          << "fixpoint violated on edge (" << g.id_of(u) << ", " << v << ")";
    }
  }
}

TEST_P(SeededGraph, PageRankValuesAreFiniteAndPositive) {
  const CsrGraph g = random_graph();
  Engine<apps::PageRank, CombinerKind::kPull, false> engine(
      g, apps::PageRank{.rounds = 12});
  (void)engine.run();
  const double base = 0.15 / static_cast<double>(g.num_vertices());
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_TRUE(std::isfinite(engine.values()[s]));
    ASSERT_GE(engine.values()[s], base - 1e-15)
        << "rank below the teleport floor";
    ASSERT_LT(engine.values()[s], 1.0);
  }
}

TEST_P(SeededGraph, ThreadCountDoesNotChangeResults) {
  // Determinism across parallelism: 1-thread and 4-thread executions must
  // agree bit-for-bit for integer programs.
  const CsrGraph g = random_graph();
  Engine<apps::Sssp, CombinerKind::kSpinlockPush, true> one(
      g, apps::Sssp{.source = 0}, EngineOptions{.threads = 1});
  Engine<apps::Sssp, CombinerKind::kSpinlockPush, true> four(
      g, apps::Sssp{.source = 0}, EngineOptions{.threads = 4});
  (void)one.run();
  (void)four.run();
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    ASSERT_EQ(one.values()[s], four.values()[s]);
  }
}

TEST_P(SeededGraph, RepeatedRunsAreIdentical) {
  const CsrGraph g = random_graph();
  Engine<apps::Hashmin, CombinerKind::kPull, true> engine(g);
  const RunResult first = engine.run();
  std::vector<vid_t> snapshot(engine.values().begin(),
                              engine.values().end());
  const RunResult second = engine.run();
  EXPECT_EQ(first.supersteps, second.supersteps);
  EXPECT_EQ(first.total_messages, second.total_messages);
  EXPECT_EQ(first.total_executed_vertices, second.total_executed_vertices);
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    ASSERT_EQ(engine.values()[s], snapshot[s]);
  }
}

TEST_P(SeededGraph, MessageCountIsCombinerIndependent) {
  // The combiner changes how messages are *stored*, never how many are
  // *sent*: all versions must report identical message totals.
  const CsrGraph g = random_graph();
  std::size_t reference = 0;
  bool have_reference = false;
  for (const VersionId v : applicable_versions<apps::Hashmin>()) {
    const RunResult r = run_version(g, apps::Hashmin{}, v);
    if (!have_reference) {
      reference = r.total_messages;
      have_reference = true;
    } else {
      ASSERT_EQ(r.total_messages, reference) << version_name(v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededGraph,
                         ::testing::Values(3ull, 17ull, 252ull, 9000ull));

}  // namespace
}  // namespace ipregel
