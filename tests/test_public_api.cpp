// Compiles against ONLY the umbrella header and exercises the documented
// public API end-to-end — the README quickstart, as a test. If this file
// breaks, the documentation is lying.

#include "ipregel.hpp"

#include <gtest/gtest.h>

#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"

namespace {

TEST(PublicApi, ReadmeQuickstartWorksVerbatim) {
  using namespace ipregel;  // NOLINT(google-build-using-namespace)

  graph::EdgeList edges = graph::cycle_graph(10);
  auto g = graph::CsrGraph::build(
      edges, {.addressing = graph::AddressingMode::kOffset,
              .build_in_edges = true});

  Engine<apps::PageRank, CombinerKind::kPull, /*Bypass=*/false> engine(
      g, apps::PageRank{.rounds = 30});
  RunResult r = engine.run();
  EXPECT_EQ(r.supersteps, 31u);
  EXPECT_NEAR(engine.value_of(7), 0.1, 1e-9);
}

TEST(PublicApi, GeneratorsLoadersEnginesComposeFromUmbrella) {
  using namespace ipregel;  // NOLINT(google-build-using-namespace)

  // generator -> text file -> loader -> engine, umbrella-only symbols.
  graph::EdgeList edges = graph::grid_2d(4, 5);
  const std::string path = ::testing::TempDir() + "ipregel_api.txt";
  graph::save_edge_list_text(edges, path);
  graph::EdgeList loaded = graph::load_edge_list_text(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.size(), edges.size());

  auto g = graph::CsrGraph::build(loaded);
  std::vector<std::uint32_t> values;
  const RunResult r =
      run_version(g, apps::Sssp{.source = 0},
                  VersionId{CombinerKind::kSpinlockPush, true},
                  EngineOptions{}, nullptr, &values);
  EXPECT_GT(r.supersteps, 1u);
  EXPECT_EQ(values[g.slot_of(0)], 0u);
  EXPECT_EQ(values[g.slot_of(19)], 3u + 4u) << "Manhattan corner distance";
}

TEST(PublicApi, StatsAndMemoryToolsAreExported) {
  using namespace ipregel;  // NOLINT(google-build-using-namespace)
  const auto summary =
      runtime::summarize(std::vector<double>{1.0, 1.0, 1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(summary.mean, 1.0);
  EXPECT_GE(runtime::read_peak_rss_bytes(), 0u);
  const std::string report =
      runtime::MemoryTracker::instance().report();  // must link & not throw
  EXPECT_NE(report.find("total"), std::string::npos);
}

}  // namespace
