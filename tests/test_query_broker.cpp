// QueryBroker end-to-end through the QueryService facade: point-query
// correctness against the serial references, lane batching (occupancy),
// admission/deadline shedding via the job-service machinery, and cache
// interaction.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "apps/serial_reference.hpp"
#include "query/service.hpp"
#include "service/shed.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using ipregel::testing::make_graph;
using query::PointQuery;
using query::QueryKind;
using query::QueryResult;
using query::QueryService;
using query::QueryTicket;

QueryService::Config small_config() {
  QueryService::Config cfg;
  cfg.jobs.executors = 1;
  cfg.jobs.team_threads = 1;
  cfg.broker.dispatchers = 1;
  cfg.broker.max_linger_seconds = 0.0;
  cfg.broker.enable_cache = false;
  return cfg;
}

TEST(QueryBroker, DistanceMatchesSerialReference) {
  QueryService svc(small_config());
  svc.publish(make_graph(graph::rmat(9, 6, {.seed = 31})));
  const graph::CsrGraph& g = svc.current_epoch()->graph();
  const std::vector<std::uint32_t> solo = apps::serial::sssp_unit(g, 3);

  const QueryResult r = svc.query_sync(PointQuery{
      .kind = QueryKind::kDistance, .source = 3, .targets = {0, 7, 200}});
  ASSERT_EQ(r.status, QueryResult::Status::kOk) << r.error;
  ASSERT_EQ(r.distances.size(), 3u);
  EXPECT_EQ(r.distances[0], solo[g.slot_of(0)]);
  EXPECT_EQ(r.distances[1], solo[g.slot_of(7)]);
  EXPECT_EQ(r.distances[2], solo[g.slot_of(200)]);
  std::uint64_t reached = 0;
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    if (solo[s] != QueryResult::kUnreachable) {
      ++reached;
    }
  }
  EXPECT_EQ(r.reached, reached);
  EXPECT_EQ(r.batch_occupancy, 1u);
}

TEST(QueryBroker, ReachabilityOnDirectedPath) {
  QueryService svc(small_config());
  svc.publish(make_graph(graph::path_graph(32)));

  const QueryResult forward = svc.query_sync(PointQuery{
      .kind = QueryKind::kReachability, .source = 0, .targets = {31}});
  ASSERT_EQ(forward.status, QueryResult::Status::kOk);
  EXPECT_TRUE(forward.reachable);

  const QueryResult backward = svc.query_sync(PointQuery{
      .kind = QueryKind::kReachability, .source = 31, .targets = {0}});
  EXPECT_FALSE(backward.reachable) << "edges only point forward";

  const QueryResult bogus = svc.query_sync(PointQuery{
      .kind = QueryKind::kReachability, .source = 0, .targets = {9999}});
  EXPECT_FALSE(bogus.reachable) << "an id outside the graph is unreachable";
}

TEST(QueryBroker, PprTopNMatchesSerialReference) {
  QueryService::Config cfg = small_config();
  cfg.broker.ppr_rounds = 12;
  QueryService svc(cfg);
  svc.publish(make_graph(graph::rmat(8, 6, {.seed = 17})));
  const graph::CsrGraph& g = svc.current_epoch()->graph();
  const std::vector<graph::vid_t> seeds{4, 29};
  const std::vector<double> solo =
      apps::serial::ppr(g, seeds, cfg.broker.ppr_rounds,
                        cfg.broker.ppr_damping);

  const QueryResult r = svc.query_sync(PointQuery{
      .kind = QueryKind::kPpr, .seeds = seeds, .top_n = 8});
  ASSERT_EQ(r.status, QueryResult::Status::kOk) << r.error;
  ASSERT_LE(r.top.size(), 8u);
  ASSERT_FALSE(r.top.empty());
  // Every returned rank matches the serial value for that vertex, and the
  // list is rank-descending.
  for (std::size_t i = 0; i < r.top.size(); ++i) {
    EXPECT_NEAR(r.top[i].rank, solo[g.slot_of(r.top[i].id)], 1e-12);
    if (i > 0) {
      EXPECT_GE(r.top[i - 1].rank, r.top[i].rank);
    }
  }
  // Nothing omitted outranks what was returned.
  double max_omitted = 0.0;
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    const graph::vid_t id = g.id_of(s);
    const bool returned =
        std::any_of(r.top.begin(), r.top.end(),
                    [&](const query::RankedVertex& v) { return v.id == id; });
    if (!returned) {
      max_omitted = std::max(max_omitted, solo[s]);
    }
  }
  EXPECT_GE(r.top.back().rank + 1e-12, max_omitted);
}

TEST(QueryBroker, CompatibleQueriesShareOneEngineRun) {
  QueryService::Config cfg = small_config();
  cfg.broker.max_batch = 4;
  // Generous linger so all four queries (submitted from this thread while
  // the single dispatcher waits) land in one batch.
  cfg.broker.max_linger_seconds = 0.25;
  QueryService svc(cfg);
  svc.publish(make_graph(graph::rmat(8, 6, {.seed = 5})));
  const graph::CsrGraph& g = svc.current_epoch()->graph();

  std::vector<QueryTicket> tickets;
  const std::vector<graph::vid_t> sources{1, 9, 33, 70};
  tickets.reserve(sources.size());
  for (const graph::vid_t s : sources) {
    tickets.push_back(svc.query(PointQuery{
        .kind = QueryKind::kDistance, .source = s, .targets = {0}}));
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const QueryResult r = tickets[i].wait();
    ASSERT_EQ(r.status, QueryResult::Status::kOk) << r.error;
    EXPECT_GT(r.batch_occupancy, 1u)
        << "queries queued together must share a run";
    const std::vector<std::uint32_t> solo =
        apps::serial::sssp_unit(g, sources[i]);
    ASSERT_EQ(r.distances.size(), 1u);
    EXPECT_EQ(r.distances[0], solo[g.slot_of(0)])
        << "lane " << i << " must match its solo run exactly";
  }
  const auto stats = svc.broker_stats();
  EXPECT_LT(stats.batches, stats.lanes)
      << "4 queries in fewer runs than queries";
}

TEST(QueryBroker, SameSourceQueriesShareOneEngineLane) {
  QueryService::Config cfg = small_config();
  cfg.broker.max_batch = 8;
  cfg.broker.max_linger_seconds = 0.25;
  QueryService svc(cfg);
  svc.publish(make_graph(graph::rmat(8, 6, {.seed = 11})));
  const graph::CsrGraph& g = svc.current_epoch()->graph();

  // Hot-source traffic: four queries about vertex 5 (different targets,
  // one reachability) plus one about vertex 9 — two lanes of work, not
  // five.
  std::vector<QueryTicket> tickets;
  for (const graph::vid_t t : {0u, 17u, 63u}) {
    tickets.push_back(svc.query(PointQuery{
        .kind = QueryKind::kDistance, .source = 5, .targets = {t}}));
  }
  tickets.push_back(svc.query(PointQuery{
      .kind = QueryKind::kReachability, .source = 5, .targets = {63}}));
  tickets.push_back(svc.query(PointQuery{
      .kind = QueryKind::kDistance, .source = 9, .targets = {0}}));

  const std::vector<std::uint32_t> from5 = apps::serial::sssp_unit(g, 5);
  const std::vector<std::uint32_t> from9 = apps::serial::sssp_unit(g, 9);
  const std::vector<graph::vid_t> targets{0, 17, 63};
  for (std::size_t i = 0; i < 3; ++i) {
    const QueryResult r = tickets[i].wait();
    ASSERT_EQ(r.status, QueryResult::Status::kOk) << r.error;
    ASSERT_EQ(r.distances.size(), 1u);
    EXPECT_EQ(r.distances[0], from5[g.slot_of(targets[i])]);
  }
  const QueryResult reach = tickets[3].wait();
  ASSERT_EQ(reach.status, QueryResult::Status::kOk);
  EXPECT_EQ(reach.reachable,
            from5[g.slot_of(63)] != QueryResult::kUnreachable);
  const QueryResult other = tickets[4].wait();
  ASSERT_EQ(other.status, QueryResult::Status::kOk);
  ASSERT_EQ(other.distances.size(), 1u);
  EXPECT_EQ(other.distances[0], from9[g.slot_of(0)]);

  const auto stats = svc.broker_stats();
  EXPECT_EQ(stats.lanes, 5u);
  EXPECT_LT(stats.engine_lanes, stats.lanes)
      << "same-source members of one batch must share a lane";
  EXPECT_GE(stats.engine_lanes, 2u)
      << "sources 5 and 9 still need distinct lanes";
}

TEST(QueryBroker, MixedFamiliesDoNotBatchTogether) {
  QueryService::Config cfg = small_config();
  cfg.broker.max_batch = 8;
  cfg.broker.max_linger_seconds = 0.1;
  cfg.broker.ppr_rounds = 3;
  QueryService svc(cfg);
  svc.publish(make_graph(graph::rmat(7, 4, {.seed = 2})));

  QueryTicket bfs = svc.query(PointQuery{
      .kind = QueryKind::kDistance, .source = 1, .targets = {2}});
  QueryTicket ppr =
      svc.query(PointQuery{.kind = QueryKind::kPpr, .seeds = {1}});
  const QueryResult rb = bfs.wait();
  const QueryResult rp = ppr.wait();
  ASSERT_EQ(rb.status, QueryResult::Status::kOk);
  ASSERT_EQ(rp.status, QueryResult::Status::kOk);
  EXPECT_EQ(rb.batch_occupancy, 1u);
  EXPECT_EQ(rp.batch_occupancy, 1u);
  EXPECT_EQ(svc.broker_stats().batches, 2u);
}

TEST(QueryBroker, CacheHitSkipsTheEngine) {
  QueryService::Config cfg = small_config();
  cfg.broker.enable_cache = true;
  QueryService svc(cfg);
  svc.publish(make_graph(graph::rmat(7, 4, {.seed = 23})));

  const PointQuery q{
      .kind = QueryKind::kDistance, .source = 2, .targets = {40}};
  const QueryResult first = svc.query_sync(q);
  ASSERT_EQ(first.status, QueryResult::Status::kOk);
  EXPECT_FALSE(first.from_cache);

  const QueryResult second = svc.query_sync(q);
  ASSERT_EQ(second.status, QueryResult::Status::kOk);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.distances, first.distances);
  EXPECT_EQ(second.reached, first.reached);
  EXPECT_EQ(second.epoch_fingerprint, first.epoch_fingerprint);

  const auto stats = svc.broker_stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.batches, 1u) << "the second query must not run";
}

TEST(QueryBroker, PprCacheEntryStaysOAnswerSized) {
  QueryService::Config cfg = small_config();
  cfg.broker.enable_cache = true;
  cfg.broker.ppr_rounds = 5;
  QueryService svc(cfg);
  // A hub-seeded PPR reaches thousands of vertices; the cached payload
  // must still be the top-N slice, not the O(|V|) candidate scratch
  // (capacity included — resize() alone does not give memory back).
  svc.publish(make_graph(graph::rmat(10, 8, {.seed = 3})));

  const QueryResult r = svc.query_sync(
      PointQuery{.kind = QueryKind::kPpr, .seeds = {0, 1}, .top_n = 5});
  ASSERT_EQ(r.status, QueryResult::Status::kOk) << r.error;
  ASSERT_FALSE(r.top.empty());
  EXPECT_LE(r.top.capacity(), 64u) << "returned payload keeps O(|V|) heap";
  const auto cache = svc.cache_stats();
  EXPECT_EQ(cache.entries, 1u);
  EXPECT_LT(cache.bytes, 4096u)
      << "one top-5 entry must charge the ledger O(answer) bytes";
}

TEST(QueryBroker, QueueFullShedsTyped) {
  QueryService::Config cfg = small_config();
  cfg.broker.max_pending = 2;
  // Deep linger with an unfillable batch holds the dispatcher, so pending
  // genuinely accumulates behind the lingering head.
  cfg.broker.max_linger_seconds = 0.5;
  cfg.broker.max_batch = 8;
  QueryService svc(cfg);
  svc.publish(make_graph(graph::path_graph(8)));

  // The first query is grabbed by the dispatcher (lingers); two more fill
  // the pending bound; the fourth must be rejected typed.
  std::vector<QueryTicket> tickets;
  bool rejected = false;
  for (int i = 0; i < 8; ++i) {
    try {
      tickets.push_back(svc.query(PointQuery{.kind = QueryKind::kDistance,
                                             .source = 0,
                                             .targets = {1}}));
    } catch (const service::ShedError& e) {
      EXPECT_EQ(e.reason(), service::ShedReason::kQueueFull);
      rejected = true;
      break;
    }
  }
  EXPECT_TRUE(rejected) << "pending bound must reject typed";
  for (QueryTicket& t : tickets) {
    (void)t.wait();  // all admitted queries still resolve
  }
}

TEST(QueryBroker, ExpiredDeadlineIsShedNotAnswered) {
  QueryService::Config cfg = small_config();
  cfg.broker.max_linger_seconds = 0.2;  // the head query lingers past its
                                        // own 1 ms deadline
  cfg.broker.max_batch = 8;
  QueryService svc(cfg);
  svc.publish(make_graph(graph::path_graph(8)));

  QueryTicket doomed = svc.query(PointQuery{.kind = QueryKind::kDistance,
                                            .source = 0,
                                            .targets = {1},
                                            .deadline_seconds = 0.001});
  const QueryResult r = doomed.wait();
  EXPECT_EQ(r.status, QueryResult::Status::kShed);
  ASSERT_TRUE(r.shed_reason.has_value());
  EXPECT_EQ(*r.shed_reason, service::ShedReason::kDeadlineExpired);
  EXPECT_EQ(svc.broker_stats().shed, 1u);
}

TEST(QueryBroker, SubmitWithoutEpochIsALogicError) {
  QueryService svc(small_config());
  EXPECT_THROW((void)svc.query(PointQuery{}), std::logic_error);
}

TEST(QueryBroker, ShutdownShedsPendingAndRejectsNew) {
  QueryService::Config cfg = small_config();
  cfg.broker.max_linger_seconds = 0.5;
  cfg.broker.max_batch = 1;
  QueryService svc(cfg);
  svc.publish(make_graph(graph::path_graph(8)));

  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(svc.query(PointQuery{
        .kind = QueryKind::kDistance, .source = 0, .targets = {1}}));
  }
  svc.shutdown();
  std::size_t ok = 0;
  std::size_t shut = 0;
  for (QueryTicket& t : tickets) {
    const QueryResult r = t.wait();
    if (r.status == QueryResult::Status::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(r.status, QueryResult::Status::kShed);
      EXPECT_EQ(r.shed_reason.value(), service::ShedReason::kShutdown);
      ++shut;
    }
  }
  EXPECT_EQ(ok + shut, 4u) << "every admitted query resolves exactly once";
  EXPECT_THROW((void)svc.query(PointQuery{.kind = QueryKind::kDistance}),
               service::ShedError);
}

}  // namespace
}  // namespace ipregel
