// ResultCache: LRU eviction under byte and entry caps, whole-epoch
// invalidation, and the memory-ledger charge under
// MemCategory::kQueryCache.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "query/result_cache.hpp"
#include "runtime/memory_tracker.hpp"

namespace ipregel {
namespace {

using query::QueryResult;
using query::ResultCache;

QueryResult result_with_payload(std::size_t distances) {
  QueryResult r;
  r.distances.assign(distances, 7);
  r.reached = distances;
  return r;
}

TEST(ResultCache, HitRefreshesAndMissCounts) {
  ResultCache cache({.max_bytes = 1u << 20, .max_entries = 16});
  EXPECT_FALSE(cache.lookup(1, 100).has_value());
  cache.insert(1, 100, result_with_payload(4));
  const std::optional<QueryResult> hit = cache.lookup(1, 100);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->reached, 4u);
  EXPECT_FALSE(cache.lookup(2, 100).has_value())
      << "same key, different epoch: must miss";
  EXPECT_FALSE(cache.lookup(1, 101).has_value());

  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 0u);
}

TEST(ResultCache, EntryCapEvictsLeastRecentlyUsed) {
  ResultCache cache({.max_bytes = 1u << 20, .max_entries = 3});
  cache.insert(1, 1, result_with_payload(1));
  cache.insert(1, 2, result_with_payload(1));
  cache.insert(1, 3, result_with_payload(1));
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_TRUE(cache.lookup(1, 1).has_value());
  cache.insert(1, 4, result_with_payload(1));

  EXPECT_TRUE(cache.lookup(1, 1).has_value());
  EXPECT_FALSE(cache.lookup(1, 2).has_value()) << "LRU entry must go";
  EXPECT_TRUE(cache.lookup(1, 3).has_value());
  EXPECT_TRUE(cache.lookup(1, 4).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(ResultCache, ByteCapEvictsUntilItFits) {
  // Each 1000-distance payload is ~4 KB; a 10 KB budget holds two.
  ResultCache cache({.max_bytes = 10u << 10, .max_entries = 100});
  cache.insert(1, 1, result_with_payload(1000));
  cache.insert(1, 2, result_with_payload(1000));
  cache.insert(1, 3, result_with_payload(1000));
  const ResultCache::Stats s = cache.stats();
  EXPECT_LE(s.bytes, 10u << 10);
  EXPECT_LT(s.entries, 3u);
  EXPECT_GT(s.evictions, 0u);
  EXPECT_FALSE(cache.lookup(1, 1).has_value())
      << "oldest entry is the byte-pressure victim";
}

TEST(ResultCache, OversizedEntryIsNotCached) {
  ResultCache cache({.max_bytes = 512, .max_entries = 100});
  cache.insert(1, 1, result_with_payload(100000));
  EXPECT_EQ(cache.stats().entries, 0u)
      << "an entry above the whole budget must be rejected, not thrash";
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ResultCache, InvalidateEpochDropsExactlyThatEpoch) {
  ResultCache cache({.max_bytes = 1u << 20, .max_entries = 100});
  cache.insert(1, 1, result_with_payload(4));
  cache.insert(1, 2, result_with_payload(4));
  cache.insert(2, 1, result_with_payload(4));
  cache.invalidate_epoch(1);

  EXPECT_FALSE(cache.lookup(1, 1).has_value());
  EXPECT_FALSE(cache.lookup(1, 2).has_value());
  EXPECT_TRUE(cache.lookup(2, 1).has_value())
      << "other epochs' entries must survive";
  EXPECT_EQ(cache.stats().invalidated, 2u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCache, ReinsertRefreshesInPlace) {
  ResultCache cache({.max_bytes = 1u << 20, .max_entries = 4});
  cache.insert(1, 1, result_with_payload(4));
  cache.insert(1, 1, result_with_payload(8));  // refresh, not duplicate
  EXPECT_EQ(cache.stats().entries, 1u);
  const std::optional<QueryResult> hit = cache.lookup(1, 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->reached, 8u);
}

TEST(ResultCache, ChargesTheMemoryLedgerAndReleasesOnClear) {
  auto& tracker = runtime::MemoryTracker::instance();
  const std::size_t before =
      tracker.bytes(runtime::MemCategory::kQueryCache);
  {
    ResultCache cache({.max_bytes = 1u << 20, .max_entries = 100});
    cache.insert(1, 1, result_with_payload(1000));
    cache.insert(1, 2, result_with_payload(1000));
    const std::size_t charged =
        tracker.bytes(runtime::MemCategory::kQueryCache);
    EXPECT_EQ(charged - before, cache.stats().bytes)
        << "resident bytes must be charged under query-cache";
    EXPECT_GT(cache.stats().bytes, 2000u * sizeof(std::uint32_t));

    cache.invalidate_epoch(1);
    EXPECT_EQ(tracker.bytes(runtime::MemCategory::kQueryCache), before)
        << "invalidation must return the bytes to the ledger";

    cache.insert(2, 1, result_with_payload(10));
    cache.clear();
    EXPECT_EQ(cache.stats().bytes, 0u);
    EXPECT_EQ(cache.stats().entries, 0u);
  }
  // Destruction releases any remaining reservation.
  EXPECT_EQ(tracker.bytes(runtime::MemCategory::kQueryCache), before);
}

}  // namespace
}  // namespace ipregel
