// GraphEpoch / GraphRegistry: atomic epoch swaps, service-owned graph
// lifetime (refcount-zero reclamation, never earlier), and the
// epoch-swap-under-load contract — queries pinned to an epoch finish
// against it, bit-identical to a solo run, even when a new epoch is
// published mid-flight.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "apps/serial_reference.hpp"
#include "query/epoch.hpp"
#include "query/service.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using ipregel::testing::make_graph;
using query::EpochPtr;
using query::GraphRegistry;
using query::PointQuery;
using query::QueryKind;
using query::QueryResult;
using query::QueryService;
using query::QueryTicket;

TEST(GraphRegistry, StartsEmptyAndPublishesAtomically) {
  GraphRegistry registry;
  EXPECT_EQ(registry.current(), nullptr);
  EXPECT_EQ(registry.current_fingerprint(), 0u);
  EXPECT_EQ(registry.published(), 0u);

  EpochPtr replaced;
  const EpochPtr first =
      registry.publish(make_graph(graph::path_graph(16)), &replaced);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(replaced, nullptr) << "nothing to replace on first publish";
  EXPECT_EQ(registry.current(), first);
  EXPECT_EQ(registry.current_fingerprint(), first->fingerprint());
  EXPECT_EQ(registry.published(), 1u);
  EXPECT_EQ(first->id(), 1u);
  EXPECT_EQ(first->stats().num_vertices, 16u);

  const EpochPtr second =
      registry.publish(make_graph(graph::cycle_graph(16)), &replaced);
  EXPECT_EQ(replaced, first) << "publish must hand back the old epoch";
  EXPECT_EQ(registry.current(), second);
  EXPECT_EQ(second->id(), 2u);
  EXPECT_NE(second->fingerprint(), first->fingerprint());
  EXPECT_EQ(registry.published(), 2u);
}

TEST(GraphRegistry, IdenticalContentKeepsTheFingerprint) {
  // A reload that republishes the same bytes is a NEW epoch (new id) with
  // the SAME fingerprint — what keeps the result cache warm across
  // no-op reloads.
  GraphRegistry registry;
  const EpochPtr a = registry.publish(make_graph(graph::path_graph(32)));
  const EpochPtr b = registry.publish(make_graph(graph::path_graph(32)));
  EXPECT_NE(a->id(), b->id());
  EXPECT_EQ(a->fingerprint(), b->fingerprint());
}

TEST(GraphEpoch, GraphOfPinsTheWholeEpoch) {
  GraphRegistry registry;
  EpochPtr epoch = registry.publish(make_graph(graph::path_graph(8)));
  std::weak_ptr<const query::GraphEpoch> alive = epoch;

  std::shared_ptr<const graph::CsrGraph> g = query::graph_of(epoch);
  // Replace the epoch and drop every direct reference: the aliasing graph
  // pointer alone must keep the epoch resident.
  registry.publish(make_graph(graph::cycle_graph(8)));
  epoch.reset();
  ASSERT_FALSE(alive.expired())
      << "an aliasing graph pointer must pin its epoch";
  EXPECT_EQ(g->num_vertices(), 8u);

  g.reset();
  EXPECT_TRUE(alive.expired())
      << "last graph pointer gone: the epoch must be reclaimed";
}

TEST(QueryService, SwapUnderLoadPinnedEpochAnswersBitIdentical) {
  // The acceptance-critical scenario: queries admitted against epoch A
  // keep computing against A after epoch B is published mid-flight, and
  // their answers are bit-identical to a solo run against A. A's memory
  // is reclaimed exactly when the last pinned query drains.
  QueryService::Config cfg;
  cfg.jobs.executors = 1;
  cfg.jobs.team_threads = 1;
  cfg.broker.dispatchers = 1;
  cfg.broker.max_linger_seconds = 0.05;  // hold queries long enough that
                                         // the swap lands while they wait
  cfg.broker.enable_cache = false;
  QueryService svc(cfg);

  // Path graph: distance(0 -> t) = t, so lanes are easy to check and any
  // cross-epoch contamination (the cycle graph below has different
  // distances) is loud.
  EpochPtr a = svc.publish(make_graph(graph::path_graph(64)));
  std::weak_ptr<const query::GraphEpoch> a_alive = a;
  const std::vector<std::uint32_t> solo =
      apps::serial::sssp_unit(a->graph(), 0);

  std::vector<QueryTicket> tickets;
  for (graph::vid_t t = 10; t < 16; ++t) {
    tickets.push_back(svc.query(PointQuery{
        .kind = QueryKind::kDistance, .source = 0, .targets = {t}}));
  }
  // Swap while those queries are pending or running.
  const EpochPtr b = svc.publish(make_graph(graph::cycle_graph(64)));
  ASSERT_NE(b->fingerprint(), a->fingerprint());

  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const QueryResult r = tickets[i].wait();
    const auto target = static_cast<graph::vid_t>(10 + i);
    ASSERT_EQ(r.status, QueryResult::Status::kOk) << r.error;
    EXPECT_EQ(r.epoch_fingerprint, a->fingerprint())
        << "query must answer against its pinned epoch";
    ASSERT_EQ(r.distances.size(), 1u);
    EXPECT_EQ(r.distances[0], solo[a->graph().slot_of(target)]);
    EXPECT_EQ(r.reached, 64u) << "path source 0 reaches everything";
  }

  // Queries submitted after the swap see epoch B.
  const QueryResult after = svc.query_sync(PointQuery{
      .kind = QueryKind::kDistance, .source = 0, .targets = {63}});
  EXPECT_EQ(after.epoch_fingerprint, b->fingerprint());
  EXPECT_EQ(after.distances.at(0), 63u);

  // Drain the service and drop our references: epoch A must be reclaimed
  // only now — refcount zero, not the swap — and must not leak either.
  svc.shutdown();
  EXPECT_FALSE(a_alive.expired()) << "we still hold `a` ourselves";
  a.reset();
  EXPECT_TRUE(a_alive.expired())
      << "drained epoch must be freed at refcount zero";
}

TEST(QueryService, PublishInvalidatesOnlyTheReplacedEpoch) {
  QueryService::Config cfg;
  cfg.jobs.executors = 1;
  cfg.broker.dispatchers = 1;
  cfg.broker.max_linger_seconds = 0.0;
  QueryService svc(cfg);

  svc.publish(make_graph(graph::path_graph(32)));
  const PointQuery q{
      .kind = QueryKind::kDistance, .source = 0, .targets = {5}};
  (void)svc.query_sync(q);
  const QueryResult hit = svc.query_sync(q);
  EXPECT_TRUE(hit.from_cache);

  // Republish identical content: same fingerprint, cache stays warm.
  svc.publish(make_graph(graph::path_graph(32)));
  const QueryResult still_hit = svc.query_sync(q);
  EXPECT_TRUE(still_hit.from_cache)
      << "identical republish must not cold-start the cache";

  // Publish different content: the old fingerprint is invalidated and the
  // new epoch starts cold.
  svc.publish(make_graph(graph::cycle_graph(32)));
  const QueryResult cold = svc.query_sync(q);
  EXPECT_FALSE(cold.from_cache);
  EXPECT_GT(svc.cache_stats().invalidated, 0u)
      << "the replaced epoch's entries must be dropped eagerly";
  EXPECT_GT(svc.cache_stats().insertions, 0u);
}

}  // namespace
}  // namespace ipregel
