// Failure-domain property tests: a throwing compute() must surface as a
// structured RunError — never std::terminate, never a barrier deadlock —
// under every framework version, whether the throwing vertex lives on
// thread 0 or a background team member, and the engine must stay reusable
// for a fresh run afterwards. Watchdog trips and memory-budget breaches
// must each produce their own distinct typed outcome.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/hashmin.hpp"
#include "core/run_error.hpp"
#include "core/runner.hpp"
#include "ft/fault.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using ipregel::testing::make_graph;

/// Hashmin semantics plus a deterministic bomb: compute() throws at one
/// configured (vertex, superstep) while `armed` — shared across engine
/// copies of the program, so a test can defuse it between runs.
struct ThrowyHashmin {
  using value_type = graph::vid_t;
  using message_type = graph::vid_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;

  graph::vid_t throw_id = 0;
  std::size_t throw_superstep = 0;
  std::shared_ptr<std::atomic<bool>> armed =
      std::make_shared<std::atomic<bool>>(true);

  [[nodiscard]] graph::vid_t initial_value(graph::vid_t id) const noexcept {
    return id;
  }

  void compute(auto& ctx) const {
    if (armed->load(std::memory_order_relaxed) &&
        ctx.superstep() == throw_superstep && ctx.id() == throw_id) {
      throw std::runtime_error("boom from compute");
    }
    if (ctx.is_first_superstep()) {
      ctx.broadcast(ctx.value());
    } else {
      graph::vid_t smallest = ctx.value();
      graph::vid_t m = 0;
      while (ctx.get_next_message(m)) {
        smallest = std::min(smallest, m);
      }
      if (smallest < ctx.value()) {
        ctx.value() = smallest;
        ctx.broadcast(smallest);
      }
    }
    ctx.vote_to_halt();
  }

  void resend(auto& ctx) const { ctx.broadcast(ctx.value()); }

  static void combine(graph::vid_t& old,
                      const graph::vid_t& incoming) noexcept {
    old = std::min(old, incoming);
  }
};

/// Every vertex's compute sleeps, so a superstep's wall time is
/// controllable; broadcasts for `rounds` supersteps to keep the run alive.
struct SleepyProgram {
  using value_type = std::uint32_t;
  using message_type = std::uint32_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;

  std::chrono::microseconds nap{2000};
  std::size_t rounds = 1;

  [[nodiscard]] std::uint32_t initial_value(graph::vid_t) const noexcept {
    return 0;
  }

  void compute(auto& ctx) const {
    std::this_thread::sleep_for(nap);
    if (ctx.superstep() + 1 < rounds) {
      ctx.broadcast(1);
    }
    ctx.vote_to_halt();
  }

  static void combine(std::uint32_t& old,
                      const std::uint32_t& incoming) noexcept {
    old += incoming;
  }
};

CsrGraph make_component_graph() {
  graph::EdgeList edges = graph::uniform_random(240, 720, 17);
  edges.symmetrize();
  return make_graph(edges);
}

// --- the satellite property: typed errors across all six versions --------

TEST(RunErrors, ThrowingComputeYieldsTypedErrorAcrossAllVersions) {
  const CsrGraph g = make_component_graph();
  const graph::vid_t first_id = g.id_of(g.first_slot());
  const graph::vid_t middle_id =
      g.id_of(g.first_slot() + (g.num_slots() - g.first_slot()) / 2);
  const graph::vid_t last_id = g.id_of(g.num_slots() - 1);

  for (const VersionId v : applicable_versions<ThrowyHashmin>()) {
    for (const graph::vid_t victim : {first_id, middle_id, last_id}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        SCOPED_TRACE(std::string(version_name(v)) + " / vertex " +
                     std::to_string(victim) + " / " +
                     std::to_string(threads) + " threads");
        EngineOptions options;
        options.threads = threads;
        const RunOutcome outcome = run_version_checked(
            g, ThrowyHashmin{.throw_id = victim}, v, options);
        ASSERT_FALSE(outcome.ok());
        EXPECT_EQ(outcome.error->kind(), RunErrorKind::kUserException);
        EXPECT_EQ(outcome.error->superstep(), 0u);
        ASSERT_TRUE(outcome.error->has_vertex());
        EXPECT_EQ(outcome.error->vertex(), victim);
        EXPECT_NE(std::string(outcome.error->what()).find("boom"),
                  std::string::npos);
        EXPECT_LT(outcome.error->thread(), threads);
      }
    }
  }
}

TEST(RunErrors, BackgroundThreadExceptionNamesItsThread) {
  // Static partitioning puts the last slot on the last team member, so the
  // throw happens on a background thread — the case that used to escape
  // worker_loop straight into std::terminate.
  const CsrGraph g = make_component_graph();
  EngineOptions options;
  options.threads = 4;
  const RunOutcome outcome = run_version_checked(
      g, ThrowyHashmin{.throw_id = g.id_of(g.num_slots() - 1)},
      VersionId{CombinerKind::kSpinlockPush, false}, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind(), RunErrorKind::kUserException);
  EXPECT_EQ(outcome.error->thread(), 3u);
}

TEST(RunErrors, MidRunExceptionCarriesItsSuperstep) {
  // A grid guarantees every vertex receives a message in superstep 1, so a
  // bomb armed for superstep 1 always detonates — including under the
  // selection bypass, whose frontier drives that superstep.
  const CsrGraph g =
      make_graph(graph::grid_2d(8, 8, {.removal_fraction = 0.0}));
  EngineOptions options;
  options.threads = 4;
  for (const VersionId v : applicable_versions<ThrowyHashmin>()) {
    SCOPED_TRACE(version_name(v));
    const RunOutcome outcome = run_version_checked(
        g,
        ThrowyHashmin{.throw_id = g.id_of(g.num_slots() - 1),
                      .throw_superstep = 1},
        v, options);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error->kind(), RunErrorKind::kUserException);
    EXPECT_EQ(outcome.error->superstep(), 1u);
  }
}

TEST(RunErrors, UncheckedRunThrowsRunError) {
  const CsrGraph g = make_component_graph();
  EXPECT_THROW((void)run_version(
                   g, ThrowyHashmin{.throw_id = g.id_of(g.first_slot())},
                   VersionId{CombinerKind::kMutexPush, false}, {}),
               RunError);
}

TEST(RunErrors, EngineRemainsReusableAfterUserException) {
  const CsrGraph g = make_component_graph();
  ThrowyHashmin program{.throw_id = g.id_of(g.first_slot())};
  EngineOptions options;
  options.threads = 4;
  Engine<ThrowyHashmin, CombinerKind::kSpinlockPush, true> engine(
      g, program, options);

  const RunOutcome bad = engine.run_checked();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error->kind(), RunErrorKind::kUserException);

  // Defuse (the engine's program copy shares the flag) and rerun on the
  // SAME engine: run() reinitialises the torn state, and the result must
  // match a clean Hashmin fixpoint.
  program.armed->store(false);
  const RunOutcome good = engine.run_checked();
  ASSERT_TRUE(good.ok());
  EXPECT_GT(good.result.supersteps, 0u);

  std::vector<graph::vid_t> expected;
  (void)run_version(g, apps::Hashmin{},
                    VersionId{CombinerKind::kSpinlockPush, true}, options,
                    nullptr, &expected);
  const auto values = engine.values();
  ASSERT_EQ(values.size(), expected.size());
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    EXPECT_EQ(values[s], expected[s]) << "slot " << s;
  }
}

// --- watchdog -------------------------------------------------------------

TEST(RunErrors, SuperstepWatchdogTripsAsTypedOutcome) {
  const CsrGraph g =
      make_graph(graph::grid_2d(8, 8, {.removal_fraction = 0.0}));
  EngineOptions options;
  options.threads = 2;
  options.guards.superstep_seconds = 0.02;
  // 64 vertices x 2 ms per compute across 2 threads ~= 64 ms of superstep,
  // far past the 20 ms limit.
  const RunOutcome outcome = run_version_checked(
      g, SleepyProgram{.nap = std::chrono::microseconds{2000}, .rounds = 8},
      VersionId{CombinerKind::kSpinlockPush, false}, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind(), RunErrorKind::kSuperstepTimeout);
  EXPECT_FALSE(outcome.error->retryable());
}

TEST(RunErrors, RunWatchdogTripsAsDistinctOutcome) {
  const CsrGraph g =
      make_graph(graph::grid_2d(8, 8, {.removal_fraction = 0.0}));
  EngineOptions options;
  options.threads = 2;
  options.guards.run_seconds = 0.005;  // well under one superstep's cost
  const RunOutcome outcome = run_version_checked(
      g, SleepyProgram{.nap = std::chrono::microseconds{1000}, .rounds = 8},
      VersionId{CombinerKind::kSpinlockPush, false}, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind(), RunErrorKind::kRunTimeout);
}

TEST(RunErrors, GenerousWatchdogDoesNotPerturbResults) {
  const CsrGraph g = make_component_graph();
  EngineOptions guarded;
  guarded.threads = 4;
  guarded.guards.superstep_seconds = 60.0;
  guarded.guards.run_seconds = 300.0;
  std::vector<graph::vid_t> with_guards;
  std::vector<graph::vid_t> without;
  (void)run_version(g, apps::Hashmin{},
                    VersionId{CombinerKind::kSpinlockPush, true}, guarded,
                    nullptr, &with_guards);
  (void)run_version(g, apps::Hashmin{},
                    VersionId{CombinerKind::kSpinlockPush, true},
                    EngineOptions{.threads = 4}, nullptr, &without);
  EXPECT_EQ(with_guards, without);
}

// --- memory budget --------------------------------------------------------

TEST(RunErrors, MemoryBudgetBreachIsTypedAndNotRetryable) {
  const CsrGraph g = make_component_graph();
  EngineOptions options;
  options.threads = 2;
  options.guards.memory_budget_bytes = 1;  // nothing fits in one byte
  const RunOutcome outcome =
      run_version_checked(g, apps::Hashmin{},
                          VersionId{CombinerKind::kSpinlockPush, false},
                          options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind(), RunErrorKind::kMemoryBudget);
  EXPECT_EQ(outcome.error->superstep(), 0u);
  EXPECT_FALSE(outcome.error->retryable());
  EXPECT_NE(std::string(outcome.error->what()).find("budget"),
            std::string::npos);
}

// --- cooperative cancellation ---------------------------------------------

TEST(RunErrors, RaisedCancelTokenTripsAsTypedOutcome) {
  // The serving layer points guards.cancel_token at a per-job flag; a
  // raise from another thread mid-run must surface as kCancelled, not as
  // a timeout or a hang.
  const CsrGraph g =
      make_graph(graph::grid_2d(8, 8, {.removal_fraction = 0.0}));
  std::atomic<bool> token{false};
  EngineOptions options;
  options.threads = 2;
  options.guards.cancel_token = &token;
  std::thread killer([&] {
    // SleepyProgram naps 1 ms per compute: the run comfortably outlives
    // this delay, so the raise lands mid-flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.store(true);
  });
  const RunOutcome outcome = run_version_checked(
      g, SleepyProgram{.nap = std::chrono::microseconds{1000}, .rounds = 64},
      VersionId{CombinerKind::kSpinlockPush, false}, options);
  killer.join();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind(), RunErrorKind::kCancelled);
  EXPECT_FALSE(outcome.error->retryable())
      << "a deliberate cancel must not be retried by the supervisor";
}

TEST(RunErrors, PreRaisedCancelTokenStopsTheRunImmediately) {
  const CsrGraph g = make_component_graph();
  std::atomic<bool> token{true};  // cancelled before the run even starts
  EngineOptions options;
  options.threads = 2;
  options.guards.cancel_token = &token;
  const RunOutcome outcome =
      run_version_checked(g, apps::Hashmin{},
                          VersionId{CombinerKind::kSpinlockPush, false},
                          options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind(), RunErrorKind::kCancelled);
}

TEST(RunErrors, UnraisedCancelTokenDoesNotPerturbResults) {
  const CsrGraph g = make_component_graph();
  std::atomic<bool> token{false};
  EngineOptions watched;
  watched.threads = 4;
  watched.guards.cancel_token = &token;
  std::vector<graph::vid_t> with_token;
  std::vector<graph::vid_t> without;
  (void)run_version(g, apps::Hashmin{},
                    VersionId{CombinerKind::kSpinlockPush, true}, watched,
                    nullptr, &with_token);
  (void)run_version(g, apps::Hashmin{},
                    VersionId{CombinerKind::kSpinlockPush, true},
                    EngineOptions{.threads = 4}, nullptr, &without);
  EXPECT_EQ(with_token, without);
}

// --- injected faults through the checked interface ------------------------

TEST(RunErrors, InjectedFaultSurfacesAsRetryableOutcome) {
  const CsrGraph g = make_component_graph();
  EngineOptions options;
  options.threads = 2;
  options.fault.superstep = 1;
  options.fault.after_compute_calls = 0;
  const RunOutcome outcome =
      run_version_checked(g, apps::Hashmin{},
                          VersionId{CombinerKind::kSpinlockPush, true},
                          options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind(), RunErrorKind::kInjectedFault);
  EXPECT_EQ(outcome.error->superstep(), 1u);
  EXPECT_TRUE(outcome.error->retryable());
}

}  // namespace
}  // namespace ipregel
