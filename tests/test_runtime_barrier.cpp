// Unit tests for runtime::SenseBarrier — the BSP global-synchronisation
// primitive (paper Fig. 1).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/barrier.hpp"

namespace {

using ipregel::runtime::SenseBarrier;

TEST(SenseBarrier, SingleParticipantNeverBlocks) {
  SenseBarrier barrier(1);
  for (int i = 0; i < 100; ++i) {
    barrier.arrive_and_wait();
  }
  EXPECT_EQ(barrier.participants(), 1u);
}

TEST(SenseBarrier, SynchronisesPhases) {
  // No thread may enter phase k+1 before all threads finished phase k —
  // the BSP contract the engine's superstep loop relies on.
  constexpr std::size_t kThreads = 4;
  constexpr int kPhases = 200;
  SenseBarrier barrier(kThreads);
  std::atomic<int> in_phase[kPhases]{};
  std::atomic<bool> violated{false};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int phase = 0; phase < kPhases; ++phase) {
        if (phase > 0 &&
            in_phase[phase - 1].load() != static_cast<int>(kThreads)) {
          violated.store(true);
        }
        in_phase[phase].fetch_add(1);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(violated.load())
      << "a thread entered a phase before the previous one completed";
  for (int phase = 0; phase < kPhases; ++phase) {
    EXPECT_EQ(in_phase[phase].load(), static_cast<int>(kThreads));
  }
}

TEST(SenseBarrier, ReusableAcrossManyGenerations) {
  // Sense reversal must hold over odd and even generations alike.
  constexpr std::size_t kThreads = 2;
  SenseBarrier barrier(kThreads);
  std::atomic<std::int64_t> sum{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) {
        sum.fetch_add(1);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(sum.load(), 20'000);
}

}  // namespace
