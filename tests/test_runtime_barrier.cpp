// Unit tests for runtime::SenseBarrier — the BSP global-synchronisation
// primitive (paper Fig. 1).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/barrier.hpp"

namespace {

using ipregel::runtime::SenseBarrier;

TEST(SenseBarrier, SingleParticipantNeverBlocks) {
  SenseBarrier barrier(1);
  for (int i = 0; i < 100; ++i) {
    barrier.arrive_and_wait();
  }
  EXPECT_EQ(barrier.participants(), 1u);
}

TEST(SenseBarrier, SynchronisesPhases) {
  // No thread may enter phase k+1 before all threads finished phase k —
  // the BSP contract the engine's superstep loop relies on.
  constexpr std::size_t kThreads = 4;
  constexpr int kPhases = 200;
  SenseBarrier barrier(kThreads);
  std::atomic<int> in_phase[kPhases]{};
  std::atomic<bool> violated{false};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int phase = 0; phase < kPhases; ++phase) {
        if (phase > 0 &&
            in_phase[phase - 1].load() != static_cast<int>(kThreads)) {
          violated.store(true);
        }
        in_phase[phase].fetch_add(1);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(violated.load())
      << "a thread entered a phase before the previous one completed";
  for (int phase = 0; phase < kPhases; ++phase) {
    EXPECT_EQ(in_phase[phase].load(), static_cast<int>(kThreads));
  }
}

TEST(SenseBarrier, ReusableAcrossManyGenerations) {
  // Sense reversal must hold over odd and even generations alike.
  constexpr std::size_t kThreads = 2;
  SenseBarrier barrier(kThreads);
  std::atomic<std::int64_t> sum{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) {
        sum.fetch_add(1);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(sum.load(), 20'000);
}

// --- poisoning ------------------------------------------------------------

TEST(SenseBarrier, NormalGenerationsReturnTrue) {
  SenseBarrier barrier(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(barrier.arrive_and_wait());
  }
  EXPECT_FALSE(barrier.poisoned());
}

TEST(SenseBarrier, PoisonReleasesBlockedWaiters) {
  // Two of three participants arrive and block; the third poisons instead
  // of arriving. Both waiters must unblock promptly and observe false —
  // the mechanism that keeps a failing team from deadlocking at the
  // superstep barrier.
  SenseBarrier barrier(3);
  std::atomic<int> released{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < 2; ++t) {
    waiters.emplace_back([&] {
      if (!barrier.arrive_and_wait()) {
        released.fetch_add(1);
      }
    });
  }
  // Give the waiters time to block, then poison. (A sleep here can only
  // make the test less strict, never flaky.)
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  barrier.poison();
  for (auto& t : waiters) {
    t.join();  // would hang forever if poison failed to release them
  }
  EXPECT_EQ(released.load(), 2);
  EXPECT_TRUE(barrier.poisoned());
}

TEST(SenseBarrier, ArrivalAfterPoisonReturnsImmediately) {
  SenseBarrier barrier(4);  // 4 participants, but nobody else ever arrives
  barrier.poison();
  EXPECT_FALSE(barrier.arrive_and_wait());
  EXPECT_FALSE(barrier.arrive_and_wait());
}

// --- re-arm ---------------------------------------------------------------

TEST(SenseBarrier, RearmRestoresSynchronisationAfterPoison) {
  // Poison a generation that was partially arrived (the hard case: the
  // internal countdown is mid-decrement), quiesce the old team, re-arm,
  // and drive a full team through many generations. A stale countdown or
  // sense bit would deadlock here and trip the ctest timeout.
  constexpr std::size_t kThreads = 3;
  SenseBarrier barrier(kThreads);
  std::vector<std::thread> waiters;
  for (int t = 0; t < 2; ++t) {
    waiters.emplace_back([&] { EXPECT_FALSE(barrier.arrive_and_wait()); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  barrier.poison();
  for (auto& t : waiters) {
    t.join();  // the old team has quiesced — rearm's precondition
  }
  ASSERT_TRUE(barrier.poisoned());

  barrier.rearm();
  EXPECT_FALSE(barrier.poisoned());

  std::atomic<std::int64_t> sum{0};
  std::vector<std::thread> team;
  for (std::size_t t = 0; t < kThreads; ++t) {
    team.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        sum.fetch_add(1);
        EXPECT_TRUE(barrier.arrive_and_wait());
      }
    });
  }
  for (auto& t : team) {
    t.join();
  }
  EXPECT_EQ(sum.load(), 500 * static_cast<std::int64_t>(kThreads));
}

TEST(SenseBarrier, ArrivalsFailUntilRearmThenSucceed) {
  SenseBarrier barrier(1);
  barrier.poison();
  EXPECT_FALSE(barrier.arrive_and_wait());
  EXPECT_FALSE(barrier.arrive_and_wait()) << "poison must persist";
  barrier.rearm();
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(barrier.arrive_and_wait());
  }
}

TEST(SenseBarrier, RearmAfterOddGenerationCountStaysCoherent) {
  // rearm resets the sense bit unconditionally; a team that stopped after
  // an odd number of generations (sense flipped) must still synchronise.
  SenseBarrier barrier(2);
  {
    std::thread partner([&] { EXPECT_TRUE(barrier.arrive_and_wait()); });
    EXPECT_TRUE(barrier.arrive_and_wait());
    partner.join();  // exactly one completed generation: sense is flipped
  }
  barrier.rearm();
  {
    std::thread partner([&] { EXPECT_TRUE(barrier.arrive_and_wait()); });
    EXPECT_TRUE(barrier.arrive_and_wait());
    partner.join();
  }
}

TEST(SenseBarrier, PoisonRearmCyclesStayCoherent) {
  // The service re-arms barriers between jobs; alternating failed and
  // healthy generations must never corrupt the countdown.
  SenseBarrier barrier(2);
  for (int cycle = 0; cycle < 100; ++cycle) {
    barrier.poison();
    EXPECT_FALSE(barrier.arrive_and_wait());
    barrier.rearm();
    std::thread partner([&] { EXPECT_TRUE(barrier.arrive_and_wait()); });
    EXPECT_TRUE(barrier.arrive_and_wait());
    partner.join();
  }
}

}  // namespace
