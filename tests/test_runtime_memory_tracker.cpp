// Unit tests for the category-tagged memory accounting the paper-style
// footprint experiments are built on — plus the per-job attribution
// scopes the multi-job service enforces its budgets through.

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "apps/hashmin.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "runtime/memory_tracker.hpp"
#include "test_util.hpp"

namespace {

using ipregel::runtime::MemCategory;
using ipregel::runtime::MemoryScope;
using ipregel::runtime::MemoryTracker;
using ipregel::runtime::MemReservation;
using ipregel::runtime::ScopedMemoryAttribution;
using ipregel::runtime::current_memory_scope;

class MemoryTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override { MemoryTracker::instance().reset(); }
  void TearDown() override { MemoryTracker::instance().reset(); }
};

TEST_F(MemoryTrackerTest, AddSubBalanceToZero) {
  auto& t = MemoryTracker::instance();
  t.add(MemCategory::kLocks, 1000);
  t.add(MemCategory::kMailboxes, 500);
  EXPECT_EQ(t.bytes(MemCategory::kLocks), 1000u);
  EXPECT_EQ(t.bytes(MemCategory::kMailboxes), 500u);
  EXPECT_EQ(t.total(), 1500u);
  t.sub(MemCategory::kLocks, 1000);
  t.sub(MemCategory::kMailboxes, 500);
  EXPECT_EQ(t.total(), 0u);
}

TEST_F(MemoryTrackerTest, PeakTracksHighWaterMark) {
  auto& t = MemoryTracker::instance();
  t.add(MemCategory::kOther, 100);
  t.add(MemCategory::kOther, 300);
  t.sub(MemCategory::kOther, 350);
  t.add(MemCategory::kOther, 10);
  EXPECT_EQ(t.total(), 60u);
  EXPECT_EQ(t.peak(), 400u);
}

TEST_F(MemoryTrackerTest, ResetClearsEverything) {
  auto& t = MemoryTracker::instance();
  t.add(MemCategory::kFrontier, 123);
  t.reset();
  EXPECT_EQ(t.total(), 0u);
  EXPECT_EQ(t.peak(), 0u);
  EXPECT_EQ(t.bytes(MemCategory::kFrontier), 0u);
}

TEST_F(MemoryTrackerTest, ReservationIsRaii) {
  auto& t = MemoryTracker::instance();
  {
    MemReservation r(MemCategory::kOutboxes, 2048);
    EXPECT_EQ(t.bytes(MemCategory::kOutboxes), 2048u);
  }
  EXPECT_EQ(t.bytes(MemCategory::kOutboxes), 0u);
}

TEST_F(MemoryTrackerTest, ReservationMoveTransfersOwnership) {
  auto& t = MemoryTracker::instance();
  MemReservation a(MemCategory::kHashIndex, 100);
  MemReservation b(std::move(a));
  EXPECT_EQ(t.bytes(MemCategory::kHashIndex), 100u)
      << "move must not double-count or release";
  MemReservation c;
  c = std::move(b);
  EXPECT_EQ(t.bytes(MemCategory::kHashIndex), 100u);
}

TEST_F(MemoryTrackerTest, ReservationRebindSwitchesAmounts) {
  auto& t = MemoryTracker::instance();
  MemReservation r(MemCategory::kFrontier, 64);
  r.rebind(MemCategory::kFrontier, 256);
  EXPECT_EQ(t.bytes(MemCategory::kFrontier), 256u);
  r.rebind(MemCategory::kCommBuffers, 32);
  EXPECT_EQ(t.bytes(MemCategory::kFrontier), 0u);
  EXPECT_EQ(t.bytes(MemCategory::kCommBuffers), 32u);
}

TEST_F(MemoryTrackerTest, ReportNamesNonEmptyCategories) {
  auto& t = MemoryTracker::instance();
  t.add(MemCategory::kLocks, 4 << 20);
  const std::string report = t.report();
  EXPECT_NE(report.find("locks"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
  EXPECT_EQ(report.find("outboxes"), std::string::npos)
      << "empty categories must not clutter the report";
  t.reset();
}

TEST_F(MemoryTrackerTest, ConcurrentUpdatesDoNotLoseBytes) {
  auto& t = MemoryTracker::instance();
  constexpr int kThreads = 4;
  constexpr int kOps = 20'000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int op = 0; op < kOps; ++op) {
        t.add(MemCategory::kCommBuffers, 8);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(t.bytes(MemCategory::kCommBuffers),
            static_cast<std::size_t>(kThreads) * kOps * 8);
}

TEST_F(MemoryTrackerTest, ProcessRssIsReadable) {
  // The paper's metric (max resident set size). Some container kernels
  // hide VmHWM; the fallback must still produce a plausible RSS.
  EXPECT_GT(ipregel::runtime::read_peak_rss_bytes(), 1u << 20)
      << "a running test binary occupies more than 1 MiB";
}

TEST_F(MemoryTrackerTest, CategoryNamesAreUniqueAndNonEmpty) {
  std::vector<std::string> names;
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(MemCategory::kCount); ++i) {
    names.emplace_back(to_string(static_cast<MemCategory>(i)));
    EXPECT_FALSE(names.back().empty());
    EXPECT_NE(names.back(), "invalid");
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

// --- per-job attribution scopes -------------------------------------------

TEST_F(MemoryTrackerTest, NoScopeActiveByDefault) {
  EXPECT_EQ(current_memory_scope(), nullptr);
}

TEST_F(MemoryTrackerTest, ScopeTracksTotalAndPeakIndependently) {
  MemoryScope scope;
  scope.add(100);
  scope.add(300);
  scope.sub(250);
  EXPECT_EQ(scope.total(), 150u);
  EXPECT_EQ(scope.peak(), 400u);
  EXPECT_EQ(MemoryTracker::instance().total(), 0u)
      << "a scope is not the global tracker";
  scope.reset();
  EXPECT_EQ(scope.total(), 0u);
  EXPECT_EQ(scope.peak(), 0u);
}

TEST_F(MemoryTrackerTest, ScopeSubSaturatesAtZero) {
  MemoryScope scope;
  scope.add(10);
  scope.sub(100);
  EXPECT_EQ(scope.total(), 0u);
}

TEST_F(MemoryTrackerTest, ScopedAttributionInstallsAndRestoresNested) {
  MemoryScope outer;
  MemoryScope inner;
  {
    ScopedMemoryAttribution a(&outer);
    EXPECT_EQ(current_memory_scope(), &outer);
    {
      ScopedMemoryAttribution b(&inner);
      EXPECT_EQ(current_memory_scope(), &inner);
    }
    EXPECT_EQ(current_memory_scope(), &outer);
    {
      ScopedMemoryAttribution off(nullptr);
      EXPECT_EQ(current_memory_scope(), nullptr);
    }
    EXPECT_EQ(current_memory_scope(), &outer);
  }
  EXPECT_EQ(current_memory_scope(), nullptr);
}

TEST_F(MemoryTrackerTest, AttributionIsThreadLocal) {
  MemoryScope scope;
  const ScopedMemoryAttribution attr(&scope);
  MemoryScope* seen_in_thread = &scope;  // sentinel: must be overwritten
  std::thread t([&] { seen_in_thread = current_memory_scope(); });
  t.join();
  EXPECT_EQ(seen_in_thread, nullptr)
      << "another thread must not inherit this thread's scope";
}

TEST_F(MemoryTrackerTest, ReservationChargesActiveScopeAndGlobal) {
  MemoryScope scope;
  {
    const ScopedMemoryAttribution attr(&scope);
    const MemReservation r(MemCategory::kMailboxes, 2048);
    EXPECT_EQ(scope.total(), 2048u);
    EXPECT_EQ(MemoryTracker::instance().total(), 2048u)
        << "scoped attribution must not bypass the global tracker";
  }
  EXPECT_EQ(scope.total(), 0u);
  EXPECT_EQ(MemoryTracker::instance().total(), 0u);
}

TEST_F(MemoryTrackerTest, ReservationReleasesToItsCaptureScope) {
  // The scope is captured at registration; a reservation outliving the
  // attribution window must still release to the scope it charged.
  MemoryScope scope;
  MemReservation r;
  {
    const ScopedMemoryAttribution attr(&scope);
    r = MemReservation(MemCategory::kLocks, 512);
  }
  EXPECT_EQ(scope.total(), 512u);
  r = MemReservation();  // release with no attribution active
  EXPECT_EQ(scope.total(), 0u);
}

TEST_F(MemoryTrackerTest, RebindRecapturesTheCurrentScope) {
  MemoryScope a;
  MemoryScope b;
  MemReservation r;
  {
    const ScopedMemoryAttribution attr(&a);
    r = MemReservation(MemCategory::kFrontier, 64);
  }
  {
    const ScopedMemoryAttribution attr(&b);
    r.rebind(MemCategory::kFrontier, 256);
  }
  EXPECT_EQ(a.total(), 0u) << "rebind must release to the old scope";
  EXPECT_EQ(b.total(), 256u) << "rebind must charge the new scope";
}

TEST_F(MemoryTrackerTest, MoveTransfersScopeOwnership) {
  MemoryScope scope;
  MemReservation b;
  {
    const ScopedMemoryAttribution attr(&scope);
    MemReservation a(MemCategory::kHashIndex, 100);
    b = std::move(a);
  }
  EXPECT_EQ(scope.total(), 100u) << "move must not release or double-count";
  b = MemReservation();
  EXPECT_EQ(scope.total(), 0u);
}

// --- the satellite regression: concurrent budgeted runs -------------------

TEST_F(MemoryTrackerTest, ForeignAllocationsDoNotTripAScopedBudget) {
  // A co-tenant holding most of the process's tracked memory must not
  // trip a job whose budget is enforced against its own scope. Before
  // scoped attribution, guards.memory_budget_bytes compared against the
  // global tracker and this run would fail instantly.
  using ipregel::CombinerKind;
  using ipregel::EngineOptions;
  using ipregel::RunOutcome;
  using ipregel::VersionId;
  namespace apps = ipregel::apps;
  namespace graph = ipregel::graph;

  const graph::CsrGraph g =
      ipregel::testing::make_graph(graph::grid_2d(16, 16));
  const MemReservation foreign(MemCategory::kMailboxes, 1u << 30);

  MemoryScope scope;
  const ScopedMemoryAttribution attr(&scope);
  EngineOptions options;
  options.threads = 2;
  options.guards.memory_budget_bytes = 1u << 26;  // far under `foreign`
  const RunOutcome outcome = ipregel::run_version_checked(
      g, apps::Hashmin{}, VersionId{CombinerKind::kSpinlockPush, false},
      options);
  ASSERT_TRUE(outcome.ok())
      << "the co-tenant's bytes leaked into this job's budget: "
      << outcome.error->what();
  EXPECT_GT(scope.peak(), 0u);
  EXPECT_LT(scope.peak(), options.guards.memory_budget_bytes);
}

TEST_F(MemoryTrackerTest, TwoConcurrentBudgetedRunsDoNotTripEachOther) {
  using ipregel::CombinerKind;
  using ipregel::EngineOptions;
  using ipregel::RunOutcome;
  using ipregel::VersionId;
  namespace apps = ipregel::apps;
  namespace graph = ipregel::graph;
  const VersionId version{CombinerKind::kSpinlockPush, false};

  const graph::CsrGraph g =
      ipregel::testing::make_graph(graph::grid_2d(24, 24));

  // Measure one run's own footprint through a probe scope.
  std::size_t solo_peak = 0;
  {
    MemoryScope probe;
    const ScopedMemoryAttribution attr(&probe);
    (void)ipregel::run_version(g, apps::Hashmin{}, version,
                               EngineOptions{.threads = 2});
    solo_peak = probe.peak();
  }
  ASSERT_GT(solo_peak, 0u);

  // Budget each run for its own bytes plus headroom — deliberately less
  // than two runs' combined bytes, so any cross-job attribution leak
  // trips kMemoryBudget on whichever run loses the race.
  EngineOptions options;
  options.threads = 2;
  options.guards.memory_budget_bytes = solo_peak + solo_peak / 2;

  std::atomic<int> ready{0};
  std::vector<std::optional<RunOutcome>> outcomes(2);
  std::vector<std::thread> jobs;
  for (int j = 0; j < 2; ++j) {
    jobs.emplace_back([&, j] {
      MemoryScope scope;
      const ScopedMemoryAttribution attr(&scope);
      ready.fetch_add(1);
      while (ready.load() < 2) {
        std::this_thread::yield();  // maximise engine-lifetime overlap
      }
      outcomes[static_cast<std::size_t>(j)] = ipregel::run_version_checked(
          g, apps::Hashmin{}, version, options);
    });
  }
  for (auto& t : jobs) {
    t.join();
  }
  for (int j = 0; j < 2; ++j) {
    ASSERT_TRUE(outcomes[static_cast<std::size_t>(j)].has_value());
    EXPECT_TRUE(outcomes[static_cast<std::size_t>(j)]->ok())
        << "run " << j << " tripped on its neighbour's memory: "
        << outcomes[static_cast<std::size_t>(j)]->error->what();
  }
}

#ifdef NDEBUG
// The saturating behaviour is only observable with assertions off: a debug
// build intentionally aborts on over-release (it is always an accounting
// bug), while a release build clamps at zero instead of wrapping a
// size_t — an underflowed "18 exabytes tracked" would make every memory
// report garbage and instantly trip any configured memory budget.
TEST_F(MemoryTrackerTest, OverReleaseSaturatesAtZeroInRelease) {
  auto& t = MemoryTracker::instance();
  t.add(MemCategory::kVertexValues, 100);
  t.sub(MemCategory::kVertexValues, 250);
  EXPECT_EQ(t.bytes(MemCategory::kVertexValues), 0u);
  EXPECT_EQ(t.total(), 0u);
  // The tracker stays usable after clamping.
  t.add(MemCategory::kVertexValues, 40);
  EXPECT_EQ(t.total(), 40u);
}

TEST_F(MemoryTrackerTest, SaturationClampsEachCounterIndependently) {
  auto& t = MemoryTracker::instance();
  t.add(MemCategory::kLocks, 10);
  t.add(MemCategory::kMailboxes, 500);
  t.sub(MemCategory::kLocks, 100);
  // The over-released category clamps at zero; other categories are
  // untouched. The total saturates by the full release amount (both
  // counters are independently protected from wrap-around).
  EXPECT_EQ(t.bytes(MemCategory::kLocks), 0u);
  EXPECT_EQ(t.bytes(MemCategory::kMailboxes), 500u);
  EXPECT_EQ(t.total(), 410u);
}
#endif  // NDEBUG

}  // namespace
