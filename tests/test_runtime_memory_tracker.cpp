// Unit tests for the category-tagged memory accounting the paper-style
// footprint experiments are built on.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "runtime/memory_tracker.hpp"

namespace {

using ipregel::runtime::MemCategory;
using ipregel::runtime::MemoryTracker;
using ipregel::runtime::MemReservation;

class MemoryTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override { MemoryTracker::instance().reset(); }
  void TearDown() override { MemoryTracker::instance().reset(); }
};

TEST_F(MemoryTrackerTest, AddSubBalanceToZero) {
  auto& t = MemoryTracker::instance();
  t.add(MemCategory::kLocks, 1000);
  t.add(MemCategory::kMailboxes, 500);
  EXPECT_EQ(t.bytes(MemCategory::kLocks), 1000u);
  EXPECT_EQ(t.bytes(MemCategory::kMailboxes), 500u);
  EXPECT_EQ(t.total(), 1500u);
  t.sub(MemCategory::kLocks, 1000);
  t.sub(MemCategory::kMailboxes, 500);
  EXPECT_EQ(t.total(), 0u);
}

TEST_F(MemoryTrackerTest, PeakTracksHighWaterMark) {
  auto& t = MemoryTracker::instance();
  t.add(MemCategory::kOther, 100);
  t.add(MemCategory::kOther, 300);
  t.sub(MemCategory::kOther, 350);
  t.add(MemCategory::kOther, 10);
  EXPECT_EQ(t.total(), 60u);
  EXPECT_EQ(t.peak(), 400u);
}

TEST_F(MemoryTrackerTest, ResetClearsEverything) {
  auto& t = MemoryTracker::instance();
  t.add(MemCategory::kFrontier, 123);
  t.reset();
  EXPECT_EQ(t.total(), 0u);
  EXPECT_EQ(t.peak(), 0u);
  EXPECT_EQ(t.bytes(MemCategory::kFrontier), 0u);
}

TEST_F(MemoryTrackerTest, ReservationIsRaii) {
  auto& t = MemoryTracker::instance();
  {
    MemReservation r(MemCategory::kOutboxes, 2048);
    EXPECT_EQ(t.bytes(MemCategory::kOutboxes), 2048u);
  }
  EXPECT_EQ(t.bytes(MemCategory::kOutboxes), 0u);
}

TEST_F(MemoryTrackerTest, ReservationMoveTransfersOwnership) {
  auto& t = MemoryTracker::instance();
  MemReservation a(MemCategory::kHashIndex, 100);
  MemReservation b(std::move(a));
  EXPECT_EQ(t.bytes(MemCategory::kHashIndex), 100u)
      << "move must not double-count or release";
  MemReservation c;
  c = std::move(b);
  EXPECT_EQ(t.bytes(MemCategory::kHashIndex), 100u);
}

TEST_F(MemoryTrackerTest, ReservationRebindSwitchesAmounts) {
  auto& t = MemoryTracker::instance();
  MemReservation r(MemCategory::kFrontier, 64);
  r.rebind(MemCategory::kFrontier, 256);
  EXPECT_EQ(t.bytes(MemCategory::kFrontier), 256u);
  r.rebind(MemCategory::kCommBuffers, 32);
  EXPECT_EQ(t.bytes(MemCategory::kFrontier), 0u);
  EXPECT_EQ(t.bytes(MemCategory::kCommBuffers), 32u);
}

TEST_F(MemoryTrackerTest, ReportNamesNonEmptyCategories) {
  auto& t = MemoryTracker::instance();
  t.add(MemCategory::kLocks, 4 << 20);
  const std::string report = t.report();
  EXPECT_NE(report.find("locks"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
  EXPECT_EQ(report.find("outboxes"), std::string::npos)
      << "empty categories must not clutter the report";
  t.reset();
}

TEST_F(MemoryTrackerTest, ConcurrentUpdatesDoNotLoseBytes) {
  auto& t = MemoryTracker::instance();
  constexpr int kThreads = 4;
  constexpr int kOps = 20'000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int op = 0; op < kOps; ++op) {
        t.add(MemCategory::kCommBuffers, 8);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(t.bytes(MemCategory::kCommBuffers),
            static_cast<std::size_t>(kThreads) * kOps * 8);
}

TEST_F(MemoryTrackerTest, ProcessRssIsReadable) {
  // The paper's metric (max resident set size). Some container kernels
  // hide VmHWM; the fallback must still produce a plausible RSS.
  EXPECT_GT(ipregel::runtime::read_peak_rss_bytes(), 1u << 20)
      << "a running test binary occupies more than 1 MiB";
}

TEST_F(MemoryTrackerTest, CategoryNamesAreUniqueAndNonEmpty) {
  std::vector<std::string> names;
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(MemCategory::kCount); ++i) {
    names.emplace_back(to_string(static_cast<MemCategory>(i)));
    EXPECT_FALSE(names.back().empty());
    EXPECT_NE(names.back(), "invalid");
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

#ifdef NDEBUG
// The saturating behaviour is only observable with assertions off: a debug
// build intentionally aborts on over-release (it is always an accounting
// bug), while a release build clamps at zero instead of wrapping a
// size_t — an underflowed "18 exabytes tracked" would make every memory
// report garbage and instantly trip any configured memory budget.
TEST_F(MemoryTrackerTest, OverReleaseSaturatesAtZeroInRelease) {
  auto& t = MemoryTracker::instance();
  t.add(MemCategory::kVertexValues, 100);
  t.sub(MemCategory::kVertexValues, 250);
  EXPECT_EQ(t.bytes(MemCategory::kVertexValues), 0u);
  EXPECT_EQ(t.total(), 0u);
  // The tracker stays usable after clamping.
  t.add(MemCategory::kVertexValues, 40);
  EXPECT_EQ(t.total(), 40u);
}

TEST_F(MemoryTrackerTest, SaturationClampsEachCounterIndependently) {
  auto& t = MemoryTracker::instance();
  t.add(MemCategory::kLocks, 10);
  t.add(MemCategory::kMailboxes, 500);
  t.sub(MemCategory::kLocks, 100);
  // The over-released category clamps at zero; other categories are
  // untouched. The total saturates by the full release amount (both
  // counters are independently protected from wrap-around).
  EXPECT_EQ(t.bytes(MemCategory::kLocks), 0u);
  EXPECT_EQ(t.bytes(MemCategory::kMailboxes), 500u);
  EXPECT_EQ(t.total(), 410u);
}
#endif  // NDEBUG

}  // namespace
