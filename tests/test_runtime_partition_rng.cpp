// Unit and property tests for the static partitioner (the paper's "equal
// share of the vertices") and the deterministic RNG stack.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "runtime/partition.hpp"
#include "runtime/rng.hpp"

namespace {

using ipregel::runtime::block_partition;
using ipregel::runtime::ceil_div;
using ipregel::runtime::Range;
using ipregel::runtime::SplitMix64;
using ipregel::runtime::Xoshiro256;

class BlockPartitionProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(BlockPartitionProperty, CoversDisjointlyAndBalanced) {
  const auto [n, parts] = GetParam();
  std::size_t covered = 0;
  std::size_t expected_begin = 0;
  std::size_t min_size = n + 1;
  std::size_t max_size = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const Range r = block_partition(n, parts, p);
    EXPECT_EQ(r.begin, expected_begin) << "blocks must tile [0, n)";
    expected_begin = r.end;
    covered += r.size();
    min_size = std::min(min_size, r.size());
    max_size = std::max(max_size, r.size());
  }
  EXPECT_EQ(covered, n);
  EXPECT_EQ(expected_begin, n);
  // The paper's load-balance premise: shares differ by at most one vertex.
  EXPECT_LE(max_size - min_size, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockPartitionProperty,
    ::testing::Values(std::make_tuple(0, 1), std::make_tuple(1, 1),
                      std::make_tuple(1, 8), std::make_tuple(7, 3),
                      std::make_tuple(100, 7), std::make_tuple(1000, 1),
                      std::make_tuple(12345, 16), std::make_tuple(64, 64),
                      std::make_tuple(63, 64), std::make_tuple(65, 64)));

TEST(BlockPartition, ZeroPartsFallsBackToWholeRange) {
  const Range r = block_partition(10, 0, 0);
  EXPECT_EQ(r.begin, 0u);
  EXPECT_EQ(r.end, 10u);
}

TEST(CeilDiv, RoundsUp) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(8, 4), 2u);
  EXPECT_EQ(ceil_div(7, 0), 0u) << "guarded against zero chunk";
}

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a() == b() ? 1 : 0;
  }
  EXPECT_LT(equal, 4) << "streams from different seeds must look unrelated";
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256 rng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1'000'000ull}) {
    for (int i = 0; i < 1'000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kDraws = 80'000;
  int histogram[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++histogram[rng.next_below(kBuckets)];
  }
  for (const int h : histogram) {
    EXPECT_NEAR(h, kDraws / static_cast<int>(kBuckets),
                kDraws / static_cast<int>(kBuckets) / 10)
        << "bucket deviates more than 10% from uniform";
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(13);
  double min = 1.0;
  double max = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    min = std::min(min, x);
    max = std::max(max, x);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(Rng, Mix64IsAPermutationProbe) {
  // Distinct inputs must produce distinct outputs (mix64 is bijective);
  // probe a window.
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    outputs.insert(ipregel::runtime::mix64(i));
  }
  EXPECT_EQ(outputs.size(), 10'000u);
}

}  // namespace
