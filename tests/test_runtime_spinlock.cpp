// Unit tests for runtime::SpinLock — the 4-byte busy-waiting lock of the
// paper's section 6.1.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/spin_lock.hpp"

namespace {

using ipregel::runtime::SpinLock;

TEST(SpinLock, IsFourBytes) {
  // The paper's whole memory argument: 40-byte mutex -> 4-byte spinlock.
  EXPECT_EQ(sizeof(SpinLock), 4u);
  EXPECT_EQ(sizeof(std::mutex), 40u) << "glibc x86-64 mutex, as in the paper";
}

TEST(SpinLock, LockUnlockSingleThread) {
  SpinLock lock;
  lock.lock();
  lock.unlock();
  lock.lock();  // reacquirable after release
  lock.unlock();
}

TEST(SpinLock, TryLockReflectsState) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock()) << "held lock must not be reacquired";
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLock, WorksWithLockGuard) {
  SpinLock lock;
  {
    std::lock_guard<SpinLock> guard(lock);
    EXPECT_FALSE(lock.try_lock());
  }
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLock, ProvidesMutualExclusion) {
  // A non-atomic counter incremented under the lock must not lose updates.
  constexpr int kThreads = 4;
  constexpr int kIncrements = 50'000;
  SpinLock lock;
  std::int64_t counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        lock.lock();
        counter += 1;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIncrements);
}

TEST(SpinLock, PublishesProtectedWrites) {
  // Acquire/release ordering: a value written under the lock must be
  // visible to the next acquirer (the combiner correctness requirement).
  SpinLock lock;
  int shared = 0;
  std::atomic<bool> ready{false};
  std::thread writer([&] {
    lock.lock();
    shared = 42;
    lock.unlock();
    ready.store(true, std::memory_order_release);
  });
  while (!ready.load(std::memory_order_acquire)) {
  }
  lock.lock();
  EXPECT_EQ(shared, 42);
  lock.unlock();
  writer.join();
}

}  // namespace
