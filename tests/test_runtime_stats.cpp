// Unit tests for the paper's measurement methodology (section 7.1.2):
// repeat runs until the 99%-confidence margin of error is below 1% of the
// mean.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "runtime/stats.hpp"

namespace {

using ipregel::runtime::PrecisionOptions;
using ipregel::runtime::run_until_precise;
using ipregel::runtime::student_t_99;
using ipregel::runtime::summarize;

TEST(Stats, SummarizeConstantSample) {
  const std::vector<double> xs(10, 3.5);
  const auto s = summarize(xs);
  EXPECT_EQ(s.n, 10u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci_half_width, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
}

TEST(Stats, SummarizeKnownSample) {
  // Hand-computed: mean 5, sample stddev sqrt(10/3).
  const std::vector<double> xs{3.0, 4.0, 5.0, 6.0, 7.0};
  const auto s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(10.0 / 4.0), 1e-12);
  // CI half width = t(4, 99%) * stddev / sqrt(5).
  EXPECT_NEAR(s.ci_half_width, 4.604 * s.stddev / std::sqrt(5.0), 1e-9);
  EXPECT_DOUBLE_EQ(s.min, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(Stats, SummarizeEmptyAndSingle) {
  EXPECT_EQ(summarize({}).n, 0u);
  const std::vector<double> one{2.0};
  const auto s = summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.ci_half_width, 0.0) << "no CI from a single sample";
}

TEST(Stats, StudentTTableIsMonotoneDecreasing) {
  // t-critical values shrink towards the normal quantile as dof grows.
  for (std::size_t dof = 1; dof < 40; ++dof) {
    EXPECT_GE(student_t_99(dof), student_t_99(dof + 1)) << "dof " << dof;
  }
  EXPECT_NEAR(student_t_99(1), 63.657, 1e-3);
  EXPECT_NEAR(student_t_99(4), 4.604, 1e-3);
  EXPECT_NEAR(student_t_99(1000), 2.576, 1e-3) << "normal asymptote";
}

TEST(Stats, RunUntilPreciseStopsAtMinRunsForStableSamples) {
  int calls = 0;
  const auto result = run_until_precise(
      [&] {
        ++calls;
        return 1.0;  // perfectly stable: margin is 0 after min_runs
      },
      PrecisionOptions{.min_runs = 5, .max_runs = 50});
  EXPECT_EQ(calls, 5) << "the paper runs 5 times before checking the margin";
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.samples.size(), 5u);
}

TEST(Stats, RunUntilPreciseKeepsSamplingNoisyMeasurements) {
  // Alternating 1/2: relative margin stays far above 1%; must hit the cap.
  int calls = 0;
  const auto result = run_until_precise(
      [&] { return (++calls % 2 == 0) ? 2.0 : 1.0; },
      PrecisionOptions{.min_runs = 5,
                       .max_runs = 12,
                       .target_relative_margin = 0.01});
  EXPECT_EQ(result.samples.size(), 12u);
  EXPECT_FALSE(result.converged);
}

TEST(Stats, RunUntilPreciseConvergesOnShrinkingNoise) {
  // Noise decays: the CI tightens as samples accumulate and the loop must
  // stop before the cap.
  int calls = 0;
  const auto result = run_until_precise(
      [&] {
        ++calls;
        return 10.0 + (calls % 2 == 0 ? 0.01 : -0.01);
      },
      PrecisionOptions{.min_runs = 5,
                       .max_runs = 100,
                       .target_relative_margin = 0.01});
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.samples.size(), 100u);
  EXPECT_NEAR(result.summary.mean, 10.0, 0.01);
}

}  // namespace
