// Unit tests for runtime::ThreadPool — the explicit OpenMP-team analogue
// every framework version runs on.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace {

using ipregel::runtime::Range;
using ipregel::runtime::ThreadPool;

TEST(ThreadPool, EveryMemberRunsExactlyOnce) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](std::size_t tid) { hits[tid].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, SizeOnePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  int runs = 0;
  pool.run([&](std::size_t tid) {
    EXPECT_EQ(tid, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 10'001;  // deliberately not divisible by 3
  std::vector<std::atomic<int>> seen(kN);
  pool.parallel_for(kN, [&](std::size_t, Range r) {
    for (std::size_t i = r.begin; i < r.end; ++i) {
      seen[i].fetch_add(1);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroElementsIsANoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, Range) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForEachVisitsEachElement) {
  ThreadPool pool(2);
  constexpr std::size_t kN = 1'000;
  std::vector<std::atomic<int>> seen(kN);
  pool.parallel_for_each(kN, [&](std::size_t, std::size_t i) {
    seen[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seen[i].load(), 1);
  }
}

TEST(ThreadPool, ParallelReduceSumsCorrectly) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 12'345;
  const auto total = pool.parallel_reduce<std::uint64_t>(
      kN, 0,
      [](std::size_t, Range r) {
        std::uint64_t s = 0;
        for (std::size_t i = r.begin; i < r.end; ++i) {
          s += i;
        }
        return s;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(total, static_cast<std::uint64_t>(kN) * (kN - 1) / 2);
}

TEST(ThreadPool, BackToBackRegionsAreSafe) {
  // The engine dispatches several regions per superstep over thousands of
  // supersteps; the dispatch protocol must never lose or duplicate a job.
  ThreadPool pool(4);
  std::atomic<std::int64_t> counter{0};
  for (int i = 0; i < 5'000; ++i) {
    pool.run([&](std::size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 5'000 * 4);
}

TEST(ThreadPool, RangesArePairwiseDisjointAndOrdered) {
  ThreadPool pool(4);
  std::vector<Range> ranges(4);
  pool.parallel_for(100, [&](std::size_t tid, Range r) {
    ranges[tid] = r;
  });
  std::size_t expected_begin = 0;
  for (const Range& r : ranges) {
    EXPECT_EQ(r.begin, expected_begin);
    expected_begin = r.end;
  }
  EXPECT_EQ(expected_begin, 100u);
}

TEST(ThreadPool, SmallNDoesNotInvokeEmptyRanges) {
  // With n < team size, surplus members must not observe empty ranges.
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(2, [&](std::size_t, Range r) {
    EXPECT_FALSE(r.empty());
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 2);
}

// --- failure domains ------------------------------------------------------

TEST(ThreadPool, BackgroundThreadExceptionRethrownOnCaller) {
  // An exception on a background team member used to escape worker_loop
  // straight into std::terminate; it must instead surface on the caller.
  ThreadPool pool(4);
  bool caught = false;
  try {
    pool.run([](std::size_t tid) {
      if (tid == 3) {
        throw std::runtime_error("worker 3 died");
      }
    });
  } catch (const std::runtime_error& e) {
    caught = true;
    EXPECT_STREQ(e.what(), "worker 3 died");
  }
  ASSERT_TRUE(caught);
  EXPECT_EQ(pool.failing_thread(), 3u);
}

TEST(ThreadPool, ThreadZeroExceptionRethrownAfterQuiesce) {
  ThreadPool pool(4);
  std::atomic<int> others{0};
  bool caught = false;
  try {
    pool.run([&](std::size_t tid) {
      if (tid == 0) {
        throw std::runtime_error("caller thread died");
      }
      others.fetch_add(1);
    });
  } catch (const std::runtime_error& e) {
    caught = true;
    EXPECT_STREQ(e.what(), "caller thread died");
  }
  ASSERT_TRUE(caught);
  EXPECT_EQ(pool.failing_thread(), 0u);
  // The rethrow happens only after the region quiesced: every background
  // member finished its (non-throwing) work.
  EXPECT_EQ(others.load(), 3);
}

TEST(ThreadPool, ExceptionRaisesCancellationForTheTeam) {
  // The first failure must raise the shared cancel flag so cooperative
  // members can stop early instead of finishing a doomed region.
  ThreadPool pool(4);
  std::atomic<bool> cancel_seen{false};
  try {
    pool.run([&](std::size_t tid) {
      if (tid == 1) {
        throw std::runtime_error("fail fast");
      }
      for (int i = 0; i < 100'000 && !pool.cancel_requested(); ++i) {
        std::this_thread::yield();
      }
      if (pool.cancel_requested()) {
        cancel_seen.store(true);
      }
    });
    FAIL() << "exception was swallowed";
  } catch (const std::runtime_error&) {
  }
  EXPECT_TRUE(cancel_seen.load());
}

TEST(ThreadPool, FirstExceptionWinsAndMatchesReportedThread) {
  ThreadPool pool(4);
  std::size_t thrown_by = pool.size();
  try {
    pool.run([](std::size_t tid) {
      throw std::runtime_error("thread " + std::to_string(tid));
    });
    FAIL() << "exception was swallowed";
  } catch (const std::runtime_error& e) {
    thrown_by = std::stoul(std::string(e.what()).substr(7));
  }
  EXPECT_EQ(thrown_by, pool.failing_thread())
      << "rethrown exception must come from the recorded failing thread";
}

TEST(ThreadPool, PoolRemainsUsableAfterException) {
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        pool.run([](std::size_t) { throw std::runtime_error("boom"); }),
        std::runtime_error);
    std::atomic<int> hits{0};
    pool.run([&](std::size_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 4) << "round " << round;
    EXPECT_FALSE(pool.cancel_requested())
        << "a new region must start with the cancel flag cleared";
  }
}

TEST(ThreadPool, RequestCancelStopsDynamicScheduling) {
  // Once cancellation is requested, parallel_for_dynamic must stop
  // claiming chunks: far fewer than n items get processed.
  ThreadPool pool(4);
  constexpr std::size_t kItems = 1'000'000;
  std::atomic<std::size_t> processed{0};
  pool.parallel_for_dynamic(kItems, 64, [&](std::size_t, Range r) {
    if (processed.fetch_add(r.end - r.begin) > 10'000) {
      pool.request_cancel();
    }
  });
  EXPECT_LT(processed.load(), kItems)
      << "cancellation did not stop the chunk cursor";
}

TEST(ThreadPool, SingleThreadPoolPropagatesExceptionDirectly) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.run([](std::size_t) { throw std::runtime_error("solo"); }),
      std::runtime_error);
  std::atomic<int> hits{0};
  pool.run([&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 1);
}

// --- cancel storm ---------------------------------------------------------

TEST(ThreadPool, CancelStormFirstErrorWinsEveryRound) {
  // The service cancels running jobs from outside the team while the
  // team itself may be throwing; hammer both paths concurrently across
  // many regions. Invariants under the storm: the rethrown exception
  // always names the recorded failing thread, every region terminates
  // (the ctest timeout is the deadlock detector), and the pool stays
  // reusable with the cancel flag cleared between regions.
  ThreadPool pool(4);
  std::atomic<bool> storm_over{false};
  std::thread canceller([&] {
    while (!storm_over.load()) {
      pool.request_cancel();  // external kill switch, arbitrary timing
      std::this_thread::yield();
    }
  });

  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    const auto bomber = static_cast<std::size_t>(round) % pool.size();
    try {
      pool.run([&](std::size_t tid) {
        if (tid == bomber) {
          throw std::runtime_error("thread " + std::to_string(tid));
        }
        while (!pool.cancel_requested()) {
          std::this_thread::yield();  // cooperative members drain early
        }
      });
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::stoul(std::string(e.what()).substr(7)),
                pool.failing_thread())
          << "round " << round
          << ": winner does not match the recorded failing thread";
    }
  }
  storm_over.store(true);
  canceller.join();

  // After 200 storms the pool must still run a clean region with the
  // flag lowered — no sticky cancellation, no lost worker.
  std::atomic<int> hits{0};
  pool.run([&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), static_cast<int>(pool.size()));
  EXPECT_FALSE(pool.cancel_requested());
}

TEST(ThreadPool, ExternalCancelUnblocksCooperativeRegion) {
  // A region whose members only exit on the cancel flag must complete in
  // bounded time once an outside thread raises it — the mechanism the
  // watchdog and the job service rely on to reclaim a stuck team.
  ThreadPool pool(4);
  std::atomic<int> entered{0};
  std::thread killer([&] {
    while (entered.load() < static_cast<int>(pool.size())) {
      std::this_thread::yield();
    }
    pool.request_cancel();  // every member is provably inside the region
  });
  pool.run([&](std::size_t) {
    entered.fetch_add(1);
    while (!pool.cancel_requested()) {
      std::this_thread::yield();
    }
  });
  killer.join();
  // And the next region starts fresh.
  std::atomic<int> hits{0};
  pool.run([&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), static_cast<int>(pool.size()));
}

}  // namespace
