// The headline chaos-under-load matrix for the job service: a
// deterministic load generator offers mixed PageRank / SSSP / Hashmin jobs
// at 0.5x, 1x, and 2x of the manager's capacity while faults are injected
// into the jobs themselves — supervisor-retried compute faults, FaultyVfs
// EIO/ENOSPC on checkpoint writes, watchdog trips, impossible deadlines.
// The properties under test:
//
//  - no crash, no deadlock (ctest TIMEOUT is the deadlock detector; the CI
//    ASan/TSan builds make "no leak / no race" a hard failure);
//  - every accepted-and-completed job is bit-identical to a solo run of
//    the same program — degradation may change *how* a job runs, never
//    what it computes (the version mix is chosen from the combinations
//    that are exact at any thread count);
//  - every job the service does not complete carries a typed reason
//    (ShedReason or RunErrorKind) — nothing vanishes;
//  - the queue-depth bound and the global memory-reservation budget are
//    never exceeded, at any load;
//  - at 2x load at least one degradation step is on the record.
//
// Capacity model: kExecutors jobs running + kDepth queued. The wave is
// offered while all executors are pinned by gated jobs, so "load factor"
// measures offered queue pressure exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "core/runner.hpp"
#include "ft/fault.hpp"
#include "io/faulty_vfs.hpp"
#include "service/job_manager.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using ipregel::testing::make_graph;
using service::JobManager;
using service::JobReport;
using service::JobState;
using service::JobTicket;
using service::ShedError;

constexpr std::size_t kExecutors = 3;
constexpr std::size_t kDepth = 4;
/// Flat per-job reservation; the budget fits exactly one full system
/// (every executor busy + every queue slot taken).
constexpr std::size_t kRes = 1u << 20;
constexpr std::size_t kBudget = (kExecutors + kDepth) * kRes;

// Version choices that are bit-exact at ANY thread count (see
// tests/test_io_crash_matrix.cpp): PageRank under the pull combiner,
// min-combined SSSP and Hashmin under push.
constexpr VersionId kPullVer{CombinerKind::kPull, false};
constexpr VersionId kPushBypassVer{CombinerKind::kSpinlockPush, true};
constexpr VersionId kPushVer{CombinerKind::kSpinlockPush, false};

/// Pins an executor until its gate opens (see test_service_manager.cpp).
struct Spinner {
  using value_type = graph::vid_t;
  using message_type = graph::vid_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = false;

  std::atomic<bool>* open = nullptr;
  std::atomic<bool>* started = nullptr;

  [[nodiscard]] value_type initial_value(graph::vid_t id) const noexcept {
    return id;
  }
  void compute(auto& ctx) const {
    if (started != nullptr) {
      started->store(true, std::memory_order_release);
    }
    if (open->load(std::memory_order_acquire)) {
      ctx.vote_to_halt();
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  static void combine(graph::vid_t& old,
                      const graph::vid_t& incoming) noexcept {
    old = std::min(old, incoming);
  }
};

/// Deterministic compute fault: fails every attempt, never retryable.
struct AlwaysThrows {
  using value_type = graph::vid_t;
  using message_type = graph::vid_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;

  [[nodiscard]] graph::vid_t initial_value(graph::vid_t id) const noexcept {
    return id;
  }
  void compute(auto&) const {
    throw std::runtime_error("injected compute fault");
  }
  static void combine(graph::vid_t& old,
                      const graph::vid_t& incoming) noexcept {
    old = std::min(old, incoming);
  }
};

struct Fixtures {
  CsrGraph pr_graph = make_graph(graph::rmat(7, 6, {.seed = 11}));
  CsrGraph sssp_graph =
      make_graph(graph::grid_2d(10, 10, {.max_weight = 9, .seed = 3}));
  CsrGraph hm_graph = make_graph(graph::grid_2d(12, 12));
  CsrGraph tiny = make_graph(graph::grid_2d(2, 2));

  apps::PageRank pr{.rounds = 10};

  std::vector<apps::PageRank::value_type> pr_solo;
  std::vector<apps::Sssp::value_type> sssp_solo;
  std::vector<apps::Hashmin::value_type> hm_solo;

  Fixtures() {
    (void)run_version(pr_graph, pr, kPullVer, EngineOptions{}, nullptr,
                      &pr_solo);
    (void)run_version(sssp_graph, apps::Sssp{}, kPushBypassVer,
                      EngineOptions{}, nullptr, &sssp_solo);
    (void)run_version(hm_graph, apps::Hashmin{}, kPushBypassVer,
                      EngineOptions{}, nullptr, &hm_solo);
  }
};

Fixtures& fixtures() {
  static Fixtures f;
  return f;
}

class TempDir {
 public:
  explicit TempDir(const std::string& label) {
    dir_ = (std::filesystem::temp_directory_path() /
            ("ipregel_chaos_" + label))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] const std::string& str() const noexcept { return dir_; }

 private:
  std::string dir_;
};

/// One chaos wave at a given load factor. Returns nothing; asserts
/// everything. `work_jobs` = offered queued jobs while all executors are
/// pinned; kDepth is the no-shedding capacity.
void run_wave(const std::string& label, std::size_t work_jobs,
              bool expect_overload) {
  Fixtures& fx = fixtures();
  SCOPED_TRACE(label + " (" + std::to_string(work_jobs) + " offered)");

  JobManager mgr({.executors = kExecutors,
                  .team_threads = 2,
                  .max_queue_depth = kDepth,
                  .memory_budget_bytes = kBudget});

  // --- pin every executor so the wave meets a genuinely busy service ----
  std::atomic<bool> gate{false};
  std::deque<std::atomic<bool>> started(kExecutors);
  std::vector<JobTicket<Spinner>> pins;
  for (std::size_t i = 0; i < kExecutors; ++i) {
    started[i].store(false);
    pins.push_back(mgr.submit(
        fx.tiny, Spinner{.open = &gate, .started = &started[i]}, kPushVer,
        {}, {.priority = 100, .memory_reservation_bytes = kRes}));
  }
  for (std::size_t i = 0; i < kExecutors; ++i) {
    for (int spin = 0;
         spin < 5000 && !started[i].load(std::memory_order_acquire);
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(started[i].load(std::memory_order_acquire))
        << "executor pin " << i << " never started";
  }

  // --- at 2x, one job whose deadline cannot survive the queue ----------
  std::vector<JobTicket<apps::Hashmin>> doomed;
  if (expect_overload) {
    doomed.push_back(mgr.submit(
        fx.hm_graph, apps::Hashmin{}, kPushBypassVer, {},
        {.priority = -1,
         .deadline_seconds = 0.005,
         .memory_reservation_bytes = kRes}));
  }

  // --- the deterministic wave ------------------------------------------
  // Job i: program kind cycles PageRank/SSSP/Hashmin; chaos flavour per
  // kind — PageRank jobs carry a supervisor fault schedule with real
  // checkpoints, SSSP jobs checkpoint onto a FaultyVfs that rejects the
  // first write (ENOSPC/EIO alternating), Hashmin jobs run clean.
  // Priorities strictly increase, so at overload each arrival past the
  // depth bound evicts the weakest queued job — a deterministic
  // kShedQueued degradation, never an unaccounted drop.
  std::deque<io::FaultyVfs> disks;
  std::deque<TempDir> dirs;
  std::vector<JobTicket<apps::PageRank>> pr_jobs;
  std::vector<JobTicket<apps::Sssp>> sssp_jobs;
  std::vector<JobTicket<apps::Hashmin>> hm_jobs;
  std::size_t rejected = 0;

  for (std::size_t i = 0; i < work_jobs; ++i) {
    const service::JobSpec spec{.priority = static_cast<int>(i),
                                .memory_reservation_bytes = kRes};
    try {
      switch (i % 3) {
        case 0: {
          dirs.emplace_back(label + "_pr" + std::to_string(i));
          EngineOptions opts;
          opts.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
          opts.checkpoint.every = 1;
          opts.checkpoint.directory = dirs.back().str();
          ft::RetryPolicy retry;
          retry.max_attempts = 4;
          retry.fault_schedule = {
              ft::FaultPlan{.superstep = 1, .after_compute_calls = 0}};
          pr_jobs.push_back(mgr.submit(fx.pr_graph, fx.pr, kPullVer, opts,
                                       spec, retry));
          break;
        }
        case 1: {
          io::FaultyVfs& disk = disks.emplace_back();
          disk.mkdir("ckpt");
          disk.set_plan({.kind = (i % 2 == 1)
                                     ? io::FaultyVfs::FaultKind::kEnospc
                                     : io::FaultyVfs::FaultKind::kEio,
                         .at_op = 1});
          EngineOptions opts;
          opts.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
          opts.checkpoint.every = 1;
          opts.checkpoint.directory = "ckpt";
          opts.checkpoint.vfs = &disk;
          sssp_jobs.push_back(mgr.submit(fx.sssp_graph, apps::Sssp{},
                                         kPushBypassVer, opts, spec));
          break;
        }
        default:
          hm_jobs.push_back(mgr.submit(fx.hm_graph, apps::Hashmin{},
                                       kPushBypassVer, {}, spec));
          break;
      }
    } catch (const ShedError& e) {
      ++rejected;
      EXPECT_TRUE(e.reason() == service::ShedReason::kQueueFull ||
                  e.reason() == service::ShedReason::kMemoryBudget)
          << "unexpected admission rejection: " << e.what();
    }
  }

  // --- release the pins and drain --------------------------------------
  gate.store(true, std::memory_order_release);
  for (auto& pin : pins) {
    ASSERT_EQ(pin.wait().state, JobState::kCompleted);
  }

  std::size_t completed = 0;
  std::size_t shed = 0;
  const auto account = [&](const JobReport& r) {
    switch (r.state) {
      case JobState::kCompleted:
        ++completed;
        break;
      case JobState::kShed:
        ++shed;
        ASSERT_TRUE(r.shed_reason.has_value())
            << "shed job " << r.id << " has no typed reason";
        break;
      case JobState::kFailed:
        ASSERT_TRUE(r.error.has_value())
            << "failed job " << r.id << " has no typed error";
        FAIL() << "wave job " << r.id
               << " failed unexpectedly: " << r.error->what();
        break;
      default:
        FAIL() << "job " << r.id << " ended in non-terminal state";
    }
  };

  for (auto& t : pr_jobs) {
    const JobReport& r = t.wait();
    account(r);
    if (r.state == JobState::kCompleted) {
      // The scheduled fault must have tripped and been absorbed by a
      // snapshot restore — the service run stays bit-identical anyway.
      EXPECT_EQ(r.attempts, 2u);
      EXPECT_EQ(r.resumed_from_snapshot, 1u);
      EXPECT_EQ(t.values(), fx.pr_solo)
          << "PageRank diverged from the solo run";
    }
  }
  for (auto& t : sssp_jobs) {
    const JobReport& r = t.wait();
    account(r);
    if (r.state == JobState::kCompleted) {
      // The faulty disk must have cost a checkpoint, not the run.
      EXPECT_GE(r.result.checkpoints_skipped, 1u);
      EXPECT_EQ(t.values(), fx.sssp_solo)
          << "SSSP diverged from the solo run";
    }
  }
  for (auto& t : hm_jobs) {
    const JobReport& r = t.wait();
    account(r);
    if (r.state == JobState::kCompleted) {
      EXPECT_EQ(t.values(), fx.hm_solo)
          << "Hashmin diverged from the solo run";
    }
  }
  for (auto& t : doomed) {
    const JobReport& r = t.wait();
    EXPECT_EQ(r.state, JobState::kShed)
        << "an impossible deadline must shed, not run";
    if (r.state == JobState::kShed) {
      ++shed;
      ASSERT_TRUE(r.shed_reason.has_value());
    }
  }

  // --- watchdog-trip and compute-fault jobs on the drained service ------
  {
    EngineOptions opts;
    opts.guards.run_seconds = 1e-6;
    auto t = mgr.submit(fx.hm_graph, apps::Hashmin{}, kPushBypassVer, opts,
                        {.memory_reservation_bytes = kRes});
    const JobReport& r = t.wait();
    ASSERT_EQ(r.state, JobState::kFailed);
    EXPECT_EQ(r.error->kind(), RunErrorKind::kRunTimeout);
  }
  {
    auto t = mgr.submit(fx.tiny, AlwaysThrows{}, kPushVer, {},
                        {.memory_reservation_bytes = kRes});
    const JobReport& r = t.wait();
    ASSERT_EQ(r.state, JobState::kFailed);
    EXPECT_EQ(r.error->kind(), RunErrorKind::kUserException);
    EXPECT_EQ(r.attempts, 1u) << "deterministic faults must not retry";
  }

  // --- invariants --------------------------------------------------------
  const JobManager::Stats s = mgr.stats();
  EXPECT_EQ(s.submitted, s.admitted + s.rejected);
  EXPECT_EQ(s.rejected, rejected);
  EXPECT_EQ(s.admitted, s.completed + s.failed + s.shed)
      << "an admitted job vanished without a terminal state";
  EXPECT_LE(s.max_queue_depth_seen, kDepth)
      << "the queue-depth bound was exceeded";
  EXPECT_LE(s.peak_reserved_bytes, kBudget)
      << "the memory-reservation budget was exceeded";
  EXPECT_EQ(s.reserved_bytes, 0u) << "a reservation leaked";
  EXPECT_EQ(s.failed, 2u) << "only the two designated failure jobs may fail";

  if (expect_overload) {
    EXPECT_GE(shed + rejected, 1u)
        << "2x load must shed or reject something";
    EXPECT_GE(mgr.degradation_log().size(), 1u)
        << "overload left no degradation trail";
  } else {
    EXPECT_EQ(rejected, 0u) << "light load must not reject";
    EXPECT_EQ(completed, work_jobs) << "light load must complete every job";
    EXPECT_EQ(shed, 0u);
  }

  mgr.shutdown();
}

TEST(ServiceChaos, HalfLoadAllJobsCompleteBitIdentical) {
  run_wave("half", kDepth / 2, /*expect_overload=*/false);
}

TEST(ServiceChaos, FullLoadAllJobsCompleteBitIdentical) {
  run_wave("full", kDepth, /*expect_overload=*/false);
}

TEST(ServiceChaos, DoubleLoadShedsTypedAndDegradesOnRecord) {
  run_wave("double", kDepth * 2, /*expect_overload=*/true);
}

}  // namespace
}  // namespace ipregel
