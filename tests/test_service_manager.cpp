// Unit tests for service::JobManager — admission control (typed ShedError
// rejection, priority eviction), backpressure (deadlines, the memory
// reservation ledger, per-job budgets), cooperative cancellation routed
// through the engine's guard machinery, and the degradation ladder with
// its DegradationLog audit trail. The combined chaos-under-load matrix
// lives in test_service_chaos.cpp; this file pins each mechanism alone.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/hashmin.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "service/job_manager.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using ipregel::testing::make_graph;
using service::DegradationStep;
using service::JobManager;
using service::JobReport;
using service::JobSpec;
using service::JobState;
using service::ShedError;
using service::ShedReason;

constexpr VersionId kPush{CombinerKind::kSpinlockPush, false};

/// Stays active (re-running supersteps with short naps) until its shared
/// gate opens, then halts. Lets a test hold an executor busy for a
/// controlled window — and, because the engine re-checks its guards at
/// every superstep barrier, lets cancellation land promptly.
struct Spinner {
  using value_type = graph::vid_t;
  using message_type = graph::vid_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = false;

  std::atomic<bool>* open = nullptr;
  /// Raised on the first compute call — the "this job is now running, not
  /// queued" signal tests synchronise on.
  std::atomic<bool>* started = nullptr;

  [[nodiscard]] value_type initial_value(graph::vid_t id) const noexcept {
    return id;
  }

  void compute(auto& ctx) const {
    if (started != nullptr) {
      started->store(true, std::memory_order_release);
    }
    if (open->load(std::memory_order_acquire)) {
      ctx.vote_to_halt();
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  static void combine(graph::vid_t& old,
                      const graph::vid_t& incoming) noexcept {
    old = std::min(old, incoming);
  }
};

/// Records the order jobs actually started in: the first compute call to
/// win the CAS stamps the job's slot with a global sequence number.
struct OrderProbe {
  using value_type = graph::vid_t;
  using message_type = graph::vid_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;

  std::atomic<int>* sequence = nullptr;
  std::atomic<int>* my_order = nullptr;

  [[nodiscard]] value_type initial_value(graph::vid_t id) const noexcept {
    return id;
  }

  void compute(auto& ctx) const {
    int unstamped = -1;
    if (my_order->load(std::memory_order_relaxed) == -1) {
      my_order->compare_exchange_strong(
          unstamped, sequence->fetch_add(1, std::memory_order_relaxed));
    }
    ctx.vote_to_halt();
  }

  static void combine(graph::vid_t& old,
                      const graph::vid_t& incoming) noexcept {
    old = std::min(old, incoming);
  }
};

CsrGraph tiny_graph() { return make_graph(graph::grid_2d(2, 2)); }

/// Bounded wait for a Spinner's `started` flag: the job has been popped
/// from the queue and is executing (so later submissions really queue
/// behind it instead of racing it for the executor).
void wait_for_start(const std::atomic<bool>& started) {
  for (int i = 0; i < 5000 && !started.load(std::memory_order_acquire);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(started.load(std::memory_order_acquire))
      << "blocker job never started";
}

// --- happy path -----------------------------------------------------------

TEST(JobManager, CompletedJobMatchesSoloRun) {
  const CsrGraph g = make_graph(graph::grid_2d(12, 12));
  std::vector<graph::vid_t> solo;
  (void)run_version(g, apps::Hashmin{}, kPush, EngineOptions{.threads = 2},
                    nullptr, &solo);

  JobManager mgr({.executors = 2, .team_threads = 2});
  auto ticket = mgr.submit(g, apps::Hashmin{}, kPush);
  const JobReport& report = ticket.wait();

  ASSERT_EQ(report.state, JobState::kCompleted)
      << (report.error ? report.error->what() : "no error");
  EXPECT_GT(report.result.supersteps, 0u);
  EXPECT_EQ(report.threads_used, 2u);
  EXPECT_GT(report.peak_tracked_bytes, 0u)
      << "the job's memory scope never saw the engine's reservations";
  EXPECT_EQ(ticket.values(), solo);

  const JobManager::Stats s = mgr.stats();
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.reserved_bytes, 0u) << "reservation must be released";
  EXPECT_GT(s.peak_reserved_bytes, 0u);
}

TEST(JobManager, SharedGraphSurvivesCallerReleaseWhileQueued) {
  // Regression for the original lifetime footgun: submit() used to capture
  // `const CsrGraph&`, so a caller that dropped its graph while the job was
  // still queued left the executor a dangling reference. The
  // shared-ownership overload makes the job co-own the graph: released by
  // the caller at the worst possible moment (queued behind a busy
  // executor), it must stay alive until the job completes — and be freed
  // once the job has drained.
  auto shared = std::make_shared<const CsrGraph>(
      make_graph(graph::grid_2d(8, 8)));
  std::vector<graph::vid_t> solo;
  (void)run_version(*shared, apps::Hashmin{}, kPush, EngineOptions{},
                    nullptr, &solo);
  std::weak_ptr<const CsrGraph> alive = shared;

  const CsrGraph blocker_graph = tiny_graph();
  std::atomic<bool> gate{false};
  std::atomic<bool> started{false};
  JobManager mgr({.executors = 1, .team_threads = 1});
  auto blocker = mgr.submit(
      blocker_graph, Spinner{.open = &gate, .started = &started}, kPush);
  wait_for_start(started);

  auto ticket = mgr.submit(shared, apps::Hashmin{}, kPush);
  shared.reset();  // caller walks away while the job is still queued
  ASSERT_FALSE(alive.expired())
      << "the queued job must co-own the graph it will run on";

  gate.store(true, std::memory_order_release);
  const JobReport& report = ticket.wait();
  ASSERT_EQ(report.state, JobState::kCompleted)
      << (report.error ? report.error->what() : "no error");
  EXPECT_EQ(ticket.values(), solo);
  (void)blocker.wait();

  // Joining the executors destroys the job closures; with the caller's
  // reference long gone, the job's was the last one.
  mgr.shutdown();
  EXPECT_TRUE(alive.expired())
      << "a drained job must not pin its graph forever";
}

TEST(JobManager, ManyConcurrentJobsAllComplete) {
  const CsrGraph g = make_graph(graph::grid_2d(8, 8));
  std::vector<graph::vid_t> solo;
  (void)run_version(g, apps::Hashmin{}, kPush, EngineOptions{}, nullptr,
                    &solo);

  JobManager mgr({.executors = 3, .team_threads = 2, .max_queue_depth = 32});
  std::vector<service::JobTicket<apps::Hashmin>> tickets;
  for (int i = 0; i < 16; ++i) {
    tickets.push_back(mgr.submit(g, apps::Hashmin{}, kPush));
  }
  for (auto& t : tickets) {
    ASSERT_EQ(t.wait().state, JobState::kCompleted);
    EXPECT_EQ(t.values(), solo);
  }
  EXPECT_EQ(mgr.stats().completed, 16u);
  EXPECT_EQ(mgr.stats().reserved_bytes, 0u);
}

// --- admission control ----------------------------------------------------

TEST(JobManager, QueueFullRejectsWithTypedShedError) {
  const CsrGraph g = tiny_graph();
  std::atomic<bool> gate{false};
  std::atomic<bool> started{false};
  JobManager mgr({.executors = 1, .team_threads = 1, .max_queue_depth = 2});

  auto blocker = mgr.submit(g, Spinner{.open = &gate, .started = &started}, kPush);
  wait_for_start(started);
  auto q1 = mgr.submit(g, apps::Hashmin{}, kPush);
  auto q2 = mgr.submit(g, apps::Hashmin{}, kPush);

  bool thrown = false;
  try {
    (void)mgr.submit(g, apps::Hashmin{}, kPush);
  } catch (const ShedError& e) {
    thrown = true;
    EXPECT_EQ(e.reason(), ShedReason::kQueueFull);
    EXPECT_NE(std::string(e.what()).find("queue"), std::string::npos);
  }
  EXPECT_TRUE(thrown);

  gate.store(true, std::memory_order_release);
  EXPECT_EQ(blocker.wait().state, JobState::kCompleted);
  EXPECT_EQ(q1.wait().state, JobState::kCompleted);
  EXPECT_EQ(q2.wait().state, JobState::kCompleted);

  const JobManager::Stats s = mgr.stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_LE(s.max_queue_depth_seen, 2u);
}

TEST(JobManager, HigherPriorityArrivalEvictsWeakestQueued) {
  const CsrGraph g = tiny_graph();
  std::atomic<bool> gate{false};
  std::atomic<bool> started{false};
  JobManager mgr({.executors = 1, .team_threads = 1, .max_queue_depth = 2});

  auto blocker = mgr.submit(g, Spinner{.open = &gate, .started = &started}, kPush);
  wait_for_start(started);
  auto weak = mgr.submit(g, apps::Hashmin{}, kPush, {}, {.priority = 1});
  auto mid = mgr.submit(g, apps::Hashmin{}, kPush, {}, {.priority = 2});
  // Queue full; a strictly higher-priority arrival displaces `weak`.
  auto strong = mgr.submit(g, apps::Hashmin{}, kPush, {}, {.priority = 5});

  const JobReport& shed = weak.wait();
  EXPECT_EQ(shed.state, JobState::kShed);
  ASSERT_TRUE(shed.shed_reason.has_value());
  EXPECT_EQ(*shed.shed_reason, ShedReason::kPriorityEvicted);

  gate.store(true, std::memory_order_release);
  EXPECT_EQ(blocker.wait().state, JobState::kCompleted);
  EXPECT_EQ(mid.wait().state, JobState::kCompleted);
  EXPECT_EQ(strong.wait().state, JobState::kCompleted);

  // The eviction is the ladder's last rung and must be on the record.
  EXPECT_GE(mgr.degradation_log().count(DegradationStep::kShedQueued), 1u);
  EXPECT_EQ(mgr.stats().shed, 1u);
}

TEST(JobManager, EqualPriorityCannotEvict) {
  const CsrGraph g = tiny_graph();
  std::atomic<bool> gate{false};
  std::atomic<bool> started{false};
  JobManager mgr({.executors = 1, .team_threads = 1, .max_queue_depth = 1});

  auto blocker = mgr.submit(g, Spinner{.open = &gate, .started = &started}, kPush);
  wait_for_start(started);
  auto queued = mgr.submit(g, apps::Hashmin{}, kPush, {}, {.priority = 3});
  EXPECT_THROW((void)mgr.submit(g, apps::Hashmin{}, kPush, {},
                                {.priority = 3}),
               ShedError);

  gate.store(true, std::memory_order_release);
  EXPECT_EQ(blocker.wait().state, JobState::kCompleted);
  EXPECT_EQ(queued.wait().state, JobState::kCompleted);
}

TEST(JobManager, OversizedReservationRejectedUpFront) {
  const CsrGraph g = tiny_graph();
  JobManager mgr({.executors = 1, .memory_budget_bytes = 1u << 20});
  bool thrown = false;
  try {
    (void)mgr.submit(g, apps::Hashmin{}, kPush, {},
                     {.memory_reservation_bytes = (1u << 20) + 1});
  } catch (const ShedError& e) {
    thrown = true;
    EXPECT_EQ(e.reason(), ShedReason::kMemoryBudget);
  }
  EXPECT_TRUE(thrown);
  EXPECT_EQ(mgr.stats().rejected, 1u);
  EXPECT_EQ(mgr.stats().admitted, 0u);
}

TEST(JobManager, MemoryLedgerBoundsAdmissionAndEvictsWeaker) {
  const CsrGraph g = tiny_graph();
  std::atomic<bool> gate{false};
  std::atomic<bool> started{false};
  // Budget fits exactly two 1 MiB reservations.
  JobManager mgr({.executors = 1,
                  .team_threads = 1,
                  .max_queue_depth = 8,
                  .memory_budget_bytes = 2u << 20});
  const std::size_t kRes = 1u << 20;

  auto blocker = mgr.submit(g, Spinner{.open = &gate, .started = &started}, kPush, {},
                            {.priority = 9, .memory_reservation_bytes = kRes});
  wait_for_start(started);
  auto weak = mgr.submit(g, apps::Hashmin{}, kPush, {},
                         {.priority = 0, .memory_reservation_bytes = kRes});

  // Same priority cannot displace the queued holder: typed rejection.
  bool thrown = false;
  try {
    (void)mgr.submit(g, apps::Hashmin{}, kPush, {},
                     {.priority = 0, .memory_reservation_bytes = kRes});
  } catch (const ShedError& e) {
    thrown = true;
    EXPECT_EQ(e.reason(), ShedReason::kMemoryBudget);
  }
  EXPECT_TRUE(thrown);

  // A strictly higher priority evicts the queued holder instead.
  auto strong = mgr.submit(g, apps::Hashmin{}, kPush, {},
                           {.priority = 5, .memory_reservation_bytes = kRes});
  const JobReport& shed = weak.wait();
  EXPECT_EQ(shed.state, JobState::kShed);
  EXPECT_EQ(*shed.shed_reason, ShedReason::kPriorityEvicted);

  gate.store(true, std::memory_order_release);
  EXPECT_EQ(blocker.wait().state, JobState::kCompleted);
  EXPECT_EQ(strong.wait().state, JobState::kCompleted);

  const JobManager::Stats s = mgr.stats();
  EXPECT_LE(s.peak_reserved_bytes, 2u << 20)
      << "the reservation ledger exceeded the configured budget";
  EXPECT_EQ(s.reserved_bytes, 0u);
}

// --- scheduling -----------------------------------------------------------

TEST(JobManager, HigherPriorityRunsFirst) {
  const CsrGraph g = tiny_graph();
  std::atomic<bool> gate{false};
  std::atomic<bool> started{false};
  std::atomic<int> sequence{0};
  std::atomic<int> low_order{-1};
  std::atomic<int> high_order{-1};

  JobManager mgr({.executors = 1, .team_threads = 1, .max_queue_depth = 4});
  auto blocker = mgr.submit(g, Spinner{.open = &gate, .started = &started}, kPush);
  wait_for_start(started);
  auto low = mgr.submit(
      g, OrderProbe{.sequence = &sequence, .my_order = &low_order}, kPush,
      {}, {.priority = 0});
  auto high = mgr.submit(
      g, OrderProbe{.sequence = &sequence, .my_order = &high_order}, kPush,
      {}, {.priority = 7});

  gate.store(true, std::memory_order_release);
  EXPECT_EQ(blocker.wait().state, JobState::kCompleted);
  EXPECT_EQ(low.wait().state, JobState::kCompleted);
  EXPECT_EQ(high.wait().state, JobState::kCompleted);
  EXPECT_LT(high_order.load(), low_order.load())
      << "the higher-priority job must start first";
}

// --- deadlines and cancellation -------------------------------------------

TEST(JobManager, DeadlineExpiredWhileQueuedIsShedTyped) {
  const CsrGraph g = tiny_graph();
  std::atomic<bool> gate{false};
  std::atomic<bool> started{false};
  JobManager mgr({.executors = 1, .team_threads = 1});

  auto blocker = mgr.submit(g, Spinner{.open = &gate, .started = &started}, kPush);
  wait_for_start(started);
  auto doomed = mgr.submit(g, apps::Hashmin{}, kPush, {},
                           {.deadline_seconds = 0.02});
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  gate.store(true, std::memory_order_release);

  const JobReport& report = doomed.wait();
  EXPECT_EQ(report.state, JobState::kShed);
  ASSERT_TRUE(report.shed_reason.has_value());
  EXPECT_EQ(*report.shed_reason, ShedReason::kDeadlineExpired);
  EXPECT_EQ(blocker.wait().state, JobState::kCompleted);
}

TEST(JobManager, RunningJobBlowingItsDeadlineFailsAsRunTimeout) {
  const CsrGraph g = tiny_graph();
  std::atomic<bool> never{false};
  JobManager mgr({.executors = 1, .team_threads = 1});
  // The spinner would run forever; its deadline becomes the run watchdog.
  auto ticket = mgr.submit(g, Spinner{.open = &never}, kPush, {},
                           {.deadline_seconds = 0.05});
  const JobReport& report = ticket.wait();
  ASSERT_EQ(report.state, JobState::kFailed);
  ASSERT_TRUE(report.error.has_value());
  EXPECT_EQ(report.error->kind(), RunErrorKind::kRunTimeout);
}

TEST(JobManager, CancelQueuedJobShedsIt) {
  const CsrGraph g = tiny_graph();
  std::atomic<bool> gate{false};
  std::atomic<bool> started{false};
  JobManager mgr({.executors = 1, .team_threads = 1});
  auto blocker = mgr.submit(g, Spinner{.open = &gate, .started = &started}, kPush);
  wait_for_start(started);
  auto queued = mgr.submit(g, apps::Hashmin{}, kPush);

  EXPECT_TRUE(mgr.cancel(queued.id()));
  const JobReport& report = queued.wait();
  EXPECT_EQ(report.state, JobState::kShed);
  EXPECT_EQ(*report.shed_reason, ShedReason::kCancelled);
  EXPECT_FALSE(mgr.cancel(queued.id())) << "already finished";
  EXPECT_FALSE(mgr.cancel(999'999)) << "unknown id";

  gate.store(true, std::memory_order_release);
  EXPECT_EQ(blocker.wait().state, JobState::kCompleted);
}

TEST(JobManager, CancelRunningJobFailsWithTypedCancelledError) {
  const CsrGraph g = tiny_graph();
  std::atomic<bool> never{false};
  std::atomic<bool> started{false};
  JobManager mgr({.executors = 1, .team_threads = 2});
  auto ticket =
      mgr.submit(g, Spinner{.open = &never, .started = &started}, kPush);
  wait_for_start(started);

  EXPECT_TRUE(mgr.cancel(ticket.id()));
  const JobReport& report = ticket.wait();
  ASSERT_EQ(report.state, JobState::kFailed);
  ASSERT_TRUE(report.error.has_value());
  EXPECT_EQ(report.error->kind(), RunErrorKind::kCancelled)
      << report.error->what();
  EXPECT_EQ(report.attempts, 1u)
      << "a cancelled run must not be retried by the supervisor";
}

// --- per-job budgets ------------------------------------------------------

TEST(JobManager, EnforcedReservationTripsOnlyItsOwnJob) {
  // A job that under-reserves and enforces its reservation fails typed;
  // a well-reserved job sharing the manager is untouched.
  const CsrGraph g = make_graph(graph::grid_2d(16, 16));
  JobManager mgr({.executors = 2, .team_threads = 2});
  auto starved =
      mgr.submit(g, apps::Hashmin{}, kPush, {},
                 {.memory_reservation_bytes = 1024,
                  .enforce_reservation = true});
  auto healthy = mgr.submit(g, apps::Hashmin{}, kPush);

  const JobReport& bad = starved.wait();
  ASSERT_EQ(bad.state, JobState::kFailed);
  ASSERT_TRUE(bad.error.has_value());
  EXPECT_EQ(bad.error->kind(), RunErrorKind::kMemoryBudget);
  EXPECT_EQ(healthy.wait().state, JobState::kCompleted)
      << "a neighbour's budget breach leaked across jobs";
}

// --- degradation ladder ---------------------------------------------------

TEST(JobManager, MemoryPressureShrinksThreadTeamAndLogsIt) {
  const CsrGraph g = tiny_graph();
  JobManager mgr({.executors = 1,
                  .team_threads = 4,
                  .memory_budget_bytes = 1u << 20,
                  .memory_pressure = 0.5});
  // 0.75 MiB of 1 MiB reserved when the job starts: past the 0.5 rung.
  auto ticket =
      mgr.submit(g, apps::Hashmin{}, kPush, {},
                 {.memory_reservation_bytes = (1u << 20) * 3 / 4});
  const JobReport& report = ticket.wait();
  ASSERT_EQ(report.state, JobState::kCompleted);
  EXPECT_EQ(report.threads_used, 2u) << "team must be halved under pressure";
  EXPECT_GE(mgr.degradation_log().count(DegradationStep::kShrinkThreads),
            1u);
}

TEST(JobManager, NoPressureMeansFullTeamAndEmptyLog) {
  const CsrGraph g = tiny_graph();
  JobManager mgr({.executors = 1,
                  .team_threads = 4,
                  .memory_budget_bytes = 1u << 30});
  auto ticket = mgr.submit(g, apps::Hashmin{}, kPush);
  const JobReport& report = ticket.wait();
  ASSERT_EQ(report.state, JobState::kCompleted);
  EXPECT_EQ(report.threads_used, 4u);
  EXPECT_EQ(mgr.degradation_log().size(), 0u);
}

TEST(JobManager, SeverePressureDowngradesCheckpointsAndLogsIt) {
  const CsrGraph g = make_graph(graph::grid_2d(10, 10));
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ipregel_svc_downgrade")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::vector<graph::vid_t> solo;
  (void)run_version(g, apps::Hashmin{}, kPush, EngineOptions{}, nullptr,
                    &solo);

  JobManager mgr({.executors = 1,
                  .team_threads = 2,
                  .memory_budget_bytes = 1u << 20,
                  .memory_pressure = 0.3,
                  .memory_pressure_severe = 0.6});
  EngineOptions options;
  options.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  options.checkpoint.every = 1;
  options.checkpoint.mode = ft::CheckpointMode::kHeavyweight;
  options.checkpoint.directory = dir;

  auto ticket =
      mgr.submit(g, apps::Hashmin{}, kPush, options,
                 {.memory_reservation_bytes = (1u << 20) * 7 / 8});
  const JobReport& report = ticket.wait();
  ASSERT_EQ(report.state, JobState::kCompleted)
      << (report.error ? report.error->what() : "");
  EXPECT_TRUE(report.checkpoint_downgraded);
  EXPECT_GE(
      mgr.degradation_log().count(DegradationStep::kLightweightCheckpoint),
      1u);
  // Lightweight snapshots must not perturb the result.
  EXPECT_EQ(ticket.values(), solo);
  std::filesystem::remove_all(dir);
}

// --- fault tolerance integration ------------------------------------------

TEST(JobManager, AdmittedJobSurvivesInjectedFaultsViaSupervisor) {
  const CsrGraph g = make_graph(graph::grid_2d(12, 12));
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ipregel_svc_faults")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::vector<graph::vid_t> solo;
  (void)run_version(g, apps::Hashmin{}, kPush, EngineOptions{}, nullptr,
                    &solo);

  JobManager mgr({.executors = 1, .team_threads = 2});
  EngineOptions options;
  options.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  options.checkpoint.every = 1;
  options.checkpoint.directory = dir;

  ft::RetryPolicy retry;
  retry.max_attempts = 4;
  retry.fault_schedule = {
      ft::FaultPlan{.superstep = 1, .after_compute_calls = 0},
      ft::FaultPlan{.superstep = 2, .after_compute_calls = 0}};

  auto ticket = mgr.submit(g, apps::Hashmin{}, kPush, options, {}, retry);
  const JobReport& report = ticket.wait();
  ASSERT_EQ(report.state, JobState::kCompleted)
      << (report.error ? report.error->what() : "");
  EXPECT_EQ(report.attempts, 3u) << "both scheduled faults must trip";
  EXPECT_EQ(report.resumed_from_snapshot, 2u);
  EXPECT_EQ(ticket.values(), solo);
  std::filesystem::remove_all(dir);
}

// --- shutdown -------------------------------------------------------------

TEST(JobManager, ShutdownShedsQueuedAndRejectsNewSubmissions) {
  const CsrGraph g = tiny_graph();
  std::atomic<bool> gate{false};
  std::atomic<bool> started{false};
  JobManager mgr({.executors = 1, .team_threads = 1});
  auto blocker = mgr.submit(g, Spinner{.open = &gate, .started = &started}, kPush);
  wait_for_start(started);
  auto queued = mgr.submit(g, apps::Hashmin{}, kPush);

  // shutdown() blocks on the gated blocker; run it aside and watch the
  // queued job get shed immediately (before the blocker finishes).
  std::thread stopper([&] { mgr.shutdown(); });
  const JobReport& report = queued.wait();
  EXPECT_EQ(report.state, JobState::kShed);
  EXPECT_EQ(*report.shed_reason, ShedReason::kShutdown);

  gate.store(true, std::memory_order_release);
  stopper.join();
  EXPECT_EQ(blocker.wait().state, JobState::kCompleted)
      << "graceful shutdown must let the running job finish";

  bool thrown = false;
  try {
    (void)mgr.submit(g, apps::Hashmin{}, kPush);
  } catch (const ShedError& e) {
    thrown = true;
    EXPECT_EQ(e.reason(), ShedReason::kShutdown);
  }
  EXPECT_TRUE(thrown);
}

TEST(JobManager, StatsAlwaysBalance) {
  const CsrGraph g = make_graph(graph::grid_2d(6, 6));
  JobManager mgr({.executors = 2, .team_threads = 1, .max_queue_depth = 2});
  std::size_t rejected = 0;
  for (int i = 0; i < 24; ++i) {
    try {
      (void)mgr.submit(g, apps::Hashmin{}, kPush);
    } catch (const ShedError&) {
      ++rejected;
    }
  }
  mgr.shutdown();
  const JobManager::Stats s = mgr.stats();
  EXPECT_EQ(s.submitted, 24u);
  EXPECT_EQ(s.rejected, rejected);
  EXPECT_EQ(s.submitted, s.admitted + s.rejected);
  EXPECT_EQ(s.admitted, s.completed + s.failed + s.shed)
      << "every admitted job must end in exactly one terminal state";
  EXPECT_LE(s.max_queue_depth_seen, 2u);
  EXPECT_EQ(s.reserved_bytes, 0u);
}

}  // namespace
}  // namespace ipregel
