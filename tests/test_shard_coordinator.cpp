// Control-plane tests of the sharded runtime: the supervisor's budget and
// backoff arithmetic (pure unit tests), hang detection through the
// missed-heartbeat watchdog, recovery without checkpoints, respawn-budget
// exhaustion, the retained-frame window guard, and the PR-2 run guards
// (deadline, cancel token) routed through the coordinator.
//
// CI also runs this binary under TSan with --gtest_repeat as the
// coordinator/heartbeat soak.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/sssp.hpp"
#include "shard/coordinator.hpp"
#include "test_util.hpp"

namespace ipregel::shard {
namespace {

class TempDir {
 public:
  TempDir() {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = std::filesystem::temp_directory_path() /
            (std::string("ipregel_") + info->test_suite_name() + "_" +
             info->name());
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST(ShardSupervisor, BackoffGrowsExponentiallyAndCaps) {
  SupervisorPolicy policy;
  policy.max_respawns_per_shard = 10;
  policy.max_total_respawns = 100;
  policy.backoff_initial_seconds = 0.02;
  policy.backoff_multiplier = 2.0;
  policy.backoff_max_seconds = 0.1;
  ShardSupervisor sup(policy, 2);
  EXPECT_DOUBLE_EQ(sup.plan_respawn(0).value(), 0.02);
  EXPECT_DOUBLE_EQ(sup.plan_respawn(0).value(), 0.04);
  EXPECT_DOUBLE_EQ(sup.plan_respawn(0).value(), 0.08);
  EXPECT_DOUBLE_EQ(sup.plan_respawn(0).value(), 0.1);  // capped
  EXPECT_DOUBLE_EQ(sup.plan_respawn(0).value(), 0.1);
  // Another shard starts its own schedule from the beginning.
  EXPECT_DOUBLE_EQ(sup.plan_respawn(1).value(), 0.02);
  EXPECT_EQ(sup.generation(0), 5u);
  EXPECT_EQ(sup.generation(1), 1u);
  EXPECT_EQ(sup.total_respawns(), 6u);
}

TEST(ShardSupervisor, PerShardBudgetExhausts) {
  SupervisorPolicy policy;
  policy.max_respawns_per_shard = 2;
  policy.max_total_respawns = 100;
  ShardSupervisor sup(policy, 2);
  EXPECT_TRUE(sup.plan_respawn(0).has_value());
  EXPECT_TRUE(sup.plan_respawn(0).has_value());
  EXPECT_FALSE(sup.plan_respawn(0).has_value());
  // Shard 1 is unaffected by shard 0's exhaustion.
  EXPECT_TRUE(sup.plan_respawn(1).has_value());
}

TEST(ShardSupervisor, TotalBudgetIsARunWideFuse) {
  SupervisorPolicy policy;
  policy.max_respawns_per_shard = 100;
  policy.max_total_respawns = 3;
  ShardSupervisor sup(policy, 4);
  EXPECT_TRUE(sup.plan_respawn(0).has_value());
  EXPECT_TRUE(sup.plan_respawn(1).has_value());
  EXPECT_TRUE(sup.plan_respawn(2).has_value());
  EXPECT_FALSE(sup.plan_respawn(3).has_value());
}

[[nodiscard]] std::vector<std::uint32_t> sssp_reference(
    const graph::CsrGraph& g) {
  std::vector<std::uint32_t> values;
  EngineOptions opt;
  opt.threads = 1;
  (void)run_version(g, apps::Sssp{},
                    VersionId{CombinerKind::kMutexPush, false}, opt, nullptr,
                    &values);
  return values;
}

void expect_matches_reference(const graph::CsrGraph& g,
                              const std::vector<std::uint32_t>& got,
                              const std::string& tag) {
  const auto want = sssp_reference(g);
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(got[s], want[s]) << tag << " at slot " << s;
  }
}

TEST(ShardCoordinator, HangedWorkerIsKilledByTheWatchdogAndRecovered) {
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  TempDir dir;
  shard::ShardOptions opt;
  opt.num_shards = 2;
  opt.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  opt.checkpoint.every = 1;
  opt.checkpoint.directory = dir.str();
  opt.heartbeat_interval_seconds = 0.01;
  opt.hang_timeout_seconds = 0.25;
  ShardFault hang;
  hang.kind = ShardFault::Kind::kHang;
  hang.shard = 1;
  hang.superstep = 3;
  hang.phase = ShardFault::Phase::kCompute;
  opt.faults.push_back(hang);
  std::vector<std::uint32_t> got;
  const auto outcome = shard::run_sharded(g, apps::Sssp{}, opt, &got);
  ASSERT_TRUE(outcome.ok()) << outcome.error->what();
  EXPECT_GE(outcome.shard.heartbeat_kills, 1u);
  EXPECT_GE(outcome.shard.respawns, 1u);
  EXPECT_GE(outcome.shard.snapshot_recoveries, 1u);
  EXPECT_GT(outcome.shard.recovery_seconds, 0.0);
  expect_matches_reference(g, got, "hang-recovery");
}

TEST(ShardCoordinator, EarlyDeathWithoutCheckpointsRestartsFromZero) {
  // No checkpoints: the respawn resumes at superstep 0. That is inside
  // the survivors' retained-frame window only while the barrier is still
  // close to the start — here it is, so the run must complete and match.
  const auto g =
      testing::make_graph(graph::grid_2d(6, 6, graph::GridOptions{}));
  shard::ShardOptions opt;
  opt.num_shards = 2;
  opt.retain_supersteps = 4;
  ShardFault kill;
  kill.kind = ShardFault::Kind::kSigkill;
  kill.shard = 0;
  kill.superstep = 2;
  kill.phase = ShardFault::Phase::kCompute;
  opt.faults.push_back(kill);
  std::vector<std::uint32_t> got;
  const auto outcome = shard::run_sharded(g, apps::Sssp{}, opt, &got);
  ASSERT_TRUE(outcome.ok()) << outcome.error->what();
  EXPECT_EQ(outcome.shard.respawns, 1u);
  EXPECT_EQ(outcome.shard.snapshot_recoveries, 0u);  // no snapshot to use
  expect_matches_reference(g, got, "restart-from-zero");
}

TEST(ShardCoordinator, LateDeathBeyondTheRetainedWindowAborts) {
  // Same setup, but the kill lands deep into the run: a superstep-0
  // restart cannot be replayed forward from the survivors' retained
  // frames, and the coordinator must say so rather than hang or corrupt.
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  shard::ShardOptions opt;
  opt.num_shards = 2;
  opt.retain_supersteps = 3;
  ShardFault kill;
  kill.kind = ShardFault::Kind::kSigkill;
  kill.shard = 0;
  kill.superstep = 8;
  kill.phase = ShardFault::Phase::kCompute;
  opt.faults.push_back(kill);
  const auto outcome = shard::run_sharded(g, apps::Sssp{}, opt, nullptr);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind(), RunErrorKind::kShardFailure);
  EXPECT_NE(std::string(outcome.error->what()).find("retained"),
            std::string::npos);
}

TEST(ShardCoordinator, RespawnBudgetExhaustionIsATypedAbort) {
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  TempDir dir;
  shard::ShardOptions opt;
  opt.num_shards = 2;
  opt.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  opt.checkpoint.every = 1;
  opt.checkpoint.directory = dir.str();
  opt.supervisor.max_respawns_per_shard = 2;
  opt.supervisor.backoff_initial_seconds = 0.01;
  // Shard 1 dies in every incarnation: original, first respawn, second
  // respawn. The third death finds the budget empty.
  for (const std::size_t gen : {0u, 1u, 2u}) {
    ShardFault kill;
    kill.kind = ShardFault::Kind::kSigkill;
    kill.shard = 1;
    kill.superstep = 2 + gen;
    kill.phase = ShardFault::Phase::kCompute;
    kill.generation = gen;
    opt.faults.push_back(kill);
  }
  const auto outcome = shard::run_sharded(g, apps::Sssp{}, opt, nullptr);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind(), RunErrorKind::kShardFailure);
  EXPECT_NE(std::string(outcome.error->what()).find("budget"),
            std::string::npos);
}

TEST(ShardCoordinator, RunDeadlineFiresAsRunTimeout) {
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  shard::ShardOptions opt;
  opt.num_shards = 2;
  opt.guards.run_seconds = 0.25;
  // A worker hangs without any hang timeout tight enough to catch it —
  // the whole-run deadline must still bound the job.
  opt.hang_timeout_seconds = 60.0;
  ShardFault hang;
  hang.kind = ShardFault::Kind::kHang;
  hang.shard = 0;
  hang.superstep = 1;
  opt.faults.push_back(hang);
  const auto outcome = shard::run_sharded(g, apps::Sssp{}, opt, nullptr);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind(), RunErrorKind::kRunTimeout);
}

TEST(ShardCoordinator, CancelTokenAbortsTheRun) {
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  std::atomic<bool> cancel{true};
  shard::ShardOptions opt;
  opt.num_shards = 2;
  opt.guards.cancel_token = &cancel;
  const auto outcome = shard::run_sharded(g, apps::Sssp{}, opt, nullptr);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind(), RunErrorKind::kCancelled);
}

}  // namespace
}  // namespace ipregel::shard
