// In-process unit tests of ShardEngine: a hand-rolled BSP loop drives N
// engines against each other with plain byte vectors (no processes, no
// rings) and must reproduce the single-process engine exactly. Also
// covers the per-shard snapshot capture/validate/restore cycle and the
// lightweight resend_self rebuild.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/pagerank_dangling.hpp"
#include "apps/sssp.hpp"
#include "core/aggregator_traits.hpp"
#include "shard/shard_engine.hpp"
#include "test_util.hpp"

namespace ipregel::shard {
namespace {

/// The synchronous reference harness: every engine computes, all frames
/// cross, all advance — one barrier per superstep, applied in ascending
/// source order exactly as the worker's cursor machinery does.
template <typename Program>
struct InProcessRun {
  using Value = typename Program::value_type;

  InProcessRun(const graph::CsrGraph& g, Program program, std::size_t shards)
      : part(g, shards) {
    for (std::size_t s = 0; s < part.shards(); ++s) {
      engines.emplace_back(g, program, part, s);
      engines.back().initialize();
    }
  }

  /// Runs one superstep; returns true while the computation is live.
  bool superstep_once() {
    const std::size_t n = engines.size();
    std::uint64_t sent = 0;
    std::uint64_t active = 0;
    for (auto& e : engines) {
      const auto counts =
          e.compute_superstep(superstep, [](std::uint64_t) {});
      sent += counts.sent;
      active += counts.active;
    }
    // frames[src][dst], applied per destination in ascending src order.
    std::vector<std::vector<std::vector<std::uint8_t>>> frames(n);
    for (std::size_t src = 0; src < n; ++src) {
      for (std::size_t dst = 0; dst < n; ++dst) {
        frames[src].push_back(engines[src].take_outbox(dst));
      }
    }
    for (std::size_t dst = 0; dst < n; ++dst) {
      for (std::size_t src = 0; src < n; ++src) {
        engines[dst].apply_frame(frames[src][dst], /*into_current=*/false);
      }
    }
    if constexpr (HasSerializableAggregator<Program>) {
      auto agg = Program::aggregate_identity();
      for (auto& e : engines) {
        const auto bytes = e.take_aggregate_partial();
        Program::aggregate(agg, aggregate_from_bytes<Program>(bytes));
      }
      const auto folded = aggregate_to_bytes<Program>(agg);
      for (auto& e : engines) {
        e.set_aggregated(folded);
      }
    }
    for (auto& e : engines) {
      e.advance();
    }
    ++superstep;
    return sent != 0 || active != 0;
  }

  std::vector<Value> run_to_completion(std::size_t cap = 10'000) {
    while (superstep_once() && superstep < cap) {
    }
    return values();
  }

  [[nodiscard]] std::vector<Value> values() const {
    std::vector<Value> out;
    for (const auto& e : engines) {
      const auto bytes = e.value_bytes();
      const auto* v = reinterpret_cast<const Value*>(bytes.data());
      out.insert(out.end(), v, v + bytes.size() / sizeof(Value));
    }
    return out;
  }

  ShardPartition part;
  std::vector<ShardEngine<Program>> engines;
  std::uint64_t superstep = 0;
};

/// Engine reference restricted to the populated slots, in slot order —
/// comparable with InProcessRun::values() concatenation.
template <typename Program>
std::vector<typename Program::value_type> engine_populated(
    const graph::CsrGraph& g, Program program) {
  std::vector<typename Program::value_type> values;
  EngineOptions opt;
  opt.threads = 1;
  (void)run_version(g, program, VersionId{CombinerKind::kMutexPush, false},
                    opt, nullptr, &values);
  return {values.begin() + static_cast<std::ptrdiff_t>(g.first_slot()),
          values.begin() + static_cast<std::ptrdiff_t>(g.num_slots())};
}

TEST(ShardEngine, HashminMatchesTheEngineAcrossShardCounts) {
  const auto g = testing::make_graph(
      graph::rmat(7, 4, graph::RmatOptions{.seed = 8}));
  const auto want = engine_populated(g, apps::Hashmin{});
  for (const std::size_t shards : {1u, 2u, 4u}) {
    InProcessRun<apps::Hashmin> run(g, apps::Hashmin{}, shards);
    EXPECT_EQ(run.run_to_completion(), want) << shards << " shards";
  }
}

TEST(ShardEngine, PageRankSingleShardIsBitIdentical) {
  const auto g = testing::make_graph(
      graph::rmat(6, 4, graph::RmatOptions{.seed = 2}));
  apps::PageRank pr;
  pr.rounds = 8;
  const auto want = engine_populated(g, pr);
  InProcessRun<apps::PageRank> run(g, pr, 1);
  const auto got = run.run_to_completion();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "slot offset " << i;  // bitwise
  }
}

TEST(ShardEngine, DanglingAggregatorFoldsAcrossEngines) {
  const auto g = testing::make_graph(
      graph::rmat(6, 3, graph::RmatOptions{.seed = 17}));
  apps::PageRankDangling pr;
  pr.rounds = 8;
  const auto want = engine_populated(g, pr);
  InProcessRun<apps::PageRankDangling> run(g, pr, 3);
  const auto got = run.run_to_completion();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-12) << "slot offset " << i;
  }
}

TEST(ShardEngine, HeavyweightCaptureRestoreRoundTrips) {
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  const std::uint64_t graph_fp = 0x1111;
  InProcessRun<apps::Sssp> run(g, apps::Sssp{}, 2);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(run.superstep_once());
  }
  // Capture both shards "about to compute superstep 4", clone into fresh
  // engines, and continue both runs to completion.
  InProcessRun<apps::Sssp> clone(g, apps::Sssp{}, 2);
  for (std::size_t s = 0; s < 2; ++s) {
    const std::uint64_t fp = shard_fingerprint(0x2222, 2, s);
    const auto snap = run.engines[s].capture(
        ft::CheckpointMode::kHeavyweight, run.superstep, graph_fp, fp);
    EXPECT_EQ(snap.meta.combiner, kShardCombinerTag);
    EXPECT_EQ(snap.meta.first_slot, run.part.slots(s).begin);
    ASSERT_EQ(clone.engines[s].validate(snap, graph_fp, fp), nullptr);
    clone.engines[s].restore(snap);
  }
  clone.superstep = run.superstep;
  EXPECT_EQ(run.run_to_completion(), clone.run_to_completion());
}

TEST(ShardEngine, LightweightRestoreRebuildsTheInboxViaResend) {
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  InProcessRun<apps::Sssp> run(g, apps::Sssp{}, 2);
  std::vector<std::vector<std::vector<std::uint8_t>>> last_frames;
  // Drive manually so the frames of the last completed superstep are
  // retained — the worker's RetainedGen, in miniature.
  for (int step = 0; step < 5; ++step) {
    for (auto& e : run.engines) {
      (void)e.compute_superstep(run.superstep, [](std::uint64_t) {});
    }
    last_frames.assign(2, {});
    for (std::size_t src = 0; src < 2; ++src) {
      for (std::size_t dst = 0; dst < 2; ++dst) {
        last_frames[src].push_back(run.engines[src].take_outbox(dst));
      }
    }
    for (std::size_t dst = 0; dst < 2; ++dst) {
      for (std::size_t src = 0; src < 2; ++src) {
        run.engines[dst].apply_frame(last_frames[src][dst], false);
      }
    }
    for (auto& e : run.engines) {
      e.advance();
    }
    ++run.superstep;
  }
  // Shard 1 dies and comes back from a lightweight snapshot taken at
  // exactly this superstep: values + halted only.
  const std::uint64_t resume = run.superstep;
  const auto snap = run.engines[1].capture(ft::CheckpointMode::kLightweight,
                                           resume, 0, 0);
  EXPECT_TRUE(snap.inbox.empty());
  ShardEngine<apps::Sssp> revived(g, apps::Sssp{}, run.part, 1);
  ASSERT_EQ(revived.validate(snap, 0, 0), nullptr);
  revived.restore(snap);
  // Rebuild the current inbox: survivor's republished frame for source 0,
  // own regeneration at source position 1.
  revived.apply_frame(last_frames[0][1], /*into_current=*/true);
  revived.resend_self(resume);
  // The survivor (with its true state) and the revived engine must now
  // run identically to an undisturbed run. ShardEngine holds a graph
  // reference, so drive the pair through pointers rather than moving them
  // into a fresh harness.
  std::vector<ShardEngine<apps::Sssp>*> pair = {&run.engines[0], &revived};
  std::uint64_t superstep = resume;
  for (;;) {
    std::uint64_t sent = 0;
    std::uint64_t active = 0;
    for (auto* e : pair) {
      const auto counts = e->compute_superstep(superstep, [](std::uint64_t) {});
      sent += counts.sent;
      active += counts.active;
    }
    std::vector<std::vector<std::vector<std::uint8_t>>> frames(2);
    for (std::size_t src = 0; src < 2; ++src) {
      for (std::size_t dst = 0; dst < 2; ++dst) {
        frames[src].push_back(pair[src]->take_outbox(dst));
      }
    }
    for (std::size_t dst = 0; dst < 2; ++dst) {
      for (std::size_t src = 0; src < 2; ++src) {
        pair[dst]->apply_frame(frames[src][dst], false);
      }
    }
    for (auto* e : pair) {
      e->advance();
    }
    ++superstep;
    if (sent == 0 && active == 0) {
      break;
    }
  }
  InProcessRun<apps::Sssp> undisturbed(g, apps::Sssp{}, 2);
  const auto want = undisturbed.run_to_completion();
  std::vector<std::uint32_t> got;
  for (auto* e : pair) {
    const auto bytes = e->value_bytes();
    const auto* v = reinterpret_cast<const std::uint32_t*>(bytes.data());
    got.insert(got.end(), v, v + bytes.size() / sizeof(std::uint32_t));
  }
  EXPECT_EQ(got, want);
}

TEST(ShardEngine, ValidateRejectsForeignSlices) {
  const auto g = testing::make_graph(
      graph::rmat(6, 4, graph::RmatOptions{.seed = 5}));
  const ShardPartition two(g, 2);
  ShardEngine<apps::Hashmin> e0(g, apps::Hashmin{}, two, 0);
  ShardEngine<apps::Hashmin> e1(g, apps::Hashmin{}, two, 1);
  e0.initialize();
  e1.initialize();
  const std::uint64_t fp2_0 = shard_fingerprint(0xAB, 2, 0);

  // A slice from the right shard under the right binding: accepted.
  const auto good =
      e0.capture(ft::CheckpointMode::kHeavyweight, 3, 0x99, fp2_0);
  EXPECT_EQ(e0.validate(good, 0x99, fp2_0), nullptr);

  // Wrong graph.
  EXPECT_NE(e0.validate(good, 0x77, fp2_0), nullptr);
  // Wrong shard topology: same program, 4 shards instead of 2. Both the
  // fingerprint and (here) the slot range disagree.
  EXPECT_NE(e0.validate(good, 0x99, shard_fingerprint(0xAB, 4, 0)), nullptr);
  // Another shard's slice under this shard's validator: range mismatch.
  const std::uint64_t fp2_1 = shard_fingerprint(0xAB, 2, 1);
  const auto foreign =
      e1.capture(ft::CheckpointMode::kHeavyweight, 3, 0x99, fp2_1);
  EXPECT_NE(e0.validate(foreign, 0x99, fp2_0), nullptr);
  // A whole-run engine snapshot (no shard combiner tag) must be rejected
  // even when everything else is zeroed out.
  auto whole = good;
  whole.meta.combiner = 0;
  whole.meta.program_fingerprint = 0;
  EXPECT_NE(e0.validate(whole, 0x99, fp2_0), nullptr);
}

}  // namespace
}  // namespace ipregel::shard
