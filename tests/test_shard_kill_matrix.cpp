// The headline chaos matrix of the sharded runtime: SIGKILL a worker at a
// fixed superstep, at a seeded random superstep/phase, and EIO its
// snapshot during recovery — for PageRank, SSSP, and Hashmin, under both
// checkpoint modes — and require the final vertex values to be
// BIT-IDENTICAL to the undisturbed sharded run. Recovery is only correct
// here if the respawned shard replays the exact schedule: restore the
// newest valid slice, rebuild the inbox (republished frames, and
// resend_self for lightweight), and redo supersteps deterministically.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "chaos_seed.hpp"
#include "runtime/rng.hpp"
#include "shard/coordinator.hpp"
#include "test_util.hpp"

namespace ipregel::shard {
namespace {

/// The matrix seed (IPREGEL_CHAOS_SEED overrides); the seeded cells
/// derive their coordinates from it, every cell announces itself under it.
const std::uint64_t kMatrixSeed = testing::chaos_seed(0x5EED2026ULL);

class TempDir {
 public:
  explicit TempDir(const std::string& suffix) {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = std::filesystem::temp_directory_path() /
            (std::string("ipregel_") + info->test_suite_name() + "_" +
             info->name() + "_" + suffix);
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

/// Shared options of every cell: 2 shards, checkpoint every superstep,
/// keep 3 generations (the EIO cell quarantines the newest and falls back
/// one), retain 4 frame generations (a lightweight resume at T-1 rebuilds
/// from frames of T-2 — one deeper than the heavyweight window).
ShardOptions cell_options(ft::CheckpointMode mode, const std::string& dir) {
  ShardOptions opt;
  opt.num_shards = 2;
  opt.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  opt.checkpoint.mode = mode;
  opt.checkpoint.every = 1;
  opt.checkpoint.keep = 3;
  opt.checkpoint.directory = dir;
  opt.retain_supersteps = 4;
  opt.supervisor.backoff_initial_seconds = 0.01;
  return opt;
}

template <typename Program>
void run_cell(const graph::CsrGraph& g, Program program,
              ft::CheckpointMode mode, std::vector<ShardFault> faults,
              std::vector<RestoreFault> restore_faults,
              std::size_t min_recoveries, const std::string& tag) {
  using Value = typename Program::value_type;
  SCOPED_TRACE(tag);
  testing::announce_cell("shard_kill", kMatrixSeed, tag);

  TempDir base_dir(tag + "_base");
  auto base_opt = cell_options(mode, base_dir.str());
  std::vector<Value> want;
  const auto base = run_sharded(g, program, base_opt, &want);
  ASSERT_TRUE(base.ok()) << base.error->what();
  ASSERT_EQ(base.shard.respawns, 0u);

  TempDir chaos_dir(tag + "_chaos");
  auto chaos_opt = cell_options(mode, chaos_dir.str());
  chaos_opt.faults = std::move(faults);
  chaos_opt.restore_faults = std::move(restore_faults);
  std::vector<Value> got;
  const auto chaos = run_sharded(g, program, chaos_opt, &got);
  ASSERT_TRUE(chaos.ok()) << chaos.error->what();
  EXPECT_GE(chaos.shard.respawns, 1u);
  EXPECT_GE(chaos.shard.snapshot_recoveries, min_recoveries);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    // Bitwise, not approximate: recovery replays the exact fold order,
    // doubles included.
    ASSERT_EQ(std::memcmp(&got[s], &want[s], sizeof(Value)), 0)
        << "slot " << s << " diverged after recovery";
  }
}

[[nodiscard]] ShardFault kill_at(std::size_t shard, std::uint64_t superstep,
                                 ShardFault::Phase phase,
                                 std::size_t generation = 0) {
  ShardFault f;
  f.kind = ShardFault::Kind::kSigkill;
  f.shard = shard;
  f.superstep = superstep;
  f.phase = phase;
  f.generation = generation;
  return f;
}

struct Cell {
  const char* app;
  ft::CheckpointMode mode;
};

constexpr ft::CheckpointMode kModes[] = {ft::CheckpointMode::kHeavyweight,
                                         ft::CheckpointMode::kLightweight};

template <typename Program>
void run_matrix_for(const graph::CsrGraph& g, Program program,
                    const std::string& app) {
  for (const auto mode : kModes) {
    const std::string mt = app + "_" + std::string(to_string(mode));

    // Cell 1 — the spec's fixed point: SIGKILL shard 1 at superstep 7.
    run_cell(g, program, mode,
             {kill_at(1, 7, ShardFault::Phase::kCompute)}, {}, 1,
             mt + "_kill_s7");

    // Cell 2 — seeded random superstep and phase. The seed fixes the
    // cell, so failures reproduce; sweep it via IPREGEL_CHAOS_SEED when
    // hunting.
    const std::uint64_t h =
        runtime::mix64(kMatrixSeed ^ (app.size() * 131) ^
                       static_cast<std::uint64_t>(mode));
    const std::uint64_t superstep = 2 + h % 6;
    constexpr ShardFault::Phase kPhases[] = {
        ShardFault::Phase::kCompute, ShardFault::Phase::kAfterPost,
        ShardFault::Phase::kBeforeCheckpoint,
        ShardFault::Phase::kAfterCheckpoint};
    const auto phase = kPhases[(h >> 8) % 4];
    const std::size_t shard = (h >> 16) % 2;
    run_cell(g, program, mode, {kill_at(shard, superstep, phase)}, {}, 1,
             mt + "_kill_seeded_s" + std::to_string(superstep));

    // Cell 3 — EIO during recovery: the first respawn's newest snapshot
    // read fails; SnapshotDirectory must quarantine it and fall back to
    // the previous generation, still bit-identical.
    RestoreFault eio;
    eio.shard = 1;
    eio.generation = 1;
    eio.fail_reads = 1;
    run_cell(g, program, mode,
             {kill_at(1, 5, ShardFault::Phase::kCompute)}, {eio}, 1,
             mt + "_eio_during_recovery");
  }
}

TEST(ShardKillMatrix, PageRank) {
  const auto g = testing::make_graph(
      graph::rmat(6, 4, graph::RmatOptions{.seed = 12}));
  apps::PageRank pr;
  pr.rounds = 12;
  run_matrix_for(g, pr, "pagerank");
}

TEST(ShardKillMatrix, Sssp) {
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  run_matrix_for(g, apps::Sssp{}, "sssp");
}

TEST(ShardKillMatrix, Hashmin) {
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  run_matrix_for(g, apps::Hashmin{}, "hashmin");
}

TEST(ShardKillMatrix, DeathInEveryPhaseOfTheProtocol) {
  // A deterministic sweep over all four fault phases at one superstep:
  // mid-compute, after frames are posted, before the checkpoint, after
  // the checkpoint. Each lands the respawn at a different resume point.
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  for (const auto phase :
       {ShardFault::Phase::kCompute, ShardFault::Phase::kAfterPost,
        ShardFault::Phase::kBeforeCheckpoint,
        ShardFault::Phase::kAfterCheckpoint}) {
    run_cell(g, apps::Sssp{}, ft::CheckpointMode::kHeavyweight,
             {kill_at(0, 4, phase)}, {}, 1,
             "phase_" + std::to_string(static_cast<int>(phase)));
  }
}

TEST(ShardKillMatrix, BothShardsDieInSequence) {
  // Two distinct shards die at different supersteps of one run; each
  // recovery must leave the other's state untouched.
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  run_cell(g, apps::Sssp{}, ft::CheckpointMode::kHeavyweight,
           {kill_at(0, 3, ShardFault::Phase::kCompute),
            kill_at(1, 6, ShardFault::Phase::kCompute)},
           {}, 2, "double_kill");
}

TEST(ShardKillMatrix, RepeatedDeathOfTheSameShardDegradesGracefully) {
  // The same shard dies in its original incarnation AND in its first
  // respawn (generation 1, mid-redo); the second respawn finishes the
  // run. Exercises backoff growth and recovery-from-recovery.
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  run_cell(g, apps::Sssp{}, ft::CheckpointMode::kHeavyweight,
           {kill_at(1, 4, ShardFault::Phase::kCompute),
            kill_at(1, 5, ShardFault::Phase::kCompute, 1)},
           {}, 2, "kill_the_respawn");
}

}  // namespace
}  // namespace ipregel::shard
