// The durable run manifest: round-trip fidelity, identity digests,
// newest-valid fallback with quarantine, bounded retention, and — the
// property coordinator takeover stands on — a power cut at EVERY mutating
// syscall of a publish leaves the directory either at the old manifest or
// at the new one, never at garbage and never empty.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "io/fault_wrap_vfs.hpp"
#include "io/vfs.hpp"
#include "shard/manifest.hpp"

namespace ipregel::shard {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& suffix) {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = std::filesystem::temp_directory_path() /
            (std::string("ipregel_") + info->test_suite_name() + "_" +
             info->name() + "_" + suffix);
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

[[nodiscard]] RunManifest sample_manifest(std::uint64_t commit_seq) {
  RunManifest m;
  m.graph_fingerprint = 0xFEEDFACE12345678ULL;
  m.options_digest = 0xD16E57;
  m.num_shards = 3;
  m.partition = 1;
  m.transport = 0;
  m.epoch = 2;
  m.commit_seq = commit_seq;
  m.barrier_superstep = 7;
  m.halting = false;
  m.supersteps = 7;
  m.total_messages = 4242;
  m.total_executed = 999;
  m.reached_cap = false;
  m.respawns = 1;
  m.snapshot_recoveries = 1;
  m.heartbeat_kills = 2;
  m.coordinator_takeovers = 1;
  m.adopted_workers = 3;
  m.recovery_seconds = 0.125;
  m.coordinator_recovery_seconds = 0.5;
  m.generations = {0, 2, 1};
  for (std::uint64_t s = 3; s < 7; ++s) {
    ManifestRelease rel;
    rel.superstep = s;
    rel.command = s == 6 ? 1 : 0;
    rel.aggregate = {static_cast<std::uint8_t>(s), 0x42};
    m.history.push_back(rel);
  }
  return m;
}

TEST(ShardManifest, RoundTripsEveryField) {
  TempDir dir("rt");
  io::Vfs& vfs = io::vfs_or_real(nullptr);
  const RunManifest m = sample_manifest(5);
  const std::string path = dir.str() + "/manifest.000000000005.ipman";
  write_manifest(vfs, path, m);
  const RunManifest r = read_manifest(vfs, path);

  EXPECT_EQ(r.graph_fingerprint, m.graph_fingerprint);
  EXPECT_EQ(r.options_digest, m.options_digest);
  EXPECT_EQ(r.num_shards, m.num_shards);
  EXPECT_EQ(r.partition, m.partition);
  EXPECT_EQ(r.transport, m.transport);
  EXPECT_EQ(r.epoch, m.epoch);
  EXPECT_EQ(r.commit_seq, m.commit_seq);
  EXPECT_EQ(r.barrier_superstep, m.barrier_superstep);
  EXPECT_EQ(r.halting, m.halting);
  EXPECT_EQ(r.supersteps, m.supersteps);
  EXPECT_EQ(r.total_messages, m.total_messages);
  EXPECT_EQ(r.total_executed, m.total_executed);
  EXPECT_EQ(r.reached_cap, m.reached_cap);
  EXPECT_EQ(r.respawns, m.respawns);
  EXPECT_EQ(r.snapshot_recoveries, m.snapshot_recoveries);
  EXPECT_EQ(r.heartbeat_kills, m.heartbeat_kills);
  EXPECT_EQ(r.coordinator_takeovers, m.coordinator_takeovers);
  EXPECT_EQ(r.adopted_workers, m.adopted_workers);
  EXPECT_DOUBLE_EQ(r.recovery_seconds, m.recovery_seconds);
  EXPECT_DOUBLE_EQ(r.coordinator_recovery_seconds,
                   m.coordinator_recovery_seconds);
  EXPECT_EQ(r.generations, m.generations);
  ASSERT_EQ(r.history.size(), m.history.size());
  for (std::size_t i = 0; i < r.history.size(); ++i) {
    EXPECT_EQ(r.history[i].superstep, m.history[i].superstep);
    EXPECT_EQ(r.history[i].command, m.history[i].command);
    EXPECT_EQ(r.history[i].aggregate, m.history[i].aggregate);
  }
}

TEST(ShardManifest, OptionsDigestSeparatesIncompatibleRuns) {
  ShardOptions a;
  ShardOptions b = a;
  EXPECT_EQ(options_digest(a), options_digest(b));
  // Every identity-bearing knob must move the digest: a takeover with a
  // different topology/cadence must be refused, not half-adopted.
  b.num_shards = a.num_shards + 1;
  EXPECT_NE(options_digest(a), options_digest(b));
  b = a;
  b.transport = TransportKind::kTcp;
  EXPECT_NE(options_digest(a), options_digest(b));
  b = a;
  b.checkpoint.mode = ft::CheckpointMode::kLightweight;
  EXPECT_NE(options_digest(a), options_digest(b));
  b = a;
  b.checkpoint.every = a.checkpoint.every + 1;
  EXPECT_NE(options_digest(a), options_digest(b));
  b = a;
  b.retain_supersteps = a.retain_supersteps + 1;
  EXPECT_NE(options_digest(a), options_digest(b));
  b = a;
  b.max_supersteps = a.max_supersteps + 1;
  EXPECT_NE(options_digest(a), options_digest(b));
}

TEST(ShardManifest, NewestValidQuarantinesCorruptAndFallsBack) {
  TempDir dir("fb");
  ManifestDirectory mdir(dir.str());
  mdir.publish(sample_manifest(1));
  mdir.publish(sample_manifest(2));

  // Corrupt the newest in place: flip a byte in the middle.
  const std::string newest = mdir.path_for(2);
  {
    std::fstream f(newest,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(40);
    f.put('\xEE');
  }

  ManifestDirectory fresh(dir.str());
  const auto got = fresh.newest_valid();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->commit_seq, 1u);
  EXPECT_EQ(fresh.quarantined(), 1u);
  EXPECT_TRUE(std::filesystem::exists(newest + ".quarantined"));
  EXPECT_FALSE(std::filesystem::exists(newest));
}

TEST(ShardManifest, EmptyAndForeignFilesYieldNothing) {
  TempDir dir("empty");
  ManifestDirectory mdir(dir.str());
  EXPECT_FALSE(mdir.newest_valid().has_value());
  // Foreign names and tmp leftovers are ignored by the walk.
  std::ofstream(dir.str() + "/values.bin") << "x";
  std::ofstream(dir.str() + "/manifest.000000000009.ipman.tmp") << "y";
  EXPECT_FALSE(mdir.newest_valid().has_value());
  // A missing directory is "no manifests", not an error.
  ManifestDirectory gone(dir.str() + "/nope");
  EXPECT_FALSE(gone.newest_valid().has_value());
}

TEST(ShardManifest, RetentionPrunesOldestButKeepsTheWindow) {
  TempDir dir("keep");
  ManifestDirectory mdir(dir.str(), nullptr, /*keep=*/3);
  for (std::uint64_t seq = 1; seq <= 6; ++seq) {
    RunManifest m = sample_manifest(seq);
    m.barrier_superstep = seq;
    mdir.publish(m);
  }
  const auto entries = mdir.list();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries.front().seq, 4u);
  EXPECT_EQ(entries.back().seq, 6u);
  const auto got = mdir.newest_valid();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->barrier_superstep, 6u);
}

TEST(ShardManifest, PowerCutAtEverySyscallOfAPublishIsAtomic) {
  // The write-ahead property, mechanically: cut the power at mutating
  // syscall 0, 1, 2, ... of publishing manifest 2 over a durable
  // manifest 1. After every cut, a fresh directory walk must recover
  // EITHER manifest 2 (the publish completed) or manifest 1 (it did
  // not) — never nothing, never a half-written hybrid.
  io::Vfs& real = io::vfs_or_real(nullptr);
  for (std::uint64_t at = 0;; ++at) {
    TempDir dir("cut" + std::to_string(at));
    {
      ManifestDirectory setup(dir.str());
      setup.publish(sample_manifest(1));
    }
    io::WriteCutVfs cut(real, at, "manifest.");
    ManifestDirectory cutting(dir.str(), &cut);
    bool lost_power = false;
    try {
      cutting.publish(sample_manifest(2));
    } catch (const io::PowerLoss&) {
      lost_power = true;
    }
    ManifestDirectory after(dir.str());
    const auto got = after.newest_valid();
    ASSERT_TRUE(got.has_value()) << "cut at op " << at;
    EXPECT_TRUE(got->commit_seq == 1 || got->commit_seq == 2)
        << "cut at op " << at;
    if (got->commit_seq == 2) {
      EXPECT_EQ(got->barrier_superstep, 7u) << "cut at op " << at;
    }
    if (!lost_power) {
      // The cut point lies beyond the publish's syscall count: the sweep
      // is complete.
      EXPECT_EQ(got->commit_seq, 2u);
      break;
    }
  }
}

}  // namespace
}  // namespace ipregel::shard
