// The network chaos matrix: the sharded runtime over loopback TCP must
// produce final values BIT-IDENTICAL to the undisturbed shared-memory
// run — under process kills (the PR-7 matrix re-run over sockets), under
// injected network faults at deterministic counted frame ops (torn
// frames, short reads/writes, dropped connections), under stall windows
// long enough to trip the heartbeat watchdog, and under full N-way
// partitions that heal. A partition that never heals must exhaust the
// reconnect budget into a TYPED kShardFailure — never a hang, never a
// wrong answer.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "chaos_seed.hpp"
#include "runtime/rng.hpp"
#include "shard/coordinator.hpp"
#include "test_util.hpp"

namespace ipregel::shard {
namespace {

/// The matrix seed (IPREGEL_CHAOS_SEED overrides); the seeded cell
/// derives its coordinates from it, every cell announces itself under it.
const std::uint64_t kMatrixSeed = testing::chaos_seed(0x7C9'2026ULL);

class TempDir {
 public:
  explicit TempDir(const std::string& suffix) {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = std::filesystem::temp_directory_path() /
            (std::string("ipregel_") + info->test_suite_name() + "_" +
             info->name() + "_" + suffix);
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

/// Cell defaults mirror the kill matrix: 2 shards, checkpoint every
/// superstep, keep 3, retain 4 frame generations; fast supervisor
/// backoff and fast net backoff so chaos cells converge in test time.
ShardOptions cell_options(ft::CheckpointMode mode, const std::string& dir) {
  ShardOptions opt;
  opt.num_shards = 2;
  opt.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  opt.checkpoint.mode = mode;
  opt.checkpoint.every = 1;
  opt.checkpoint.keep = 3;
  opt.checkpoint.directory = dir;
  opt.retain_supersteps = 4;
  opt.supervisor.backoff_initial_seconds = 0.01;
  opt.net.backoff_initial_seconds = 0.005;
  opt.net.backoff_max_seconds = 0.05;
  return opt;
}

/// Runs the app twice — undisturbed over SHM, then over TCP with the
/// given chaos — and requires byte-equal final values.
template <typename Program>
void run_tcp_cell(const graph::CsrGraph& g, Program program,
                  ft::CheckpointMode mode, const std::string& tag,
                  const std::function<void(ShardOptions&)>& chaos,
                  std::size_t min_respawns = 0) {
  using Value = typename Program::value_type;
  SCOPED_TRACE(tag);
  testing::announce_cell("shard_net", kMatrixSeed, tag);

  TempDir base_dir(tag + "_base");
  auto base_opt = cell_options(mode, base_dir.str());
  std::vector<Value> want;
  const auto base = run_sharded(g, program, base_opt, &want);
  ASSERT_TRUE(base.ok()) << base.error->what();
  ASSERT_EQ(base.shard.respawns, 0u);

  TempDir tcp_dir(tag + "_tcp");
  auto tcp_opt = cell_options(mode, tcp_dir.str());
  tcp_opt.transport = TransportKind::kTcp;
  chaos(tcp_opt);
  std::vector<Value> got;
  const auto tcp = run_sharded(g, program, tcp_opt, &got);
  ASSERT_TRUE(tcp.ok()) << tcp.error->what();
  EXPECT_GE(tcp.shard.respawns, min_respawns);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    // Bitwise: the TCP plane must reproduce the exact fold order of the
    // shared-memory run, faults and reconnects included.
    ASSERT_EQ(std::memcmp(&got[s], &want[s], sizeof(Value)), 0)
        << "slot " << s << " diverged over TCP";
  }
}

[[nodiscard]] ShardFault kill_at(std::size_t shard, std::uint64_t superstep,
                                 ShardFault::Phase phase,
                                 std::size_t generation = 0) {
  ShardFault f;
  f.kind = ShardFault::Kind::kSigkill;
  f.shard = shard;
  f.superstep = superstep;
  f.phase = phase;
  f.generation = generation;
  return f;
}

[[nodiscard]] NetFault net_fault(NetFault::Kind kind, std::size_t shard,
                                 std::size_t peer, std::uint64_t at_op,
                                 NetFault::Plane plane = NetFault::Plane::kData,
                                 double seconds = 0.25) {
  NetFault f;
  f.kind = kind;
  f.shard = shard;
  f.peer = peer;
  f.at_op = at_op;
  f.plane = plane;
  f.seconds = seconds;
  return f;
}

constexpr ft::CheckpointMode kModes[] = {ft::CheckpointMode::kHeavyweight,
                                         ft::CheckpointMode::kLightweight};

// ---------------------------------------------------------------------
// Cell family 1 — every app × both checkpoint modes: a clean TCP run, a
// SIGKILL mid-run (the PR-7 fixed point re-run over sockets), and a
// torn-frame reset at a counted data op.

template <typename Program>
void run_matrix_for(const graph::CsrGraph& g, Program program,
                    const std::string& app) {
  for (const auto mode : kModes) {
    const std::string mt = app + "_" + std::string(to_string(mode));

    run_tcp_cell(g, program, mode, mt + "_clean",
                 [](ShardOptions&) {});

    run_tcp_cell(
        g, program, mode, mt + "_kill_s7",
        [](ShardOptions& opt) {
          opt.faults = {kill_at(1, 7, ShardFault::Phase::kCompute)};
        },
        /*min_respawns=*/1);

    // RST mid-frame on the data link at counted op 5: the torn frame is
    // recovered by reconnect + retained-frame republish, transparently —
    // no process ever dies.
    run_tcp_cell(g, program, mode, mt + "_reset_midframe",
                 [](ShardOptions& opt) {
                   opt.net_faults = {net_fault(NetFault::Kind::kResetMidFrame,
                                               1, 0, 5)};
                 });
  }
}

TEST(ShardNetMatrix, PageRank) {
  const auto g = testing::make_graph(
      graph::rmat(6, 4, graph::RmatOptions{.seed = 12}));
  apps::PageRank pr;
  pr.rounds = 12;
  run_matrix_for(g, pr, "pagerank");
}

TEST(ShardNetMatrix, Sssp) {
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  run_matrix_for(g, apps::Sssp{}, "sssp");
}

TEST(ShardNetMatrix, Hashmin) {
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  run_matrix_for(g, apps::Hashmin{}, "hashmin");
}

// ---------------------------------------------------------------------
// Cell family 2 — one fault kind per protocol phase, sssp/heavyweight.

TEST(ShardNetMatrix, PartialIoAtEveryPhaseIsTransparent) {
  // Short writes and short reads at the handshake-adjacent op (1) and a
  // mid-stream op (5), both directions at once: pure framing stress, no
  // reconnect — the stream reassembles byte-split frames.
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  run_tcp_cell(g, apps::Sssp{}, ft::CheckpointMode::kHeavyweight,
               "short_io", [](ShardOptions& opt) {
                 opt.net_faults = {
                     net_fault(NetFault::Kind::kShortWrite, 1, 0, 1),
                     net_fault(NetFault::Kind::kShortWrite, 0, 1, 5),
                     net_fault(NetFault::Kind::kShortRead, 0, 1, 2),
                     net_fault(NetFault::Kind::kShortRead, 1, 0, 6),
                 };
               });
}

TEST(ShardNetMatrix, DroppedConnectionsAtEveryPhaseResync) {
  // Orderly connection drops at the first post-handshake op on one side
  // and mid-stream on the other: both reconnect and republish retained
  // frames; dedup keeps the fold bit-identical.
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  run_tcp_cell(g, apps::Sssp{}, ft::CheckpointMode::kHeavyweight,
               "drop_conn", [](ShardOptions& opt) {
                 opt.net_faults = {
                     net_fault(NetFault::Kind::kDropConn, 1, 0, 1),
                     net_fault(NetFault::Kind::kDropConn, 0, 1, 4),
                 };
               });
}

TEST(ShardNetMatrix, KillDuringEveryProtocolPhaseOverTcp) {
  // The PR-7 phase sweep, over sockets: death mid-compute, after frames
  // are posted, before and after the checkpoint. Each lands the respawn
  // at a different resume point; TCP adds reconnect + republish to every
  // one of them.
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  for (const auto phase :
       {ShardFault::Phase::kCompute, ShardFault::Phase::kAfterPost,
        ShardFault::Phase::kBeforeCheckpoint,
        ShardFault::Phase::kAfterCheckpoint}) {
    run_tcp_cell(
        g, apps::Sssp{}, ft::CheckpointMode::kHeavyweight,
        "tcp_phase_" + std::to_string(static_cast<int>(phase)),
        [&](ShardOptions& opt) {
          opt.faults = {kill_at(0, 4, phase)};
        },
        /*min_respawns=*/1);
  }
}

TEST(ShardNetMatrix, DataStallRidesThrough) {
  // The data link goes silent for 0.3s mid-run. Writes queue behind the
  // mute and flush when it lifts; heartbeats ride the (unmuted) control
  // link, so nobody is killed.
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  run_tcp_cell(g, apps::Sssp{}, ft::CheckpointMode::kHeavyweight,
               "data_stall", [](ShardOptions& opt) {
                 opt.net_faults = {net_fault(NetFault::Kind::kStall, 1, 0, 3,
                                             NetFault::Plane::kData, 0.3)};
               });
}

TEST(ShardNetMatrix, CtrlStallTripsTheHeartbeatWatchdog) {
  // The CONTROL link stalls for far longer than the heartbeat deadline:
  // the worker's beats are muted, the coordinator's watchdog declares it
  // hung and SIGKILLs it, and the respawn recovers — bit-identical, with
  // the kill accounted as a heartbeat kill.
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  TempDir base_dir("hb_base");
  auto base_opt = cell_options(ft::CheckpointMode::kHeavyweight,
                               base_dir.str());
  std::vector<apps::Sssp::value_type> want;
  const auto base = run_sharded(g, apps::Sssp{}, base_opt, &want);
  ASSERT_TRUE(base.ok()) << base.error->what();

  TempDir tcp_dir("hb_tcp");
  auto tcp_opt = cell_options(ft::CheckpointMode::kHeavyweight,
                              tcp_dir.str());
  tcp_opt.transport = TransportKind::kTcp;
  tcp_opt.heartbeat_interval_seconds = 0.02;
  tcp_opt.hang_timeout_seconds = 0.3;
  tcp_opt.net_faults = {net_fault(NetFault::Kind::kStall, 1, 0, 4,
                                  NetFault::Plane::kCtrl, 5.0)};
  std::vector<apps::Sssp::value_type> got;
  const auto tcp = run_sharded(g, apps::Sssp{}, tcp_opt, &got);
  ASSERT_TRUE(tcp.ok()) << tcp.error->what();
  EXPECT_GE(tcp.shard.heartbeat_kills + tcp.shard.respawns, 1u);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(std::memcmp(&got[s], &want[s],
                          sizeof(apps::Sssp::value_type)),
              0)
        << "slot " << s << " diverged after watchdog kill";
  }
}

// ---------------------------------------------------------------------
// Cell family 3 — partitions.

TEST(ShardNetMatrix, HealedPartitionIsTransparentAtFourShards) {
  // A symmetric partition between shards 1 and 2 of a 4-shard run: the
  // live connection is reset, new connects are refused for the window,
  // then the pair reconnects and resyncs. Shards 0 and 3 never notice.
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  TempDir base_dir("part_base");
  auto base_opt = cell_options(ft::CheckpointMode::kHeavyweight,
                               base_dir.str());
  base_opt.num_shards = 4;
  std::vector<apps::Sssp::value_type> want;
  const auto base = run_sharded(g, apps::Sssp{}, base_opt, &want);
  ASSERT_TRUE(base.ok()) << base.error->what();

  TempDir tcp_dir("part_tcp");
  auto tcp_opt = cell_options(ft::CheckpointMode::kHeavyweight,
                              tcp_dir.str());
  tcp_opt.num_shards = 4;
  tcp_opt.transport = TransportKind::kTcp;
  // Budget sized so the window cannot exhaust it even with minimal
  // jitter: the partition must HEAL, not degrade.
  tcp_opt.net.max_reconnects_per_link = 64;
  tcp_opt.net_faults = {
      net_fault(NetFault::Kind::kPartition, 2, 1, 3,
                NetFault::Plane::kData, 0.25),
      net_fault(NetFault::Kind::kPartition, 1, 2, 3,
                NetFault::Plane::kData, 0.25),
  };
  std::vector<apps::Sssp::value_type> got;
  const auto tcp = run_sharded(g, apps::Sssp{}, tcp_opt, &got);
  ASSERT_TRUE(tcp.ok()) << tcp.error->what();

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(std::memcmp(&got[s], &want[s],
                          sizeof(apps::Sssp::value_type)),
              0)
        << "slot " << s << " diverged across the healed partition";
  }
}

TEST(ShardNetMatrix, UnhealedPartitionDegradesToTypedFailure) {
  // The partition never heals and re-arms in every incarnation: each
  // attempt through the window burns reconnect budget, the worker exits
  // kWorkerExitUnreachable, the supervisor ladder respawns it into the
  // same wall, and after the respawn budget the run fails TYPED — a
  // kShardFailure naming the shard, never a hang, never a wrong answer.
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  TempDir dir("unhealed");
  auto opt = cell_options(ft::CheckpointMode::kHeavyweight, dir.str());
  opt.transport = TransportKind::kTcp;
  opt.net.max_reconnects_per_link = 4;
  opt.guards.run_seconds = 60.0;  // backstop only; typed failure must win
  for (std::size_t generation = 0; generation <= 4; ++generation) {
    NetFault f = net_fault(NetFault::Kind::kPartition, 1, 0, 1,
                           NetFault::Plane::kData, 3600.0);
    f.generation = generation;
    opt.net_faults.push_back(f);
  }
  std::vector<apps::Sssp::value_type> got;
  const auto outcome = run_sharded(g, apps::Sssp{}, opt, &got);
  ASSERT_FALSE(outcome.ok());
  ASSERT_TRUE(outcome.error.has_value());
  EXPECT_EQ(outcome.error->kind(), RunErrorKind::kShardFailure)
      << outcome.error->what();
  EXPECT_GE(outcome.shard.respawns, 1u);
}

TEST(ShardNetMatrix, SeededCell) {
  // One cell whose fault kind, victim, and counted op come from the
  // matrix seed, so IPREGEL_CHAOS_SEED sweeps genuinely new ground.
  const std::uint64_t h = runtime::mix64(kMatrixSeed ^ 0x7C97C9ULL);
  constexpr NetFault::Kind kKinds[] = {
      NetFault::Kind::kShortWrite, NetFault::Kind::kShortRead,
      NetFault::Kind::kResetMidFrame, NetFault::Kind::kDropConn};
  const auto kind = kKinds[h % 4];
  const std::size_t shard = (h >> 2) % 2;
  const std::uint64_t at_op = 1 + (h >> 3) % 8;
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  run_tcp_cell(g, apps::Sssp{}, ft::CheckpointMode::kHeavyweight,
               "seeded_kind" + std::to_string(static_cast<int>(kind)) +
                   "_shard" + std::to_string(shard) + "_op" +
                   std::to_string(at_op),
               [&](ShardOptions& opt) {
                 opt.net_faults = {
                     net_fault(kind, shard, 1 - shard, at_op)};
               });
}

}  // namespace
}  // namespace ipregel::shard
