// Satellite of coordinator recovery: a worker whose coordinator vanished
// and is NEVER adopted must not linger. It parks for exactly
// recovery.park_seconds awaiting a takeover, then exits with the typed
// kWorkerExitOrphan status — on both transports, within a wall-clock
// bound. The takeover budget is set to zero here so no adopter ever
// arrives; the orphans reparent to this test process (the supervisor
// marks itself a child subreaper), which reaps them and asserts the code.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cerrno>
#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/pagerank.hpp"
#include "shard/resilient.hpp"
#include "shard/worker.hpp"
#include "test_util.hpp"

namespace ipregel::shard {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& suffix) {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = std::filesystem::temp_directory_path() /
            (std::string("ipregel_") + info->test_suite_name() + "_" +
             info->name() + "_" + suffix);
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

[[nodiscard]] double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void run_orphan_cell(TransportKind transport) {
  constexpr double kPark = 2.0;

  const auto g = testing::make_graph(
      graph::rmat(6, 4, graph::RmatOptions{.seed = 12}));
  apps::PageRank pr;
  pr.rounds = 12;

  TempDir ckpt("ckpt");
  TempDir run("run");
  ShardOptions opt;
  opt.num_shards = 2;
  opt.transport = transport;
  opt.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  opt.checkpoint.mode = ft::CheckpointMode::kHeavyweight;
  opt.checkpoint.every = 1;
  opt.checkpoint.keep = 3;
  opt.checkpoint.directory = ckpt.str();
  opt.retain_supersteps = 4;
  opt.supervisor.backoff_initial_seconds = 0.01;
  opt.guards.run_seconds = 60.0;
  opt.recovery.directory = run.str();
  opt.recovery.park_seconds = kPark;
  // No takeover will ever come: the parked workers MUST give up on their
  // own.
  opt.recovery.max_takeovers = 0;
  CoordFault die;
  die.kind = CoordFault::Kind::kSigkill;
  die.phase = CoordFault::Phase::kProceed;
  die.superstep = 2;
  die.epoch = 1;
  opt.coord_faults = {die};

  const double t0 = now_seconds();
  std::vector<double> values;
  const auto outcome = run_sharded_resilient(g, pr, opt, &values);

  // The run itself fails typed: the coordinator died and the takeover
  // budget is zero.
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind(), RunErrorKind::kShardFailure)
      << outcome.error->what();
  EXPECT_EQ(outcome.shard.coordinator_takeovers, 0u);

  // Both workers reparented to this process when their coordinator died.
  // Reap them: each must exit kWorkerExitOrphan, and all of them within
  // park_seconds plus generous slack (sanitizer + 1-CPU headroom) of the
  // coordinator's death.
  std::vector<int> codes;
  for (;;) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) {
      ASSERT_EQ(errno, ECHILD) << "waitpid failed unexpectedly";
      break;
    }
    ASSERT_TRUE(WIFEXITED(status))
        << "orphaned worker " << pid << " did not exit cleanly";
    codes.push_back(WEXITSTATUS(status));
  }
  const double elapsed = now_seconds() - t0;
  ASSERT_EQ(codes.size(), 2u)
      << "expected both parked workers to reparent here and exit";
  for (const int code : codes) {
    EXPECT_EQ(code, kWorkerExitOrphan);
  }
  // The bound: whole-run wall clock covers spawn + two supersteps + the
  // park window. 20s of slack absorbs ASan/TSan and a loaded 1-CPU host
  // while still catching an unbounded (or heartbeat-less) park.
  EXPECT_LT(elapsed, kPark + 20.0)
      << "orphaned workers overstayed the park window";
}

TEST(ShardOrphanExit, ShmParkedWorkersExitTypedWithinBound) {
  run_orphan_cell(TransportKind::kShm);
}

TEST(ShardOrphanExit, TcpParkedWorkersExitTypedWithinBound) {
  run_orphan_cell(TransportKind::kTcp);
}

}  // namespace
}  // namespace ipregel::shard
