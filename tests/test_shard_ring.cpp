// Unit tests of the sharded runtime's data-plane foundations: the shared
// arena, the SPSC frame ring (including wraparound and cross-process
// operation), the slot partition, and the topology-bound fingerprint.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "graph/generators.hpp"
#include "runtime/partition.hpp"
#include "shard/layout.hpp"
#include "shard/partition.hpp"
#include "shard/ring.hpp"
#include "test_util.hpp"

namespace ipregel::shard {
namespace {

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> xs) {
  std::vector<std::uint8_t> out;
  for (const int x : xs) {
    out.push_back(static_cast<std::uint8_t>(x));
  }
  return out;
}

TEST(ShardRing, PushPopRoundTrip) {
  ShmArena arena(SpscRing::bytes_required(256));
  SpscRing ring;
  ring.attach(arena.base(), 256, /*initialize=*/true);

  EXPECT_FALSE(ring.try_pop().has_value());
  const auto payload = bytes_of({1, 2, 3, 4, 5});
  ASSERT_TRUE(ring.try_push(7, 42, payload));
  const auto frame = ring.try_pop();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->header.src, 7u);
  EXPECT_EQ(frame->header.superstep, 42u);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(ShardRing, EmptyPayloadFramesAdvanceTheCursor) {
  ShmArena arena(SpscRing::bytes_required(128));
  SpscRing ring;
  ring.attach(arena.base(), 128, /*initialize=*/true);
  ASSERT_TRUE(ring.try_push(0, 1, {}));
  ASSERT_TRUE(ring.try_push(0, 2, {}));
  auto f1 = ring.try_pop();
  auto f2 = ring.try_pop();
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f1->header.superstep, 1u);
  EXPECT_EQ(f2->header.superstep, 2u);
  EXPECT_TRUE(f1->payload.empty());
}

TEST(ShardRing, RejectsFramesThatDoNotFit) {
  const std::size_t cap = sizeof(FrameHeader) + 8;
  ShmArena arena(SpscRing::bytes_required(cap));
  SpscRing ring;
  ring.attach(arena.base(), cap, /*initialize=*/true);
  std::vector<std::uint8_t> big(cap, 0xAB);  // header would not fit
  EXPECT_FALSE(ring.try_push(0, 0, big));
  std::vector<std::uint8_t> fits(8, 0xCD);
  EXPECT_TRUE(ring.try_push(0, 0, fits));
  EXPECT_FALSE(ring.try_push(0, 1, fits));  // full now
  ASSERT_TRUE(ring.try_pop().has_value());
  EXPECT_TRUE(ring.try_push(0, 1, fits));  // space reclaimed
}

TEST(ShardRing, WrapAroundPreservesBytes) {
  // Capacity chosen so frames straddle the wrap point repeatedly.
  const std::size_t cap = 3 * (sizeof(FrameHeader) + 10) + 5;
  ShmArena arena(SpscRing::bytes_required(cap));
  SpscRing ring;
  ring.attach(arena.base(), cap, /*initialize=*/true);
  for (std::uint64_t round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> payload(10);
    std::iota(payload.begin(), payload.end(),
              static_cast<std::uint8_t>(round));
    ASSERT_TRUE(ring.try_push(3, round, payload)) << round;
    const auto frame = ring.try_pop();
    ASSERT_TRUE(frame.has_value()) << round;
    EXPECT_EQ(frame->header.superstep, round);
    EXPECT_EQ(frame->payload, payload) << round;
  }
}

TEST(ShardRing, CrossesTheForkBoundary) {
  // The production topology: the arena is mapped BEFORE fork, the child
  // produces, the parent consumes.
  constexpr std::size_t kFrames = 500;
  ShmArena arena(SpscRing::bytes_required(1 << 12));
  SpscRing ring;
  ring.attach(arena.base(), 1 << 12, /*initialize=*/true);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    SpscRing producer;
    producer.attach(arena.base(), 1 << 12, /*initialize=*/false);
    for (std::uint64_t i = 0; i < kFrames; ++i) {
      std::vector<std::uint8_t> payload(32,
                                        static_cast<std::uint8_t>(i * 7));
      while (!producer.try_push(1, i, payload)) {
      }
    }
    ::_exit(0);
  }
  std::uint64_t next = 0;
  while (next < kFrames) {
    const auto frame = ring.try_pop();
    if (!frame.has_value()) {
      continue;
    }
    ASSERT_EQ(frame->header.superstep, next);
    ASSERT_EQ(frame->payload.size(), 32u);
    for (const std::uint8_t b : frame->payload) {
      ASSERT_EQ(b, static_cast<std::uint8_t>(next * 7));
    }
    ++next;
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_EQ(status, 0);
}

TEST(ShardLayout, RingsAndBoardDoNotOverlap) {
  ArenaSpec spec;
  spec.shards = 3;
  spec.ring_capacity.assign(9, 0);
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t d = 0; d < 3; ++d) {
      if (s != d) {
        spec.ring_capacity[s * 3 + d] = 100 + 10 * s + d;
      }
    }
  }
  spec.board_bytes = 777;
  spec.finalize();
  // Every ring's [offset, offset+bytes) and the board must be disjoint.
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  for (std::size_t i = 0; i < 9; ++i) {
    if (spec.ring_capacity[i] != 0) {
      spans.emplace_back(
          spec.ring_offset[i],
          spec.ring_offset[i] +
              SpscRing::bytes_required(spec.ring_capacity[i]));
    }
  }
  spans.emplace_back(spec.board_offset, spec.board_offset + 777);
  for (std::size_t a = 0; a < spans.size(); ++a) {
    for (std::size_t b = a + 1; b < spans.size(); ++b) {
      EXPECT_TRUE(spans[a].second <= spans[b].first ||
                  spans[b].second <= spans[a].first)
          << "span " << a << " overlaps span " << b;
    }
  }
  EXPECT_EQ(spec.total_bytes, spec.board_offset + 777);
}

TEST(ShardPartition, CoversAndInverts) {
  const auto g = testing::make_graph(
      graph::rmat(8, 4, graph::RmatOptions{.seed = 5}));
  for (const std::size_t shards : {1u, 2u, 3u, 7u, 8u}) {
    const ShardPartition part(g, shards);
    std::size_t covered = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const auto range = part.slots(s);
      covered += range.size();
      for (std::size_t slot = range.begin; slot < range.end; ++slot) {
        ASSERT_EQ(part.shard_of_slot(slot), s)
            << "slot " << slot << " of " << shards;
      }
    }
    EXPECT_EQ(covered, g.num_slots() - g.first_slot()) << shards;
    EXPECT_EQ(part.slots(0).begin, g.first_slot()) << shards;
    EXPECT_EQ(part.slots(shards - 1).end, g.num_slots()) << shards;
  }
}

TEST(ShardPartition, MatchesTheEnginesThreadShares) {
  // Same contiguous block split as runtime::block_partition over the
  // populated range — the bit-identity precondition.
  const auto g = testing::make_graph(
      graph::rmat(7, 3, graph::RmatOptions{.seed = 11}));
  const std::size_t populated = g.num_slots() - g.first_slot();
  const ShardPartition part(g, 4);
  for (std::size_t s = 0; s < 4; ++s) {
    const auto expect = runtime::block_partition(populated, 4, s);
    EXPECT_EQ(part.slots(s).begin, expect.begin + g.first_slot());
    EXPECT_EQ(part.slots(s).end, expect.end + g.first_slot());
  }
}

TEST(ShardPartition, HashSchemeCoversAndInverts) {
  const auto g = testing::make_graph(
      graph::rmat(8, 4, graph::RmatOptions{.seed = 5}));
  const std::size_t populated = g.num_slots() - g.first_slot();
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const ShardPartition part(g, shards, PartitionScheme::kHash);
    std::size_t covered = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      covered += part.size(s);
      const auto owned = part.owned_slots(s);
      ASSERT_EQ(owned.size(), part.size(s));
      for (std::size_t local = 0; local < owned.size(); ++local) {
        // Ownership, local indexing, and slot_at must agree and invert.
        ASSERT_EQ(part.shard_of_slot(owned[local]), s);
        ASSERT_EQ(part.local_index(owned[local]), local);
        ASSERT_EQ(part.slot_at(s, local), owned[local]);
        if (local > 0) {
          // The bit-identity invariant: local indices ascend in slot
          // order under BOTH schemes.
          ASSERT_LT(owned[local - 1], owned[local]);
        }
      }
    }
    EXPECT_EQ(covered, populated) << shards;
  }
}

TEST(ShardPartition, HashSchemeAgreesWithRuntimeHashPartition) {
  const auto g = testing::make_graph(
      graph::rmat(7, 3, graph::RmatOptions{.seed = 11}));
  const ShardPartition part(g, 4, PartitionScheme::kHash);
  for (std::size_t slot = g.first_slot(); slot < g.num_slots(); ++slot) {
    EXPECT_EQ(part.shard_of_slot(slot), runtime::hash_partition(slot, 4));
  }
}

TEST(ShardPartition, HashSchemeSpreadsAContiguousHubRange) {
  // The scheme's reason to exist: on a degree-renumbered graph the hubs
  // occupy the lowest slots, which kBlock concentrates in shard 0. Hashed
  // ownership must spread any contiguous window across every shard.
  const auto g = testing::make_graph(
      graph::rmat(10, 8, graph::RmatOptions{.seed = 7}));
  constexpr std::size_t kShards = 4;
  const ShardPartition part(g, kShards, PartitionScheme::kHash);
  const std::size_t window =
      std::min<std::size_t>(64, g.num_slots() - g.first_slot());
  std::vector<std::size_t> hits(kShards, 0);
  for (std::size_t slot = g.first_slot(); slot < g.first_slot() + window;
       ++slot) {
    ++hits[part.shard_of_slot(slot)];
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(hits[s], 0u) << "shard " << s << " owns none of the hub window";
  }
}

TEST(ShardFingerprint, SchemeIsPartOfTheBinding) {
  // A kHash snapshot slice must never restore into a kBlock topology:
  // same shard count, same shard, different scheme → different identity.
  const std::uint64_t base = 0xDEADBEEFCAFEF00DULL;
  EXPECT_NE(shard_fingerprint(base, 4, 1, PartitionScheme::kBlock),
            shard_fingerprint(base, 4, 1, PartitionScheme::kHash));
  EXPECT_EQ(shard_fingerprint(base, 4, 1, PartitionScheme::kHash),
            shard_fingerprint(base, 4, 1, PartitionScheme::kHash));
}

TEST(ShardFingerprint, BindsTopologyIntoTheProgramIdentity) {
  const std::uint64_t base = 0xDEADBEEFCAFEF00DULL;
  EXPECT_NE(shard_fingerprint(base, 4, 0), shard_fingerprint(base, 8, 0));
  EXPECT_NE(shard_fingerprint(base, 4, 0), shard_fingerprint(base, 4, 1));
  EXPECT_EQ(shard_fingerprint(base, 4, 2), shard_fingerprint(base, 4, 2));
  EXPECT_NE(shard_fingerprint(base, 4, 2), base);
  EXPECT_NE(shard_fingerprint(base, 1, 0), base);
}

}  // namespace
}  // namespace ipregel::shard
