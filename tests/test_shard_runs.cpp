// Zero-failure equivalence of the multi-process sharded runtime against
// the single-process engine and the serial references: same graphs, same
// programs, 1/2/3 shards. Integer min-combiner apps must match the engine
// BIT-IDENTICALLY (the shard partition reproduces the engine's thread
// shares and per-destination combine order); floating-point PageRank is
// bit-identical at one shard and tolerance-equal beyond (cross-shard
// delivery re-associates the sum). Also covers the cross-shard aggregator
// reduction (FTPregel's dangling-mass PageRank) and option validation.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/label_propagation.hpp"
#include "apps/pagerank.hpp"
#include "apps/pagerank_dangling.hpp"
#include "apps/serial_reference.hpp"
#include "apps/sssp.hpp"
#include "io/faulty_vfs.hpp"
#include "shard/coordinator.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

class TempDir {
 public:
  TempDir() {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = std::filesystem::temp_directory_path() /
            (std::string("ipregel_") + info->test_suite_name() + "_" +
             info->name());
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

/// The engine run every sharded result is measured against: one thread,
/// mutex-push combiner — the deterministic schedule the shard workers
/// reproduce slot for slot.
template <typename Program>
std::vector<typename Program::value_type> engine_reference(
    const graph::CsrGraph& g, Program program, RunResult* result = nullptr) {
  std::vector<typename Program::value_type> values;
  EngineOptions opt;
  opt.threads = 1;
  const RunResult r = run_version(
      g, program, VersionId{CombinerKind::kMutexPush, false}, opt, nullptr,
      &values);
  if (result != nullptr) {
    *result = r;
  }
  return values;
}

template <typename Value>
void expect_slots_eq(const graph::CsrGraph& g, const std::vector<Value>& got,
                     const std::vector<Value>& want, const std::string& tag) {
  ASSERT_GE(got.size(), g.num_slots()) << tag;
  ASSERT_GE(want.size(), g.num_slots()) << tag;
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(got[s], want[s]) << tag << " at slot " << s << " (id "
                               << g.id_of(s) << ")";
  }
}

template <typename Value>
void expect_slots_near(const graph::CsrGraph& g,
                       const std::vector<Value>& got,
                       const std::vector<Value>& want, double tol,
                       const std::string& tag) {
  ASSERT_GE(got.size(), g.num_slots()) << tag;
  ASSERT_GE(want.size(), g.num_slots()) << tag;
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_NEAR(got[s], want[s], tol)
        << tag << " at slot " << s << " (id " << g.id_of(s) << ")";
  }
}

TEST(ShardRuns, HashminMatchesEngineBitIdentically) {
  const auto g = testing::make_graph(
      graph::rmat(8, 4, graph::RmatOptions{.seed = 3}));
  RunResult engine_result;
  const auto want = engine_reference(g, apps::Hashmin{}, &engine_result);
  const auto serial = apps::serial::hashmin(g);
  for (const std::size_t shards : {1u, 2u, 3u}) {
    shard::ShardOptions opt;
    opt.num_shards = shards;
    std::vector<graph::vid_t> got;
    const auto outcome = shard::run_sharded(g, apps::Hashmin{}, opt, &got);
    ASSERT_TRUE(outcome.ok())
        << shards << " shards: " << outcome.error->what();
    expect_slots_eq(g, got, want, "hashmin/" + std::to_string(shards));
    expect_slots_eq(g, got, serial,
                    "hashmin-serial/" + std::to_string(shards));
    EXPECT_EQ(outcome.result.supersteps, engine_result.supersteps) << shards;
    EXPECT_EQ(outcome.result.total_messages, engine_result.total_messages)
        << shards;
    EXPECT_EQ(outcome.shard.respawns, 0u);
    EXPECT_EQ(outcome.shard.heartbeat_kills, 0u);
  }
}

TEST(ShardRuns, SsspMatchesEngineBitIdentically) {
  // A lattice: long diameter, so the run crosses many barriers with a
  // moving wavefront that migrates between shards.
  const auto g =
      testing::make_graph(graph::grid_2d(12, 12, graph::GridOptions{}));
  RunResult engine_result;
  const auto want = engine_reference(g, apps::Sssp{}, &engine_result);
  const auto serial = apps::serial::sssp_unit(g, 2);
  for (const std::size_t shards : {1u, 2u, 3u}) {
    shard::ShardOptions opt;
    opt.num_shards = shards;
    std::vector<std::uint32_t> got;
    const auto outcome = shard::run_sharded(g, apps::Sssp{}, opt, &got);
    ASSERT_TRUE(outcome.ok())
        << shards << " shards: " << outcome.error->what();
    expect_slots_eq(g, got, want, "sssp/" + std::to_string(shards));
    expect_slots_eq(g, got, serial, "sssp-serial/" + std::to_string(shards));
    EXPECT_EQ(outcome.result.supersteps, engine_result.supersteps) << shards;
  }
}

TEST(ShardRuns, LabelPropagationMatchesEngineAndSerial) {
  const auto g = testing::make_graph(
      graph::rmat(8, 6, graph::RmatOptions{.seed = 9}));
  const auto want = engine_reference(g, apps::LabelPropagation{});
  const auto serial = apps::serial::label_propagation(g);
  for (const std::size_t shards : {1u, 2u, 3u}) {
    shard::ShardOptions opt;
    opt.num_shards = shards;
    std::vector<std::uint64_t> got;
    const auto outcome =
        shard::run_sharded(g, apps::LabelPropagation{}, opt, &got);
    ASSERT_TRUE(outcome.ok())
        << shards << " shards: " << outcome.error->what();
    expect_slots_eq(g, got, want, "lp/" + std::to_string(shards));
    expect_slots_eq(g, got, serial, "lp-serial/" + std::to_string(shards));
  }
}

TEST(ShardRuns, PageRankOneShardIsBitIdenticalToTheEngine) {
  const auto g = testing::make_graph(
      graph::rmat(7, 4, graph::RmatOptions{.seed = 21}));
  apps::PageRank pr;
  pr.rounds = 10;
  const auto want = engine_reference(g, pr);
  shard::ShardOptions opt;
  opt.num_shards = 1;
  std::vector<double> got;
  const auto outcome = shard::run_sharded(g, pr, opt, &got);
  ASSERT_TRUE(outcome.ok()) << outcome.error->what();
  // Bit-identical, not merely close: one shard reproduces the engine's
  // exact per-destination fold order, doubles included.
  expect_slots_eq(g, got, want, "pagerank/1shard");
}

TEST(ShardRuns, PageRankMultiShardMatchesWithinReassociationNoise) {
  const auto g = testing::make_graph(
      graph::rmat(7, 4, graph::RmatOptions{.seed = 21}));
  apps::PageRank pr;
  pr.rounds = 10;
  const auto want = engine_reference(g, pr);
  for (const std::size_t shards : {2u, 3u}) {
    shard::ShardOptions opt;
    opt.num_shards = shards;
    std::vector<double> got;
    const auto outcome = shard::run_sharded(g, pr, opt, &got);
    ASSERT_TRUE(outcome.ok())
        << shards << " shards: " << outcome.error->what();
    expect_slots_near(g, got, want, 1e-12,
                      "pagerank/" + std::to_string(shards));
  }
}

TEST(ShardRuns, DanglingAggregatorMatchesSingleProcessAndSerial) {
  // Satellite: FTPregel's dangling-mass PageRank as a first-class
  // cross-shard reduction. The per-worker partials ride the barrier
  // messages; the coordinator folds them in shard order and ships the
  // result back with the release.
  const auto g = testing::make_graph(
      graph::rmat(7, 3, graph::RmatOptions{.seed = 33}));
  apps::PageRankDangling pr;
  pr.rounds = 12;
  const auto want = engine_reference(g, pr);
  const auto serial = apps::serial::pagerank_dangling(g, pr.rounds);
  for (const std::size_t shards : {1u, 2u, 3u}) {
    shard::ShardOptions opt;
    opt.num_shards = shards;
    std::vector<double> got;
    const auto outcome = shard::run_sharded(g, pr, opt, &got);
    ASSERT_TRUE(outcome.ok())
        << shards << " shards: " << outcome.error->what();
    const double tol = shards == 1 ? 0.0 : 1e-12;
    if (shards == 1) {
      expect_slots_eq(g, got, want, "dangling/1shard");
    } else {
      expect_slots_near(g, got, want, tol,
                        "dangling/" + std::to_string(shards));
    }
    expect_slots_near(g, got, serial, 1e-9,
                      "dangling-serial/" + std::to_string(shards));
  }
}

TEST(ShardRuns, CheckpointingDoesNotPerturbTheResult) {
  // Checkpoints on, no faults: the run must be byte-for-byte the run
  // without checkpoints, in both modes.
  const auto g =
      testing::make_graph(graph::grid_2d(10, 10, graph::GridOptions{}));
  const auto want = engine_reference(g, apps::Sssp{});
  for (const auto mode : {ft::CheckpointMode::kHeavyweight,
                          ft::CheckpointMode::kLightweight}) {
    TempDir dir;
    shard::ShardOptions opt;
    opt.num_shards = 2;
    opt.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
    opt.checkpoint.mode = mode;
    opt.checkpoint.every = 2;
    opt.checkpoint.directory = dir.str();
    std::vector<std::uint32_t> got;
    const auto outcome = shard::run_sharded(g, apps::Sssp{}, opt, &got);
    ASSERT_TRUE(outcome.ok()) << outcome.error->what();
    expect_slots_eq(g, got, want,
                    std::string("ckpt/") + std::string(to_string(mode)));
    EXPECT_EQ(outcome.shard.respawns, 0u);
    EXPECT_EQ(outcome.shard.snapshot_recoveries, 0u);
    // Each shard owns its own snapshot subdirectory.
    EXPECT_TRUE(std::filesystem::exists(dir.str() + "/shard0"));
    EXPECT_TRUE(std::filesystem::exists(dir.str() + "/shard1"));
  }
}

TEST(ShardRuns, DesolateAddressingSurvivesSharding) {
  // Shifted ids exercise first_slot != 0 in the partition arithmetic and
  // the board offsets.
  auto edges = graph::rmat(6, 4, graph::RmatOptions{.seed = 4});
  graph::shift_ids(edges, 1000);
  const auto g =
      testing::make_graph(edges, graph::AddressingMode::kDesolate);
  const auto want = engine_reference(g, apps::Hashmin{});
  shard::ShardOptions opt;
  opt.num_shards = 3;
  std::vector<graph::vid_t> got;
  const auto outcome = shard::run_sharded(g, apps::Hashmin{}, opt, &got);
  ASSERT_TRUE(outcome.ok()) << outcome.error->what();
  expect_slots_eq(g, got, want, "hashmin/desolate");
}

TEST(ShardRuns, HashPartitionIsBitIdenticalForMinCombineApps) {
  // The hash scheme assigns slots by mix64(slot) % shards instead of
  // contiguous blocks. Min-combiner folds are order-insensitive ONLY
  // because each destination's messages still fold in ascending-source,
  // ascending-local-slot order — which owned_slots() preserves under
  // hashing (local indices ascend in slot order). So the result must
  // stay bit-identical to the engine at every shard count.
  const auto g = testing::make_graph(
      graph::rmat(8, 4, graph::RmatOptions{.seed = 3}));
  const auto want_hm = engine_reference(g, apps::Hashmin{});
  const auto want_sp = engine_reference(g, apps::Sssp{});
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    shard::ShardOptions opt;
    opt.num_shards = shards;
    opt.partition = shard::PartitionScheme::kHash;
    std::vector<graph::vid_t> got_hm;
    const auto hm = shard::run_sharded(g, apps::Hashmin{}, opt, &got_hm);
    ASSERT_TRUE(hm.ok()) << shards << " shards: " << hm.error->what();
    expect_slots_eq(g, got_hm, want_hm,
                    "hashmin-hash/" + std::to_string(shards));

    std::vector<std::uint32_t> got_sp;
    const auto sp = shard::run_sharded(g, apps::Sssp{}, opt, &got_sp);
    ASSERT_TRUE(sp.ok()) << shards << " shards: " << sp.error->what();
    expect_slots_eq(g, got_sp, want_sp,
                    "sssp-hash/" + std::to_string(shards));
  }
}

TEST(ShardRuns, HashPartitionOverTcpMatchesToo) {
  // Both selectable axes at once: hash partitioning over the TCP
  // transport, still bit-identical to the engine.
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  const auto want = engine_reference(g, apps::Sssp{});
  shard::ShardOptions opt;
  opt.num_shards = 3;
  opt.partition = shard::PartitionScheme::kHash;
  opt.transport = shard::TransportKind::kTcp;
  std::vector<std::uint32_t> got;
  const auto outcome = shard::run_sharded(g, apps::Sssp{}, opt, &got);
  ASSERT_TRUE(outcome.ok()) << outcome.error->what();
  expect_slots_eq(g, got, want, "sssp-hash-tcp/3");
}

TEST(ShardRuns, RejectsLightweightCheckpointsForAggregatorPrograms) {
  const auto g = testing::make_graph(graph::cycle_graph(8));
  TempDir dir;
  shard::ShardOptions opt;
  opt.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  opt.checkpoint.mode = ft::CheckpointMode::kLightweight;
  opt.checkpoint.every = 1;
  opt.checkpoint.directory = dir.str();
  EXPECT_THROW(
      (void)shard::run_sharded(g, apps::PageRankDangling{}, opt, nullptr),
      std::invalid_argument);
}

TEST(ShardRuns, RejectsInMemoryVfsForShardCheckpoints) {
  // An in-memory Vfs lives inside the worker process it is meant to
  // revive — snapshots must go to the real filesystem.
  const auto g = testing::make_graph(graph::cycle_graph(8));
  io::FaultyVfs mem;
  TempDir dir;
  shard::ShardOptions opt;
  opt.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  opt.checkpoint.every = 1;
  opt.checkpoint.directory = dir.str();
  opt.checkpoint.vfs = &mem;
  EXPECT_THROW((void)shard::run_sharded(g, apps::Sssp{}, opt, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace ipregel
