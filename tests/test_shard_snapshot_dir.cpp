// Per-shard snapshot-directory discipline: each worker prunes and
// quarantines its OWN subdirectory, and newest_valid() must never
// resurrect a slice written under a different shard topology — the shard
// count and index are bound into the v2 program fingerprint, so a foreign
// slice is quarantined on the walk instead of shadowing this shard's own
// older snapshots.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/sssp.hpp"
#include "ft/snapshot.hpp"
#include "ft/snapshot_dir.hpp"
#include "shard/coordinator.hpp"
#include "test_util.hpp"

namespace ipregel::shard {
namespace {

class TempDir {
 public:
  TempDir() {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = std::filesystem::temp_directory_path() /
            (std::string("ipregel_") + info->test_suite_name() + "_" +
             info->name());
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

[[nodiscard]] std::size_t count_with_suffix(const std::string& dir,
                                            const std::string& suffix) {
  std::size_t n = 0;
  if (!std::filesystem::exists(dir)) {
    return 0;
  }
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      ++n;
    }
  }
  return n;
}

TEST(ShardSnapshotDir, EachShardPrunesItsOwnSubdirectoryToKeep) {
  const auto g =
      testing::make_graph(graph::grid_2d(8, 8, graph::GridOptions{}));
  TempDir dir;
  ShardOptions opt;
  opt.num_shards = 2;
  opt.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  opt.checkpoint.every = 1;
  opt.checkpoint.keep = 2;
  opt.checkpoint.directory = dir.str();
  const auto outcome = run_sharded(g, apps::Sssp{}, opt, nullptr);
  ASSERT_TRUE(outcome.ok()) << outcome.error->what();
  // The run crosses well over `keep` barriers; retention must have
  // clamped each shard's subdirectory independently.
  for (const std::string shard : {"/shard0", "/shard1"}) {
    EXPECT_EQ(count_with_suffix(dir.str() + shard, ".ipsnap"), 2u) << shard;
    EXPECT_EQ(count_with_suffix(dir.str() + shard, ".quarantined"), 0u)
        << shard;
  }
}

TEST(ShardSnapshotDir, ForeignShardCountSliceIsQuarantinedNotResurrected) {
  // A shard0 directory holding an older snapshot from THIS topology
  // (2 shards) and a newer one doctored to look like shard 0 of a
  // different shard count with a coinciding slot range: only the
  // topology-bound fingerprint can tell them apart, and the walk must
  // quarantine the foreign newest and return the older own slice.
  const auto g = testing::make_graph(
      graph::rmat(6, 4, graph::RmatOptions{.seed = 7}));
  TempDir dir;
  const std::uint64_t graph_fp = 0x600D;
  const std::uint64_t program_fp = 0x77;
  const ShardPartition part2(g, 2);
  ShardEngine<apps::Hashmin> engine(g, apps::Hashmin{}, part2, 0);
  engine.initialize();
  const std::uint64_t fp_2shards = shard_fingerprint(program_fp, 2, 0);
  const std::uint64_t fp_4shards = shard_fingerprint(program_fp, 4, 0);

  const auto own = engine.capture(ft::CheckpointMode::kHeavyweight, 2,
                                  graph_fp, fp_2shards);
  ft::write_snapshot(ft::snapshot_path(dir.str(), "snapshot", 2), own);
  auto foreign = engine.capture(ft::CheckpointMode::kHeavyweight, 5,
                                graph_fp, fp_4shards);
  ft::write_snapshot(ft::snapshot_path(dir.str(), "snapshot", 5), foreign);

  ft::SnapshotDirectory snapdir(dir.str(), "snapshot", nullptr, 4);
  const auto entry = snapdir.newest_valid(
      [&](const ft::EngineSnapshot& s) {
        return engine.validate(s, graph_fp, fp_2shards);
      });
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->superstep, 2u);  // the older OWN slice, not the newest
  EXPECT_EQ(snapdir.quarantined(), 1u);
  EXPECT_EQ(count_with_suffix(dir.str(), ".quarantined"), 1u);
}

TEST(ShardSnapshotDir, CorruptNewestSliceFallsBackWithinTheShard) {
  const auto g = testing::make_graph(
      graph::rmat(6, 4, graph::RmatOptions{.seed = 7}));
  TempDir dir;
  const ShardPartition part2(g, 2);
  ShardEngine<apps::Hashmin> engine(g, apps::Hashmin{}, part2, 1);
  engine.initialize();
  const std::uint64_t fp = shard_fingerprint(0x77, 2, 1);
  for (const std::uint64_t step : {1u, 2u, 3u}) {
    const auto snap =
        engine.capture(ft::CheckpointMode::kHeavyweight, step, 0x600D, fp);
    ft::write_snapshot(ft::snapshot_path(dir.str(), "snapshot", step), snap);
  }
  // Flip bytes in the middle of the newest file.
  const std::string newest = ft::snapshot_path(dir.str(), "snapshot", 3);
  {
    std::fstream f(newest,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(64);
    const char garbage[8] = {'X', 'X', 'X', 'X', 'X', 'X', 'X', 'X'};
    f.write(garbage, sizeof(garbage));
  }
  ft::SnapshotDirectory snapdir(dir.str(), "snapshot", nullptr, 4);
  const auto entry = snapdir.newest_valid(
      [&](const ft::EngineSnapshot& s) {
        return engine.validate(s, 0x600D, fp);
      });
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->superstep, 2u);
  EXPECT_EQ(snapdir.quarantined(), 1u);
}

TEST(ShardSnapshotDir, ReShardedRunNeverRestoresTheOldTopologysSlices) {
  // End to end: a 2-shard checkpointed run leaves its slices behind; a
  // 4-shard run over the SAME directory then loses a worker. The respawn
  // must restore a 4-shard slice (or restart), never a stale 2-shard one
  // — and the result must still match the reference.
  const auto g =
      testing::make_graph(graph::grid_2d(6, 6, graph::GridOptions{}));
  TempDir dir;
  ShardOptions pre;
  pre.num_shards = 2;
  pre.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  pre.checkpoint.every = 2;
  pre.checkpoint.keep = 2;
  pre.checkpoint.directory = dir.str();
  const auto first = run_sharded(g, apps::Sssp{}, pre, nullptr);
  ASSERT_TRUE(first.ok()) << first.error->what();
  ASSERT_GE(count_with_suffix(dir.str() + "/shard0", ".ipsnap"), 1u);

  ShardOptions opt = pre;
  opt.num_shards = 4;
  opt.checkpoint.every = 1;
  opt.retain_supersteps = 4;
  ShardFault kill;
  kill.kind = ShardFault::Kind::kSigkill;
  kill.shard = 0;
  kill.superstep = 3;
  kill.phase = ShardFault::Phase::kCompute;
  opt.faults.push_back(kill);
  std::vector<std::uint32_t> got;
  const auto outcome = run_sharded(g, apps::Sssp{}, opt, &got);
  ASSERT_TRUE(outcome.ok()) << outcome.error->what();
  EXPECT_GE(outcome.shard.respawns, 1u);
  // The stale 2-shard slices in shard0/ were quarantined along the way,
  // not restored.
  EXPECT_GE(count_with_suffix(dir.str() + "/shard0", ".quarantined"), 1u);

  std::vector<std::uint32_t> want;
  EngineOptions eopt;
  eopt.threads = 1;
  (void)run_version(g, apps::Sssp{},
                    VersionId{CombinerKind::kMutexPush, false}, eopt, nullptr,
                    &want);
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(got[s], want[s]) << "slot " << s;
  }
}

}  // namespace
}  // namespace ipregel::shard
