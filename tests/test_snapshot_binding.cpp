// Snapshot/program identity binding (snapshot format v2): every snapshot
// records program_fingerprint<P>() — application name plus value/message
// layout — and resume rejects a snapshot bound to a different program with
// a typed mismatch BEFORE any byte of state is reinterpreted. One test per
// mismatch axis (program identity, value layout, graph), the v1
// compatibility path (fingerprint 0 = check skipped), and the service-path
// contract: a mismatch is a permanent, non-retryable failure.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "core/program_traits.hpp"
#include "core/runner.hpp"
#include "ft/snapshot.hpp"
#include "ft/supervisor.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace ipregel {
namespace {

using graph::CsrGraph;
using ipregel::testing::make_graph;

class TempDir {
 public:
  explicit TempDir(const std::string& label) {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("ipregel_bind_") + info->name() + "_" + label))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] const std::string& str() const noexcept { return dir_; }

 private:
  std::string dir_;
};

/// Runs `program` with per-superstep heavyweight checkpoints into `dir`
/// and returns the newest snapshot's path.
template <typename Program>
std::string checkpointed_run(const CsrGraph& g, Program program,
                             VersionId version, const std::string& dir) {
  EngineOptions options;
  options.threads = 2;
  options.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  options.checkpoint.every = 1;
  options.checkpoint.mode = ft::CheckpointMode::kHeavyweight;
  options.checkpoint.directory = dir;
  (void)run_version(g, program, version, options);
  const auto newest = ft::latest_snapshot(dir, "snapshot");
  EXPECT_TRUE(newest.has_value());
  return newest.value_or("");
}

// --- the fingerprint itself ----------------------------------------------

TEST(ProgramFingerprint, NonZeroStableAndProgramSpecific) {
  const std::uint64_t hashmin = program_fingerprint<apps::Hashmin>();
  EXPECT_NE(hashmin, 0u) << "0 is reserved for v1 snapshots";
  EXPECT_EQ(hashmin, program_fingerprint<apps::Hashmin>());
  // Same value/message layout (u32/u32), different application: the NAME
  // must separate them — layout alone cannot.
  EXPECT_NE(hashmin, program_fingerprint<apps::Sssp>());
  // Same algorithm family, different value layout (u32 vs u64).
  EXPECT_NE(program_fingerprint<apps::Sssp>(),
            program_fingerprint<apps::WeightedSssp>());
  EXPECT_NE(hashmin, program_fingerprint<apps::PageRank>());
}

TEST(ProgramFingerprint, RecordedInV2Snapshots) {
  const CsrGraph g = make_graph(graph::grid_2d(6, 6));
  const TempDir dir("recorded");
  const std::string path = checkpointed_run(
      g, apps::Hashmin{}, VersionId{CombinerKind::kSpinlockPush, false},
      dir.str());
  const ft::SnapshotMeta meta = ft::read_snapshot_meta(path);
  EXPECT_EQ(meta.format_version, ft::kSnapshotFormatVersion);
  EXPECT_EQ(meta.program_fingerprint, program_fingerprint<apps::Hashmin>());
}

// --- mismatch axes -------------------------------------------------------

TEST(SnapshotBinding, SameLayoutDifferentProgramRejected) {
  // Hashmin and SSSP share the exact byte layout (u32 value, u32 message,
  // broadcast-only, always-halts): before the binding, a Hashmin snapshot
  // resumed under SSSP parsed cleanly and silently reinterpreted component
  // labels as distances. Now it is a typed rejection.
  const CsrGraph g = make_graph(graph::grid_2d(6, 6));
  const TempDir dir("cross_program");
  const VersionId version{CombinerKind::kSpinlockPush, false};
  const std::string path =
      checkpointed_run(g, apps::Hashmin{}, version, dir.str());

  try {
    (void)run_version(g, apps::Sssp{}, version, EngineOptions{.threads = 2},
                      nullptr, nullptr, path);
    FAIL() << "cross-program resume must throw SnapshotMismatch";
  } catch (const ft::SnapshotMismatch& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("program fingerprint"), std::string::npos) << what;
  }
}

TEST(SnapshotBinding, DifferentValueLayoutRejected) {
  const CsrGraph g = make_graph(graph::grid_2d(6, 6));
  const TempDir dir("layout");
  const VersionId version{CombinerKind::kSpinlockPush, false};
  const std::string path =
      checkpointed_run(g, apps::Sssp{}, version, dir.str());
  EXPECT_THROW((void)run_version(g, apps::WeightedSssp{}, version,
                                 EngineOptions{.threads = 2}, nullptr,
                                 nullptr, path),
               ft::SnapshotMismatch);
}

TEST(SnapshotBinding, DifferentGraphRejected) {
  const CsrGraph g = make_graph(graph::grid_2d(6, 6));
  const TempDir dir("graph");
  const VersionId version{CombinerKind::kSpinlockPush, false};
  const std::string path =
      checkpointed_run(g, apps::Hashmin{}, version, dir.str());
  const CsrGraph other = make_graph(graph::grid_2d(6, 7));
  try {
    (void)run_version(other, apps::Hashmin{}, version,
                      EngineOptions{.threads = 2}, nullptr, nullptr, path);
    FAIL() << "cross-graph resume must throw SnapshotMismatch";
  } catch (const ft::SnapshotMismatch& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("graph fingerprint"), std::string::npos) << what;
  }
}

// --- v1 compatibility ----------------------------------------------------

TEST(SnapshotBinding, FingerprintZeroSkipsTheCheck) {
  // A v1-era snapshot decodes program_fingerprint == 0, which must mean
  // "unknown — accept" (rejecting would break every pre-v2 checkpoint
  // directory). Simulated by zeroing the field of a real snapshot.
  const CsrGraph g = make_graph(graph::grid_2d(6, 6));
  const TempDir dir("v1_compat");
  const VersionId version{CombinerKind::kSpinlockPush, false};

  std::vector<graph::vid_t> clean;
  (void)run_version(g, apps::Hashmin{}, version,
                    EngineOptions{.threads = 2}, nullptr, &clean);

  const std::string path =
      checkpointed_run(g, apps::Hashmin{}, version, dir.str());
  ft::EngineSnapshot snap = ft::read_snapshot(path);
  ASSERT_NE(snap.meta.program_fingerprint, 0u);
  snap.meta.program_fingerprint = 0;
  ft::write_snapshot(path, snap);

  std::vector<graph::vid_t> resumed;
  const RunOutcome out =
      run_version_checked(g, apps::Hashmin{}, version,
                          EngineOptions{.threads = 2}, nullptr, &resumed,
                          path);
  ASSERT_TRUE(out.ok()) << out.error->what();
  EXPECT_EQ(resumed, clean);
}

// --- typed propagation through the service path --------------------------

TEST(SnapshotBinding, CheckedPathReturnsTypedMismatch) {
  const CsrGraph g = make_graph(graph::grid_2d(6, 6));
  const TempDir dir("typed");
  const VersionId version{CombinerKind::kSpinlockPush, false};
  const std::string path =
      checkpointed_run(g, apps::Hashmin{}, version, dir.str());

  const RunOutcome out = run_version_checked(
      g, apps::Sssp{}, version, EngineOptions{.threads = 2}, nullptr,
      nullptr, path);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error->kind(), RunErrorKind::kSnapshotMismatch);
  EXPECT_FALSE(out.error->retryable());
}

TEST(SnapshotBinding, SuperviseFailsFastWithoutRetry) {
  // A checkpoint directory full of some OTHER program's snapshots: the
  // supervisor must fail the run typed on the first attempt — retrying
  // cannot help (the same snapshot mismatches again), and silently
  // restarting from scratch would discard the caller's recovery intent.
  const CsrGraph g = make_graph(graph::grid_2d(6, 6));
  const TempDir dir("supervise");
  const VersionId version{CombinerKind::kSpinlockPush, false};
  (void)checkpointed_run(g, apps::Hashmin{}, version, dir.str());

  EngineOptions options;
  options.threads = 2;
  options.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  options.checkpoint.every = 1;
  options.checkpoint.directory = dir.str();
  ft::RetryPolicy policy;
  policy.max_attempts = 4;
  const ft::SupervisedOutcome out =
      ft::supervise(g, apps::Sssp{}, version, options, policy);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error->kind(), RunErrorKind::kSnapshotMismatch);
  EXPECT_EQ(out.attempts, 1u)
      << "a snapshot mismatch is permanent and must not be retried";
}

}  // namespace
}  // namespace ipregel
