// PageCache invariants: the ledger charge exactly tracks resident bytes
// through eviction storms, pins block eviction (and never go negative),
// the budget is a hard ceiling with a typed failure when pins alone fill
// it, quarantined pages are re-fetched rather than re-served, and the
// degradation ladder climbs and descends on the documented watermarks.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "apps/pagerank.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "io/faulty_vfs.hpp"
#include "runtime/memory_tracker.hpp"
#include "service/job_manager.hpp"
#include "store/page_cache.hpp"
#include "store/page_error.hpp"
#include "store/paged_store.hpp"
#include "store/store_writer.hpp"

namespace ipregel::store {
namespace {

using graph::CsrGraph;
using io::FaultyVfs;

constexpr const char* kPath = "/cache/graph.pages";
constexpr std::size_t kPage = 64;

/// Writes a store with plenty of pages (cycle: one u64 offset array plus
/// u32 target arrays) and returns the vfs it lives on.
FaultyVfs& make_store(FaultyVfs& vfs, std::size_t n = 512) {
  const CsrGraph g = CsrGraph::build(
      graph::cycle_graph(static_cast<graph::vid_t>(n)),
      {.addressing = graph::AddressingMode::kOffset, .build_in_edges = true});
  write_store(g, kPath, &vfs, {.page_bytes = kPage});
  return vfs;
}

std::size_t ledger_bytes() {
  return runtime::MemoryTracker::instance().bytes(
      runtime::MemCategory::kPageCache);
}

TEST(PageCache, LedgerChargeExactlyTracksResidentBytes) {
  FaultyVfs vfs;
  make_store(vfs);
  const std::size_t before = ledger_bytes();
  {
    const PagedStore store(vfs, kPath);
    ASSERT_GE(store.num_pages(), 16u);
    PageCache cache(store, {.budget_bytes = 4 * kPage,
                            .read_ahead_pages = 0});
    // Eviction storm: stream every page through a 4-page budget, twice.
    for (int pass = 0; pass < 2; ++pass) {
      for (std::uint64_t p = 0; p < store.num_pages(); ++p) {
        const PageCache::Pin pin = cache.pin(p);
        const PageCacheStats s = cache.stats();
        EXPECT_EQ(s.resident_bytes, s.resident_pages * kPage);
        EXPECT_EQ(ledger_bytes() - before, s.resident_bytes);
        EXPECT_LE(s.resident_bytes, cache.budget_bytes());
      }
    }
    const PageCacheStats s = cache.stats();
    EXPECT_GT(s.evictions, 0u);
    EXPECT_LE(s.peak_resident_bytes, cache.budget_bytes());
  }
  // Cache destroyed: every charge released, never negative (a double
  // release would clamp and be visible as a mismatch here).
  EXPECT_EQ(ledger_bytes(), before);
}

TEST(PageCache, PinsBlockEvictionAndBudgetFailureIsTyped) {
  FaultyVfs vfs;
  make_store(vfs);
  const PagedStore store(vfs, kPath);
  PageCache cache(store, {.budget_bytes = 2 * kPage, .read_ahead_pages = 0});
  std::vector<PageCache::Pin> pins;
  pins.push_back(cache.pin(0));
  pins.push_back(cache.pin(1));
  // Both frames pinned: a third distinct page cannot be admitted.
  try {
    (void)cache.pin(2);
    FAIL() << "cache overran its budget while every frame was pinned";
  } catch (const PageError& e) {
    EXPECT_EQ(e.kind(), PageErrorKind::kBudgetExhausted);
  }
  // Re-pinning a resident page is fine (no new frame needed) …
  { const PageCache::Pin again = cache.pin(0); }
  // … and releasing one pin makes room again.
  pins.pop_back();
  EXPECT_NO_THROW((void)cache.pin(2));
  EXPECT_TRUE(cache.contains(0));  // still pinned, never evicted
  const PageCacheStats s = cache.stats();
  EXPECT_LE(s.resident_bytes, cache.budget_bytes());
}

TEST(PageCache, UnmatchedUnpinIsSaturating) {
  // Pin released twice via move semantics cannot drive the count negative:
  // moved-from Pins release nothing, and the cache ignores a stray unpin.
  FaultyVfs vfs;
  make_store(vfs);
  const PagedStore store(vfs, kPath);
  PageCache cache(store, {.budget_bytes = 4 * kPage, .read_ahead_pages = 0});
  PageCache::Pin a = cache.pin(0);
  PageCache::Pin b = std::move(a);
  PageCache::Pin c;
  c = std::move(b);
  // Only `c` holds the pin now; destroying all three releases exactly one.
  a = PageCache::Pin();
  b = PageCache::Pin();
  c = PageCache::Pin();
  // The frame is unpinned and evictable — stream enough pages to force it
  // out; if the pin count had gone negative this would wedge or throw.
  for (std::uint64_t p = 1; p < 9; ++p) {
    (void)cache.pin(p);
  }
  EXPECT_FALSE(cache.contains(0));
}

TEST(PageCache, HitsMissesAndLruRetention) {
  FaultyVfs vfs;
  make_store(vfs);
  const PagedStore store(vfs, kPath);
  PageCache cache(store, {.budget_bytes = 4 * kPage, .read_ahead_pages = 0});
  (void)cache.pin(0);
  (void)cache.pin(1);
  (void)cache.pin(0);  // hit
  const PageCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 1u);
  // 0 was touched most recently: filling the budget must evict 1 first.
  (void)cache.pin(2);
  (void)cache.pin(3);
  (void)cache.pin(4);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
}

TEST(PageCache, ReadAheadFillsSpareBudgetOnly) {
  FaultyVfs vfs;
  make_store(vfs);
  const PagedStore store(vfs, kPath);
  PageCache cache(store, {.budget_bytes = 4 * kPage, .read_ahead_pages = 8});
  (void)cache.pin(0);
  const PageCacheStats s = cache.stats();
  // The demand page plus at most 3 speculative ones: read-ahead stops at
  // the budget instead of evicting.
  EXPECT_LE(s.resident_bytes, cache.budget_bytes());
  EXPECT_GT(s.read_ahead_loaded, 0u);
  EXPECT_LE(s.read_ahead_loaded, 3u);
  EXPECT_TRUE(cache.contains(1));
  // A read-ahead page served later is a hit, not a second disk read.
  (void)cache.pin(1);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PageCache, QuarantinedPageIsRefetchedNotReserved) {
  FaultyVfs vfs;
  make_store(vfs);
  const PagedStore store(vfs, kPath);
  PageCache cache(store, {.budget_bytes = 8 * kPage,
                          .read_ahead_pages = 0,
                          .max_retries = 2});
  // Torn page on the next read: the damaged copy must never be served —
  // the cache quarantines it and retries, and the retry's clean bytes are
  // what the pin exposes.
  vfs.set_read_plan({FaultyVfs::ReadFaultKind::kTornPage, 1});
  const PageCache::Pin pin = cache.pin(0);
  // Compare against an undisturbed read of the same page.
  std::vector<std::uint8_t> clean(store.page_bytes());
  const std::size_t payload = store.read_page(0, clean.data());
  ASSERT_EQ(pin.size(), payload);
  EXPECT_EQ(0, std::memcmp(pin.data(), clean.data(), payload));
  const PageCacheStats s = cache.stats();
  EXPECT_EQ(s.crc_failures, 1u);
  EXPECT_EQ(s.quarantine_events, 1u);
  EXPECT_EQ(s.quarantine_refetches, 1u);
  EXPECT_GE(s.retries, 1u);
}

TEST(PageCache, TransientReadFaultIsRetriedTransparently) {
  FaultyVfs vfs;
  make_store(vfs);
  const PagedStore store(vfs, kPath);
  PageCache cache(store, {.budget_bytes = 8 * kPage,
                          .read_ahead_pages = 0,
                          .max_retries = 2});
  // A one-shot EIO: the first attempt fails, the bounded retry succeeds,
  // the caller never notices.
  vfs.set_read_plan({FaultyVfs::ReadFaultKind::kReadEio, 1});
  const PageCache::Pin pin = cache.pin(0);
  EXPECT_GT(pin.size(), 0u);
  const PageCacheStats s = cache.stats();
  EXPECT_EQ(s.io_failures, 1u);
  EXPECT_GE(s.retries, 1u);
}

TEST(PageCache, RetriesAreBoundedAndTyped) {
  // A deterministically unreadable page (file torn mid-page): every
  // attempt fails, so after max_retries the failure must surface as
  // kRetriesExhausted — typed, never a hang.
  FaultyVfs vfs;
  {
    const CsrGraph g = CsrGraph::build(
        graph::cycle_graph(64),
        {.addressing = graph::AddressingMode::kOffset,
         .build_in_edges = true});
    write_store(g, kPath, &vfs, {.page_bytes = kPage});
    std::vector<std::uint8_t> bytes = vfs.read_all(kPath);
    bytes.resize(bytes.size() - kPage / 2);  // tear the last page off
    const auto f = vfs.open(kPath, io::Vfs::OpenMode::kTruncate);
    f->write(bytes.data(), bytes.size());
    f->close();
  }
  const PagedStore store(vfs, kPath);
  PageCache cache(store, {.budget_bytes = 8 * kPage,
                          .read_ahead_pages = 0,
                          .max_retries = 2});
  const std::uint64_t last = store.num_pages() - 1;
  try {
    (void)cache.pin(last);
    FAIL() << "served a page that cannot be read intact";
  } catch (const PageError& e) {
    EXPECT_EQ(e.kind(), PageErrorKind::kRetriesExhausted);
    EXPECT_EQ(e.attempts(), 3u);  // 1 try + 2 retries
  }
  EXPECT_FALSE(cache.contains(last));
  EXPECT_GE(cache.stats().retries, 2u);
}

TEST(PageCache, DegradationLadderClimbsAndDescends) {
  FaultyVfs vfs;
  make_store(vfs);
  const PagedStore store(vfs, kPath);
  bool shed_called = false;
  PageCache cache(store,
                  {.budget_bytes = 2 * kPage,
                   .read_ahead_pages = 4,
                   .thrash_window = 16,
                   .high_miss_rate = 0.90,
                   .low_miss_rate = 0.50,
                   .ladder_patience = 2,
                   .shed = [&shed_called](const std::string& detail) {
                     EXPECT_FALSE(detail.empty());
                     shed_called = true;
                     return true;
                   }});
  ASSERT_EQ(cache.level(), 0u);
  // Thrash: a scan over far more pages than the budget holds — every
  // access is a miss. Each rung needs ladder_patience windows.
  const std::uint64_t n = store.num_pages();
  std::uint64_t p = 0;
  const auto thrash_accesses = [&](std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      (void)cache.pin(p % n);
      p += 7;  // stride far wider than the 2-page budget
    }
  };
  thrash_accesses(2 * 16);
  EXPECT_EQ(cache.level(), 1u);  // read-ahead off
  thrash_accesses(2 * 16);
  EXPECT_EQ(cache.level(), 2u);  // retention off
  // At level 2 an unpinned page is dropped immediately.
  (void)cache.pin(0);
  EXPECT_FALSE(cache.contains(0));
  thrash_accesses(2 * 16);
  EXPECT_EQ(cache.level(), 3u);  // external shedding
  EXPECT_TRUE(shed_called);
  // Recovery: repeated hits on one resident page drop the miss rate below
  // the low watermark and the ladder steps back down, one rung per calm
  // window.
  std::vector<PageCache::Pin> hold;
  hold.push_back(cache.pin(0));  // pinned: resident even at level >= 2
  for (int i = 0; i < 3 * 16; ++i) {
    (void)cache.pin(0);
  }
  EXPECT_LT(cache.level(), 3u);
  const auto events = cache.degradation_events();
  ASSERT_GE(events.size(), 4u);  // 3 up + at least 1 down
  EXPECT_EQ(events[0].from_level, 0u);
  EXPECT_EQ(events[0].to_level, 1u);
  EXPECT_GE(events[0].miss_rate, 0.90);
  for (const CacheDegradationEvent& e : events) {
    EXPECT_FALSE(e.detail.empty());
  }
}

TEST(PageCache, ShedHookReachesTheJobManager) {
  // The rung-3 wiring the ISSUE asks for: sustained thrash relieves
  // pressure through JobManager::shed_weakest_queued, which sheds the
  // least important queued job with a typed reason and an audit record.
  service::JobManager::Config cfg;
  cfg.executors = 1;
  cfg.team_threads = 1;
  service::JobManager manager(cfg);

  FaultyVfs vfs;
  make_store(vfs);
  const PagedStore store(vfs, kPath);
  PageCache cache(store,
                  {.budget_bytes = 2 * kPage,
                   .read_ahead_pages = 0,
                   .thrash_window = 8,
                   .high_miss_rate = 0.90,
                   .low_miss_rate = 0.10,
                   .ladder_patience = 1,
                   .shed = [&manager](const std::string& detail) {
                     return manager.shed_weakest_queued(detail);
                   }});
  // Nothing queued: the hook reports false, the cache stays at rung 3
  // without crashing, and the manager records nothing.
  const std::uint64_t n = store.num_pages();
  for (std::uint64_t i = 0; i < 64; ++i) {
    (void)cache.pin((i * 7) % n);
  }
  EXPECT_EQ(cache.level(), 3u);
  EXPECT_EQ(manager.stats().shed, 0u);
}

TEST(JobManagerShed, ShedWeakestQueuedPicksTheLowestPriority) {
  // Directly exercise the relief valve: with no executors free, queued
  // jobs pile up; shedding must evict the weakest one, typed and logged.
  service::JobManager::Config cfg;
  cfg.executors = 1;
  cfg.team_threads = 1;
  cfg.max_queue_depth = 8;
  service::JobManager manager(cfg);
  EXPECT_FALSE(manager.shed_weakest_queued("empty queue"));

  const CsrGraph g = CsrGraph::build(
      graph::cycle_graph(512),
      {.addressing = graph::AddressingMode::kOffset, .build_in_edges = true});
  constexpr VersionId kPull{CombinerKind::kPull, false};
  // A long-ish job to occupy the sole executor, then two queued ones.
  // Its priority sits between the two queued jobs' so the weakest is
  // `low` whether or not the executor has already popped it.
  auto hog = manager.submit(g, apps::PageRank{.rounds = 200}, kPull, {},
                            service::JobSpec{.priority = 5});
  auto low = manager.submit(g, apps::PageRank{.rounds = 200}, kPull, {},
                            service::JobSpec{.priority = 1});
  auto high = manager.submit(g, apps::PageRank{.rounds = 5}, kPull, {},
                             service::JobSpec{.priority = 9});
  EXPECT_TRUE(manager.shed_weakest_queued("cache thrash relief"));
  const service::JobReport& low_report = low.wait();
  EXPECT_EQ(low_report.state, service::JobState::kShed);
  ASSERT_TRUE(low_report.shed_reason.has_value());
  EXPECT_EQ(*low_report.shed_reason, service::ShedReason::kPriorityEvicted);
  EXPECT_EQ(high.wait().state, service::JobState::kCompleted);
  EXPECT_EQ(hog.wait().state, service::JobState::kCompleted);
  // The audit trail names the detail we passed.
  bool found = false;
  for (const auto& rec : manager.degradation_log().events()) {
    if (rec.step == service::DegradationStep::kShedQueued &&
        rec.detail == "cache thrash relief") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ipregel::store
