// The paged-path chaos matrix: a seeded fault plan injects EIO, short
// reads, torn pages, and power cuts at EVERY counted page operation, and
// each cell must end in one of exactly two ways — the run absorbs the
// fault and finishes BIT-IDENTICAL to the undisturbed in-RAM engine, or
// it fails with a typed error and a clean retry finishes bit-identical.
// Never silently-wrong values, never a hang. The build-phase sweep does
// the same for the streaming store writer's mutating operations.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "chaos_seed.hpp"
#include "core/engine.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "io/faulty_vfs.hpp"
#include "store/page_cache.hpp"
#include "store/page_error.hpp"
#include "store/paged_graph.hpp"
#include "store/paged_store.hpp"
#include "store/store_writer.hpp"
#include "store/streaming_runner.hpp"

namespace ipregel::store {
namespace {

using graph::CsrGraph;
using io::FaultyVfs;

constexpr const char* kPath = "/chaos/graph.pages";
constexpr std::size_t kPage = 64;
constexpr std::size_t kRounds = 5;

/// The matrix seed (IPREGEL_CHAOS_SEED overrides): it picks the graph the
/// whole matrix runs over, so a seed sweep exercises fresh page layouts.
/// Sweep coordinates are exhaustive (strided), announced via
/// SCOPED_TRACE; the announce below records the seed for replay.
const std::uint64_t kMatrixSeed = testing::chaos_seed(77);

/// Matrix cells are capped so sanitizer builds stay inside their timeout:
/// a sweep longer than this is strided, covering first, last, and an even
/// sample in between.
constexpr std::uint64_t kMaxCells = 96;

std::uint64_t stride_for(std::uint64_t total) {
  return total <= kMaxCells ? 1 : (total + kMaxCells - 1) / kMaxCells;
}

CsrGraph chaos_graph() {
  return CsrGraph::build(
      graph::rmat(6, 4, {.seed = kMatrixSeed}),
      {.addressing = graph::AddressingMode::kOffset, .build_in_edges = true});
}

/// One complete paged run: open, load offsets, stream a pull PageRank.
/// Throws PageError (open/load damage), RunError (in-run damage), or
/// io::PowerLoss (dead disk during open/load).
std::vector<double> paged_run(FaultyVfs& vfs) {
  const PagedStore store(vfs, kPath);
  PageCache cache(store, {.budget_bytes = 8 * kPage, .max_retries = 2});
  PagedGraph pg(store, cache);
  StreamingRunner<apps::PageRank> runner(pg, apps::PageRank{.rounds = kRounds});
  (void)runner.run(StreamMode::kPull);
  return runner.values();
}

TEST(StoreChaosMatrix, TransientReadFaultSweepRecoversBitIdentical) {
  testing::announce_cell("store_chaos", kMatrixSeed, "transient_read_sweep");
  const CsrGraph g = chaos_graph();
  // The undisturbed in-RAM reference the whole matrix is judged against.
  Engine<apps::PageRank, CombinerKind::kPull, false> engine(
      g, apps::PageRank{.rounds = kRounds});
  (void)engine.run();
  const std::vector<double> reference(engine.values().begin(),
                                      engine.values().end());

  FaultyVfs vfs;
  write_store(g, kPath, &vfs, {.page_bytes = kPage});
  vfs.sync_all();

  // Probe: count the read ops of one undisturbed paged run — the sweep's
  // loop bound.
  vfs.set_read_plan({FaultyVfs::ReadFaultKind::kNone, 0});
  ASSERT_EQ(paged_run(vfs), reference);  // the paged path itself agrees
  const std::uint64_t total = vfs.read_ops();
  ASSERT_GE(total, 10u);
  const std::uint64_t step = stride_for(total);

  for (const FaultyVfs::ReadFaultKind kind :
       {FaultyVfs::ReadFaultKind::kReadEio,
        FaultyVfs::ReadFaultKind::kReadShort,
        FaultyVfs::ReadFaultKind::kTornPage}) {
    for (std::uint64_t at = 1; at <= total; at += step) {
      SCOPED_TRACE(std::string(io::to_string(kind)) + " at read op " +
                   std::to_string(at) + " of " + std::to_string(total));
      vfs.set_read_plan({kind, at});
      bool typed_failure = false;
      std::vector<double> values;
      try {
        values = paged_run(vfs);
      } catch (const PageError& e) {
        // Open/section-load damage: typed, names the failure.
        EXPECT_NE(to_string(e.kind()), "invalid");
        typed_failure = true;
      } catch (const RunError& e) {
        EXPECT_EQ(e.kind(), RunErrorKind::kPageError);
        typed_failure = true;
      }
      if (typed_failure) {
        // The plan is one-shot and has fired: a clean retry of the whole
        // cell must succeed.
        values = paged_run(vfs);
      }
      ASSERT_EQ(values, reference);
    }
  }
}

TEST(StoreChaosMatrix, PowerCutSweepFailsTypedAndRecoversAfterReboot) {
  testing::announce_cell("store_chaos", kMatrixSeed, "power_cut_sweep");
  const CsrGraph g = chaos_graph();
  Engine<apps::PageRank, CombinerKind::kPull, false> engine(
      g, apps::PageRank{.rounds = kRounds});
  (void)engine.run();
  const std::vector<double> reference(engine.values().begin(),
                                      engine.values().end());

  FaultyVfs vfs;
  write_store(g, kPath, &vfs, {.page_bytes = kPage});
  vfs.sync_all();
  vfs.set_read_plan({FaultyVfs::ReadFaultKind::kNone, 0});
  ASSERT_EQ(paged_run(vfs), reference);
  const std::uint64_t total = vfs.read_ops();
  const std::uint64_t step = stride_for(total);

  for (std::uint64_t at = 1; at <= total; at += step) {
    SCOPED_TRACE("power cut at read op " + std::to_string(at) + " of " +
                 std::to_string(total));
    vfs.set_read_plan({FaultyVfs::ReadFaultKind::kReadPowerCut, at});
    bool failed = false;
    try {
      (void)paged_run(vfs);
    } catch (const io::PowerLoss&) {
      failed = true;  // disk died during open/offset load
    } catch (const RunError& e) {
      // Disk died mid-superstep: the runner surfaces it typed.
      EXPECT_EQ(e.kind(), RunErrorKind::kPageError);
      failed = true;
    }
    ASSERT_TRUE(failed) << "an armed power cut never fired or was absorbed";
    EXPECT_TRUE(vfs.power_is_cut());
    vfs.reboot();
    // The store was published durably: power restored, the same file
    // serves a bit-identical run.
    ASSERT_EQ(paged_run(vfs), reference);
  }
}

TEST(StoreChaosMatrix, BuildPhaseCrashSweepNeverPublishesATornStore) {
  testing::announce_cell("store_chaos", kMatrixSeed, "build_crash_sweep");
  // The streaming writer goes through AtomicFile: whatever a crash leaves
  // behind, the final name holds either nothing or a COMPLETE store, and
  // a rebuild over the debris converges to the reference bytes.
  std::vector<std::uint8_t> reference;
  {
    FaultyVfs clean;
    graph::RmatStream source(6, 4, {.seed = kMatrixSeed});
    write_store_streaming(source, kPath, &clean,
                          {.page_bytes = kPage, .build_in_edges = true});
    reference = clean.read_all(kPath);
  }

  // Probe the mutating-op count of one clean build.
  FaultyVfs probe;
  {
    graph::RmatStream source(6, 4, {.seed = kMatrixSeed});
    write_store_streaming(source, kPath, &probe,
                          {.page_bytes = kPage, .build_in_edges = true});
  }
  const std::uint64_t total = probe.mutating_ops();
  ASSERT_GE(total, 5u);  // open, writes, fsync, rename, fsync_dir
  const std::uint64_t step = stride_for(total);

  for (const FaultyVfs::FaultKind kind :
       {FaultyVfs::FaultKind::kPowerCut, FaultyVfs::FaultKind::kTornWrite,
        FaultyVfs::FaultKind::kEio}) {
    for (std::uint64_t at = 1; at <= total; at += step) {
      SCOPED_TRACE(std::string(io::to_string(kind)) + " at mutating op " +
                   std::to_string(at) + " of " + std::to_string(total));
      FaultyVfs vfs;
      vfs.set_plan({kind, at});
      graph::RmatStream source(6, 4, {.seed = kMatrixSeed});
      try {
        write_store_streaming(source, kPath, &vfs,
                              {.page_bytes = kPage, .build_in_edges = true});
        // kEio beyond the ops the build makes simply never fires.
        EXPECT_EQ(kind, FaultyVfs::FaultKind::kEio);
      } catch (const io::PowerLoss&) {
        EXPECT_NE(kind, FaultyVfs::FaultKind::kEio);
        vfs.reboot();
      } catch (const io::IoError&) {
        EXPECT_EQ(kind, FaultyVfs::FaultKind::kEio);
      }
      if (vfs.exists(kPath)) {
        // Whatever survived under the final name is a complete store.
        EXPECT_EQ(vfs.read_all(kPath), reference);
      }
      // A rebuild over the debris converges.
      graph::RmatStream again(6, 4, {.seed = kMatrixSeed});
      write_store_streaming(again, kPath, &vfs,
                            {.page_bytes = kPage, .build_in_edges = true});
      EXPECT_EQ(vfs.read_all(kPath), reference);
    }
  }
}

TEST(StoreChaosMatrix, PushModeSurvivesTheSameReadFaults) {
  testing::announce_cell("store_chaos", kMatrixSeed, "push_read_sweep");
  // A smaller sweep through the push path (out-target pages instead of
  // in-target pages): same contract, order-insensitive program, so
  // bit-identity holds at any thread count too.
  const CsrGraph g = chaos_graph();
  FaultyVfs vfs;
  write_store(g, kPath, &vfs, {.page_bytes = kPage});
  vfs.sync_all();

  const auto push_run = [&vfs]() {
    const PagedStore store(vfs, kPath);
    PageCache cache(store, {.budget_bytes = 8 * kPage, .max_retries = 2});
    PagedGraph pg(store, cache);
    StreamingRunner<apps::Hashmin> runner(pg, apps::Hashmin{},
                                          {.threads = 2});
    (void)runner.run(StreamMode::kPush);
    return runner.values();
  };

  vfs.set_read_plan({FaultyVfs::ReadFaultKind::kNone, 0});
  const std::vector<graph::vid_t> reference = push_run();
  const std::uint64_t total = vfs.read_ops();
  const std::uint64_t step = stride_for(total) * 3;  // coarser sample

  for (std::uint64_t at = 1; at <= total; at += step) {
    SCOPED_TRACE("torn page at read op " + std::to_string(at));
    vfs.set_read_plan({FaultyVfs::ReadFaultKind::kTornPage, at});
    std::vector<graph::vid_t> values;
    try {
      values = push_run();
    } catch (const PageError&) {
      values = push_run();
    } catch (const RunError& e) {
      EXPECT_EQ(e.kind(), RunErrorKind::kPageError);
      values = push_run();
    }
    ASSERT_EQ(values, reference);
  }
}

}  // namespace
}  // namespace ipregel::store
