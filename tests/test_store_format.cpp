// The paged store's on-disk contract: the emitted arrays are the CSR's own
// arrays byte for byte, the streaming build is byte-identical to the in-RAM
// build, and every way the bytes can be damaged surfaces as a typed
// PageError naming what was violated — never silently-wrong edges.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_stream.hpp"
#include "graph/generators.hpp"
#include "io/faulty_vfs.hpp"
#include "store/page_error.hpp"
#include "store/page_format.hpp"
#include "store/paged_store.hpp"
#include "store/store_writer.hpp"

namespace ipregel::store {
namespace {

using graph::CsrGraph;
using graph::EdgeList;
using io::FaultyVfs;

constexpr const char* kPath = "/store/graph.pages";

CsrGraph build_csr(const EdgeList& edges, bool in_edges, bool weights) {
  return CsrGraph::build(
      edges, graph::CsrBuildOptions{
                 .addressing = graph::AddressingMode::kOffset,
                 .build_in_edges = in_edges,
                 .keep_weights = weights});
}

/// Reconstructs the prefix-sum array the store's u64 offset section must
/// hold, from the graph's public degree API.
std::vector<std::uint64_t> expected_offsets(const CsrGraph& g, bool in) {
  std::vector<std::uint64_t> offsets(g.num_slots() + 1, 0);
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    const std::size_t d =
        s < g.first_slot() ? 0 : (in ? g.in_degree(s) : g.out_degree(s));
    offsets[s + 1] = offsets[s] + d;
  }
  return offsets;
}

TEST(StoreFormat, RoundTripMatchesCsrArrays) {
  const EdgeList edges = graph::grid_2d(
      9, 7, {.removal_fraction = 0.15, .max_weight = 9, .seed = 11});
  const CsrGraph g = build_csr(edges, /*in_edges=*/true, /*weights=*/true);

  FaultyVfs vfs;
  write_store(g, kPath, &vfs, {.page_bytes = 128});

  const PagedStore store(vfs, kPath);
  const Superblock& sb = store.superblock();
  EXPECT_EQ(sb.num_vertices, g.num_vertices());
  EXPECT_EQ(sb.num_slots, g.num_slots());
  EXPECT_EQ(sb.first_slot, g.first_slot());
  EXPECT_EQ(sb.num_edges, g.num_edges());
  EXPECT_EQ(sb.id_offset, g.id_offset());
  EXPECT_TRUE(sb.has_weights());
  EXPECT_TRUE(sb.has_in_edges());
  EXPECT_EQ(sb.page_bytes, 128u);

  EXPECT_EQ(store.load_u64_section(Section::kOutOffsets),
            expected_offsets(g, /*in=*/false));
  EXPECT_EQ(store.load_u64_section(Section::kInOffsets),
            expected_offsets(g, /*in=*/true));

  const std::vector<std::uint32_t> out = store.load_u32_section(
      Section::kOutTargets);
  const std::vector<std::uint32_t> weights = store.load_u32_section(
      Section::kWeights);
  const std::vector<std::uint32_t> in = store.load_u32_section(
      Section::kInTargets);
  ASSERT_EQ(out.size(), g.num_edges());
  ASSERT_EQ(weights.size(), g.num_edges());
  ASSERT_EQ(in.size(), g.num_edges());
  std::size_t e = 0;
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    const auto targets = g.out_neighbours(s);
    const auto ws = g.out_weights(s);
    for (std::size_t i = 0; i < targets.size(); ++i, ++e) {
      ASSERT_EQ(out[e], targets[i]) << "edge " << e;
      ASSERT_EQ(weights[e], ws[i]) << "edge " << e;
    }
  }
  e = 0;
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    for (const graph::vid_t src : g.in_neighbours(s)) {
      ASSERT_EQ(in[e], src) << "in-edge " << e;
      ++e;
    }
  }
}

TEST(StoreFormat, OffsetAddressingRoundTrips) {
  // Ids starting at 1000: the store must carry id_offset/first_slot so a
  // paged run addresses exactly the slots the in-RAM run does.
  EdgeList edges = graph::cycle_graph(32);
  graph::shift_ids(edges, 1000);
  const CsrGraph g = build_csr(edges, /*in_edges=*/true, /*weights=*/false);

  FaultyVfs vfs;
  write_store(g, kPath, &vfs, {.page_bytes = 64});
  const PagedStore store(vfs, kPath);
  EXPECT_EQ(store.superblock().id_offset, g.id_offset());
  EXPECT_EQ(store.superblock().first_slot, g.first_slot());
  EXPECT_FALSE(store.superblock().has_weights());
  EXPECT_EQ(store.load_u64_section(Section::kOutOffsets),
            expected_offsets(g, /*in=*/false));
}

TEST(StoreFormat, StreamingBuildIsByteIdenticalToInRamBuild) {
  // The headline contract of the beyond-RAM input path: scattering the
  // edge stream chunk by chunk under a tiny RAM budget produces the SAME
  // FILE as building the full CSR in memory and serialising it.
  graph::RmatStream stream(/*scale=*/8, /*edge_factor=*/4, {.seed = 7});
  const EdgeList edges = graph::rmat(8, 4, {.seed = 7});
  const CsrGraph g = build_csr(edges, /*in_edges=*/true, /*weights=*/false);

  FaultyVfs vfs;
  write_store(g, "/ram.pages", &vfs, {.page_bytes = 256});
  // A budget far below the edge arrays (4 KiB vs 4096 edges x 4 B x 2
  // sections) forces many scatter chunks.
  write_store_streaming(stream, "/streamed.pages", &vfs,
                        {.page_bytes = 256,
                         .build_in_edges = true,
                         .edge_ram_budget_bytes = 4096});
  EXPECT_EQ(vfs.read_all("/ram.pages"), vfs.read_all("/streamed.pages"));
}

TEST(StoreFormat, StreamingBuildHonoursTightestBudget) {
  // Degenerate budget: the chunked scatter must still terminate and stay
  // byte-identical when each chunk holds only a handful of elements.
  const EdgeList edges = graph::rmat(6, 4, {.seed = 3});  // 1024 edges
  graph::EdgeListSource source_a(edges);
  graph::EdgeListSource source_b(edges);
  FaultyVfs vfs;
  write_store_streaming(source_a, "/tight.pages", &vfs,
                        {.page_bytes = 64,
                         .build_in_edges = true,
                         .edge_ram_budget_bytes = 1});
  write_store_streaming(source_b, "/roomy.pages", &vfs,
                        {.page_bytes = 64,
                         .build_in_edges = true,
                         .edge_ram_budget_bytes = 1 << 20});
  EXPECT_EQ(vfs.read_all("/tight.pages"), vfs.read_all("/roomy.pages"));
}

TEST(StoreFormat, RejectsBadPageSizes) {
  EXPECT_THROW(validate_page_bytes(0), std::invalid_argument);
  EXPECT_THROW(validate_page_bytes(32), std::invalid_argument);   // < minimum
  EXPECT_THROW(validate_page_bytes(100), std::invalid_argument);  // % 8 != 0
  EXPECT_NO_THROW(validate_page_bytes(64));
  EXPECT_NO_THROW(validate_page_bytes(1 << 16));
}

TEST(StoreFormat, GarbageFileFailsTypedAsBadSuperblock) {
  FaultyVfs vfs;
  {
    const auto f = vfs.open(kPath, io::Vfs::OpenMode::kTruncate);
    std::vector<std::uint8_t> zeros(kSuperblockBytes, 0);
    f->write(zeros.data(), zeros.size());
    f->close();
  }
  try {
    const PagedStore store(vfs, kPath);
    FAIL() << "opened a garbage superblock";
  } catch (const PageError& e) {
    EXPECT_EQ(e.kind(), PageErrorKind::kBadSuperblock);
  }
}

TEST(StoreFormat, TruncatedFileFailsTypedAsShortRead) {
  FaultyVfs vfs;
  {
    const auto f = vfs.open(kPath, io::Vfs::OpenMode::kTruncate);
    const std::uint8_t byte = 0x42;
    f->write(&byte, 1);
    f->close();
  }
  try {
    const PagedStore store(vfs, kPath);
    FAIL() << "opened a truncated superblock";
  } catch (const PageError& e) {
    EXPECT_EQ(e.kind(), PageErrorKind::kShortRead);
  }
}

/// Writes a valid store, then corrupts one byte at `at` through the live
/// view, returning the vfs ready for reads.
void write_then_flip(FaultyVfs& vfs, std::size_t at) {
  const CsrGraph g =
      build_csr(graph::cycle_graph(64), /*in_edges=*/true, /*weights=*/false);
  write_store(g, kPath, &vfs, {.page_bytes = 64});
  std::vector<std::uint8_t> bytes = vfs.read_all(kPath);
  ASSERT_LT(at, bytes.size());
  bytes[at] ^= 0x01;
  const auto f = vfs.open(kPath, io::Vfs::OpenMode::kTruncate);
  f->write(bytes.data(), bytes.size());
  f->close();
}

TEST(StoreFormat, FlippedSuperblockBitIsTyped) {
  FaultyVfs vfs;
  write_then_flip(vfs, 40);  // inside the field area, before the CRC
  try {
    const PagedStore store(vfs, kPath);
    FAIL() << "accepted a superblock whose CRC cannot match";
  } catch (const PageError& e) {
    EXPECT_EQ(e.kind(), PageErrorKind::kBadSuperblock);
  }
}

TEST(StoreFormat, FlippedPayloadBitFailsTheSeal) {
  FaultyVfs vfs;
  // First byte of page 0's payload slot.
  write_then_flip(vfs, kSuperblockBytes + kPageHeaderBytes);
  const PagedStore store(vfs, kPath);
  std::vector<std::uint8_t> out(store.page_bytes());
  try {
    (void)store.read_page(0, out.data());
    FAIL() << "served a payload that fails its seal";
  } catch (const PageError& e) {
    EXPECT_EQ(e.kind(), PageErrorKind::kBadCrc);
    EXPECT_TRUE(e.retryable());
    EXPECT_EQ(e.page(), 0u);
  }
}

TEST(StoreFormat, FlippedPaddingBitFailsTheSeal) {
  // The seal covers the ENTIRE slot including zero padding: rot in the
  // padding of the last (short) page must be detected too.
  FaultyVfs vfs;
  const CsrGraph g =
      build_csr(graph::cycle_graph(10), /*in_edges=*/true, /*weights=*/false);
  write_store(g, kPath, &vfs, {.page_bytes = 64});
  {
    std::vector<std::uint8_t> bytes = vfs.read_all(kPath);
    bytes.back() ^= 0x80;  // last padding byte of the last page
    const auto f = vfs.open(kPath, io::Vfs::OpenMode::kTruncate);
    f->write(bytes.data(), bytes.size());
    f->close();
  }
  const PagedStore store(vfs, kPath);
  std::vector<std::uint8_t> out(store.page_bytes());
  const std::uint64_t last = store.num_pages() - 1;
  try {
    (void)store.read_page(last, out.data());
    FAIL() << "padding rot went undetected";
  } catch (const PageError& e) {
    EXPECT_EQ(e.kind(), PageErrorKind::kBadCrc);
  }
}

TEST(StoreFormat, WrongPageMagicIsBadHeader) {
  FaultyVfs vfs;
  write_then_flip(vfs, kSuperblockBytes);  // first byte of page 0's magic
  const PagedStore store(vfs, kPath);
  std::vector<std::uint8_t> out(store.page_bytes());
  try {
    (void)store.read_page(0, out.data());
    FAIL() << "accepted a page with a wrong magic";
  } catch (const PageError& e) {
    EXPECT_EQ(e.kind(), PageErrorKind::kBadHeader);
    EXPECT_TRUE(e.retryable());
  }
}

TEST(StoreFormat, OutOfRangePageIsBadHeader) {
  FaultyVfs vfs;
  const CsrGraph g =
      build_csr(graph::cycle_graph(8), /*in_edges=*/true, /*weights=*/false);
  write_store(g, kPath, &vfs, {.page_bytes = 64});
  const PagedStore store(vfs, kPath);
  std::vector<std::uint8_t> out(store.page_bytes());
  EXPECT_THROW((void)store.read_page(store.num_pages(), out.data()),
               PageError);
}

TEST(StoreFormat, PublishIsAtomic) {
  // AtomicFile discipline: the tmp name never survives a successful write,
  // and a rewrite over an existing store replaces it wholesale.
  FaultyVfs vfs;
  const CsrGraph small =
      build_csr(graph::cycle_graph(8), /*in_edges=*/true, /*weights=*/false);
  const CsrGraph big =
      build_csr(graph::cycle_graph(200), /*in_edges=*/true,
                /*weights=*/false);
  write_store(small, kPath, &vfs, {.page_bytes = 64});
  write_store(big, kPath, &vfs, {.page_bytes = 64});
  EXPECT_FALSE(vfs.exists(std::string(kPath) + ".tmp"));
  const PagedStore store(vfs, kPath);
  EXPECT_EQ(store.superblock().num_vertices, 200u);
}

}  // namespace
}  // namespace ipregel::store
