// The headline contract of the beyond-RAM mode: a streaming superstep over
// a paged store — even under a cache budget several times smaller than the
// edge arrays — produces BIT-IDENTICAL results to the in-RAM engine, at
// any thread count, and every paging failure surfaces as a typed RunError.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "core/engine.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "io/faulty_vfs.hpp"
#include "store/page_cache.hpp"
#include "store/paged_graph.hpp"
#include "store/paged_store.hpp"
#include "store/store_writer.hpp"
#include "store/streaming_runner.hpp"

namespace ipregel::store {
namespace {

using graph::CsrGraph;
using graph::EdgeList;
using io::FaultyVfs;

constexpr const char* kPath = "/run/graph.pages";
constexpr std::size_t kPage = 128;

CsrGraph make_graph(const EdgeList& edges) {
  return CsrGraph::build(
      edges, {.addressing = graph::AddressingMode::kOffset,
              .build_in_edges = true});
}

/// Bytes of the store's streamed (edge-sized) sections — what the ">= 4x
/// the cache budget" headline is measured against.
std::uint64_t streamed_bytes(const PagedStore& store) {
  return store.superblock().section(Section::kOutTargets).payload_bytes +
         store.superblock().section(Section::kInTargets).payload_bytes;
}

TEST(StreamingRunner, PullPageRankBitIdenticalToEngine) {
  const CsrGraph g = make_graph(graph::rmat(8, 8, {.seed = 21}));
  Engine<apps::PageRank, CombinerKind::kPull, false> engine(
      g, apps::PageRank{.rounds = 20});
  const RunResult ref = engine.run();

  FaultyVfs vfs;
  write_store(g, kPath, &vfs, {.page_bytes = kPage});
  const PagedStore store(vfs, kPath);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    // A budget ~1/4 of the streamed bytes AND a roomy one: the answer may
    // not depend on how often the cache had to evict.
    for (const std::size_t budget :
         {std::size_t{4} * kPage, std::size_t{1} << 20}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " budget=" + std::to_string(budget));
      PageCache cache(store, {.budget_bytes = budget});
      PagedGraph pg(store, cache);
      StreamingRunner<apps::PageRank> runner(
          pg, apps::PageRank{.rounds = 20}, {.threads = threads});
      const PagedRunResult out = runner.run(StreamMode::kPull);
      ASSERT_EQ(out.run.supersteps, ref.supersteps);
      ASSERT_EQ(out.run.total_messages, ref.total_messages);
      for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
        ASSERT_EQ(runner.values()[s], engine.values()[s])
            << "slot " << s;  // EXACT double equality: bit-identity
      }
      if (budget == std::size_t{4} * kPage) {
        // The tiny budget really was beyond-RAM: the streamed sections
        // exceed it 4x over and eviction actually happened.
        EXPECT_GE(streamed_bytes(store), 4 * budget);
        EXPECT_GT(out.cache.evictions, 0u);
      }
    }
  }
}

TEST(StreamingRunner, PushHashminBitIdenticalToEngine) {
  const CsrGraph g = make_graph(graph::rmat(7, 6, {.seed = 5}));
  Engine<apps::Hashmin, CombinerKind::kSpinlockPush, false> engine(g);
  const RunResult ref = engine.run();

  FaultyVfs vfs;
  write_store(g, kPath, &vfs, {.page_bytes = kPage});
  const PagedStore store(vfs, kPath);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    PageCache cache(store, {.budget_bytes = 4 * kPage});
    PagedGraph pg(store, cache);
    StreamingRunner<apps::Hashmin> runner(pg, apps::Hashmin{},
                                          {.threads = threads});
    const PagedRunResult out = runner.run(StreamMode::kPush);
    EXPECT_EQ(out.run.supersteps, ref.supersteps);
    for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
      ASSERT_EQ(runner.values()[s], engine.values()[s]) << "slot " << s;
    }
  }
}

TEST(StreamingRunner, OffsetAddressedIdsWork) {
  EdgeList edges = graph::cycle_graph(200);
  graph::shift_ids(edges, 5000);
  const CsrGraph g = make_graph(edges);
  Engine<apps::Hashmin, CombinerKind::kPull, false> engine(g);
  (void)engine.run();

  FaultyVfs vfs;
  write_store(g, kPath, &vfs, {.page_bytes = 64});
  const PagedStore store(vfs, kPath);
  PageCache cache(store, {.budget_bytes = 4 * 64});
  PagedGraph pg(store, cache);
  StreamingRunner<apps::Hashmin> runner(pg);
  (void)runner.run(StreamMode::kPull);
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ASSERT_EQ(runner.values()[s], engine.values()[s]) << "slot " << s;
  }
  EXPECT_EQ(runner.value_of(5000), 5000u);
}

TEST(StreamingRunner, ResultsIndependentOfCacheBudget) {
  // Same run under wildly different budgets (and with the degradation
  // ladder certainly engaging at the smallest): values must stay
  // bit-identical — degradation changes timings, never answers.
  const CsrGraph g = make_graph(graph::rmat(7, 8, {.seed = 9}));
  FaultyVfs vfs;
  write_store(g, kPath, &vfs, {.page_bytes = kPage});
  const PagedStore store(vfs, kPath);

  std::vector<double> reference;
  for (const std::size_t budget :
       {std::size_t{2} * kPage, std::size_t{8} * kPage, std::size_t{1} << 22}) {
    SCOPED_TRACE("budget=" + std::to_string(budget));
    PageCache cache(store, {.budget_bytes = budget,
                            .thrash_window = 64,
                            .ladder_patience = 1});
    PagedGraph pg(store, cache);
    StreamingRunner<apps::PageRank> runner(pg, apps::PageRank{.rounds = 10});
    (void)runner.run(StreamMode::kPull);
    if (reference.empty()) {
      reference = runner.values();
    } else {
      ASSERT_EQ(runner.values(), reference);
    }
  }
}

TEST(StreamingRunner, PullModeValidatesItsPreconditions) {
  const CsrGraph g = CsrGraph::build(
      graph::cycle_graph(32),
      {.addressing = graph::AddressingMode::kOffset,
       .build_in_edges = false});
  FaultyVfs vfs;
  write_store(g, kPath, &vfs, {.page_bytes = 64});
  const PagedStore store(vfs, kPath);
  PageCache cache(store, {.budget_bytes = 4 * 64});
  PagedGraph pg(store, cache);
  StreamingRunner<apps::Hashmin> runner(pg);
  // No in-edge section in the store: the pull gather has nothing to
  // stream; push still works.
  EXPECT_THROW((void)runner.run(StreamMode::kPull), std::invalid_argument);
  EXPECT_NO_THROW((void)runner.run(StreamMode::kPush));
}

TEST(StreamingRunner, SuperstepCapIsReported) {
  const CsrGraph g = make_graph(graph::cycle_graph(64));
  FaultyVfs vfs;
  write_store(g, kPath, &vfs, {.page_bytes = 64});
  const PagedStore store(vfs, kPath);
  PageCache cache(store, {.budget_bytes = 4 * 64});
  PagedGraph pg(store, cache);
  StreamingRunner<apps::PageRank> runner(pg, apps::PageRank{.rounds = 30},
                                         {.max_supersteps = 3});
  const PagedRunResult out = runner.run(StreamMode::kPull);
  EXPECT_TRUE(out.run.reached_superstep_cap);
  EXPECT_EQ(out.run.supersteps, 3u);
}

TEST(StreamingRunner, CancelTokenFailsTyped) {
  const CsrGraph g = make_graph(graph::cycle_graph(64));
  FaultyVfs vfs;
  write_store(g, kPath, &vfs, {.page_bytes = 64});
  const PagedStore store(vfs, kPath);
  PageCache cache(store, {.budget_bytes = 4 * 64});
  PagedGraph pg(store, cache);
  std::atomic<bool> cancel{true};
  StreamingRunner<apps::PageRank> runner(pg, apps::PageRank{},
                                         {.cancel_token = &cancel});
  const RunOutcome out = runner.run_checked(StreamMode::kPull);
  ASSERT_TRUE(out.error.has_value());
  EXPECT_EQ(out.error->kind(), RunErrorKind::kCancelled);
}

TEST(StreamingRunner, UnservablePageFailsTypedNotHung) {
  const CsrGraph g = make_graph(graph::cycle_graph(256));
  FaultyVfs vfs;
  write_store(g, kPath, &vfs, {.page_bytes = 64});
  // Tear the file so its last page can never be read whole: the run must
  // end in a typed kPageError once the gather reaches it.
  {
    std::vector<std::uint8_t> bytes = vfs.read_all(kPath);
    bytes.resize(bytes.size() - 8);
    const auto f = vfs.open(kPath, io::Vfs::OpenMode::kTruncate);
    f->write(bytes.data(), bytes.size());
    f->close();
  }
  const PagedStore store(vfs, kPath);
  PageCache cache(store, {.budget_bytes = 4 * 64, .max_retries = 1});
  PagedGraph pg(store, cache);
  StreamingRunner<apps::Hashmin> runner(pg, apps::Hashmin{}, {.threads = 2});
  const RunOutcome out = runner.run_checked(StreamMode::kPull);
  ASSERT_TRUE(out.error.has_value());
  EXPECT_EQ(out.error->kind(), RunErrorKind::kPageError);
}

TEST(StreamingRunner, RunnerIsReentrant) {
  // Two runs on the same runner give the same answer: run() reinitialises
  // all vertex state.
  const CsrGraph g = make_graph(graph::rmat(6, 4, {.seed = 2}));
  FaultyVfs vfs;
  write_store(g, kPath, &vfs, {.page_bytes = kPage});
  const PagedStore store(vfs, kPath);
  PageCache cache(store, {.budget_bytes = 8 * kPage});
  PagedGraph pg(store, cache);
  StreamingRunner<apps::PageRank> runner(pg, apps::PageRank{.rounds = 8});
  (void)runner.run(StreamMode::kPull);
  const std::vector<double> first = runner.values();
  (void)runner.run(StreamMode::kPull);
  EXPECT_EQ(runner.values(), first);
}

}  // namespace
}  // namespace ipregel::store
