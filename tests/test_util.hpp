#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/runner.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace ipregel::testing {

/// Builds a CSR with in-edges (so every combiner version can run) under the
/// given addressing mode.
inline graph::CsrGraph make_graph(
    const graph::EdgeList& edges,
    graph::AddressingMode addressing = graph::AddressingMode::kOffset) {
  return graph::CsrGraph::build(
      edges, graph::CsrBuildOptions{.addressing = addressing,
                                    .build_in_edges = true,
                                    .keep_weights = true});
}

/// Runs `program` under every applicable framework version and checks that
/// each produces exactly `expected` (slot-indexed). `tag` labels failures.
template <typename Program>
void expect_all_versions_match(
    const graph::CsrGraph& g, Program program,
    const std::vector<typename Program::value_type>& expected,
    const std::string& tag) {
  for (const VersionId v : applicable_versions<Program>()) {
    std::vector<typename Program::value_type> values;
    const RunResult result =
        run_version(g, program, v, EngineOptions{}, nullptr, &values);
    ASSERT_EQ(values.size(), expected.size())
        << tag << " / " << version_name(v);
    for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
      ASSERT_EQ(values[s], expected[s])
          << tag << " / " << version_name(v) << " at slot " << s << " (id "
          << g.id_of(s) << "), after " << result.supersteps << " supersteps";
    }
  }
}

/// Same, with approximate comparison for floating-point programs.
template <typename Program>
void expect_all_versions_near(
    const graph::CsrGraph& g, Program program,
    const std::vector<typename Program::value_type>& expected,
    double tolerance, const std::string& tag) {
  for (const VersionId v : applicable_versions<Program>()) {
    std::vector<typename Program::value_type> values;
    run_version(g, program, v, EngineOptions{}, nullptr, &values);
    ASSERT_EQ(values.size(), expected.size())
        << tag << " / " << version_name(v);
    for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
      ASSERT_NEAR(values[s], expected[s], tolerance)
          << tag << " / " << version_name(v) << " at slot " << s << " (id "
          << g.id_of(s) << ")";
    }
  }
}

}  // namespace ipregel::testing
